// Sharded is the fleet-of-fleets scale-out of the stream engine: records
// hash-partition by node across N goroutine-owned Engine partitions, and
// a fan-in tier merges partition aggregates into fleet views that are
// bit-identical to one serial engine over the same stream.
//
// Exactness is structural, not statistical. The BankKey space is disjoint
// per node, so node-hash partitioning splits the bank population without
// overlap: every bank's state accumulates in exactly one partition, with
// records carrying the global arrival index a serial engine would have
// used. Fault Errors lists therefore match the serial engine entry for
// entry, partition snapshots interleave back into serial order by each
// bank's first-record index, and the absolute bucket alignment of
// stats.RateWindow makes partition window counts sum to the serial count
// at any common window end. The sharded==serial differential tests in
// sharded_test.go pin all of this at every partition count.
package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/predict"
	"repro/internal/topology"
)

// ShardedConfig tunes a Sharded fleet engine.
type ShardedConfig struct {
	// Partitions is the number of Engine partitions (min 1). Results are
	// identical at every setting; throughput scales with cores.
	Partitions int
	// Engine configures every partition: clustering thresholds, window,
	// and the fleet-wide DIMM population (the FIT denominator of merged
	// views).
	Engine Config
}

// LaneConfig tunes the per-partition admission lanes (StartLanes).
type LaneConfig struct {
	// Queue configures each lane's admission queue (capacity is per
	// lane). The lane wraps Queue.OnShed so shed records land in the
	// owning partition's Degraded accounting first; a caller-provided
	// OnShed still runs after it.
	Queue overload.Config
	// DrainBatch bounds records per engine ingest batch (default 256).
	DrainBatch int
	// DrainInterval pauses each lane's drainer between batches, bounding
	// the drain rate (0 = none). The astraload harness uses it to force
	// overload.
	DrainInterval time.Duration
}

// laneRec is one queued record with its pre-assigned global arrival
// index: indices are handed out at Offer time so the order records
// become visible in a partition equals their fleet arrival order even
// while other lanes stall or shed.
type laneRec struct {
	g int64
	r mce.CERecord
}

// Sharded is a partitioned stream engine with fan-in fleet views. All
// methods are safe for concurrent use; Offer is ordered per producer
// goroutine (one producer per site is the astrad arrangement — with
// several concurrent producers the interleaving, as everywhere, is
// whatever index assignment observed).
type Sharded struct {
	cfg       ShardedConfig
	parts     []*Engine
	globalIdx atomic.Int64

	// ingestMu serializes direct (lane-less) ingest fan-out so every
	// partition applies records in global index order.
	ingestMu sync.Mutex

	// shed and shedSeq account fleet-level NoteShed calls (losses not
	// attributable to one partition, e.g. scanner-side drops).
	shed    atomic.Uint64
	shedSeq atomic.Uint64

	view   atomic.Pointer[View]
	viewMu sync.Mutex

	lanes    []*overload.Queue[laneRec]
	laneWG   sync.WaitGroup
	laneCfg  LaneConfig
	hasLanes bool
}

// NewSharded returns a fleet engine with Partitions empty partitions.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	s := &Sharded{cfg: cfg}
	// Partitions run their batch scans serially: parallelism comes from
	// the partitions themselves, not nested sharding.
	pcfg := cfg.Engine
	pcfg.Parallelism = 1
	for i := 0; i < cfg.Partitions; i++ {
		s.parts = append(s.parts, newShard(pcfg, &s.globalIdx))
	}
	return s
}

// Partitions returns the partition count.
func (s *Sharded) Partitions() int { return len(s.parts) }

// partition returns the owning partition index for a node. The hash is a
// fixed multiplicative mix so record placement is stable across runs and
// restarts.
func (s *Sharded) partition(id topology.NodeID) int {
	if len(s.parts) == 1 {
		return 0
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(s.parts)))
}

// Ingest folds one record into its partition.
func (s *Sharded) Ingest(r mce.CERecord) {
	s.ingestMu.Lock()
	g := s.globalIdx.Add(1) - 1
	gs := [1]int{int(g)}
	rs := [1]mce.CERecord{r}
	s.parts[s.partition(r.Node)].ingestIndexed(gs[:], rs[:])
	s.ingestMu.Unlock()
}

// IngestBatch splits a micro-batch by partition and folds the pieces in
// parallel. Equivalent to ingesting the records one by one in order.
func (s *Sharded) IngestBatch(rs []mce.CERecord) {
	if len(rs) == 0 {
		return
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	base := int(s.globalIdx.Add(int64(len(rs)))) - len(rs)
	if len(s.parts) == 1 {
		gs := make([]int, len(rs))
		for i := range gs {
			gs[i] = base + i
		}
		s.parts[0].ingestIndexed(gs, rs)
		return
	}
	type split struct {
		gs []int
		rs []mce.CERecord
	}
	splits := make([]split, len(s.parts))
	for i := range rs {
		p := s.partition(rs[i].Node)
		splits[p].gs = append(splits[p].gs, base+i)
		splits[p].rs = append(splits[p].rs, rs[i])
	}
	var wg sync.WaitGroup
	for p := range splits {
		if len(splits[p].rs) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s.parts[p].ingestIndexed(splits[p].gs, splits[p].rs)
		}(p)
	}
	wg.Wait()
}

// lockAll acquires every partition mutex in index order (the only order
// used anywhere, so fan-in never deadlocks against itself).
func (s *Sharded) lockAll() {
	for _, p := range s.parts {
		p.mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.parts) - 1; i >= 0; i-- {
		s.parts[i].mu.Unlock()
	}
}

// lastLocked returns the fleet's newest event time; callers hold all
// partition locks. Every merged window query evaluates at this instant
// so partition sums equal the serial engine's answer.
func (s *Sharded) lastLocked() time.Time {
	var last time.Time
	for _, p := range s.parts {
		if p.last.After(last) {
			last = p.last
		}
	}
	return last
}

// seqLocked sums the partition state counters plus fleet-level shed; it
// is the epoch of merged views. Monotone: every component is.
func (s *Sharded) seqLocked() uint64 {
	seq := s.shedSeq.Load()
	for _, p := range s.parts {
		seq += p.seq.Load()
	}
	return seq
}

// Seq returns the fleet state-change counter (lock-free; see Engine.Seq).
func (s *Sharded) Seq() uint64 {
	seq := s.shedSeq.Load()
	for _, p := range s.parts {
		seq += p.seq.Load()
	}
	return seq
}

// NoteShed records fleet-level shed (losses upstream of partition
// lanes). Lane shed lands in the owning partition instead.
func (s *Sharded) NoteShed(n int) {
	if n <= 0 {
		return
	}
	s.shed.Add(uint64(n))
	s.shedSeq.Add(uint64(n))
}

// Shed returns total records lost to shedding at every level.
func (s *Sharded) Shed() uint64 {
	n := s.shed.Load()
	for _, p := range s.parts {
		n += p.shed.Load()
	}
	return n
}

// DIMMs returns the configured fleet device population.
func (s *Sharded) DIMMs() int { return s.cfg.Engine.DIMMs }

// Config returns the per-partition engine configuration (defaults
// applied).
func (s *Sharded) Config() Config { return s.parts[0].Config() }

// Summary merges partition summaries into the fleet view: sums for the
// disjoint populations (banks, DIMMs, nodes, faults, modes), min/max for
// the time bounds, and rolling-window counts evaluated at the fleet's
// newest event time.
func (s *Sharded) Summary() Summary {
	s.lockAll()
	defer s.unlockAll()
	return s.summaryLocked()
}

func (s *Sharded) summaryLocked() Summary {
	last := s.lastLocked()
	sum := Summary{Window: s.parts[0].cfg.Window, Last: last}
	shed := int(s.shed.Load())
	for _, p := range s.parts {
		p.reclassify()
		sum.Records += len(p.records)
		sum.Banks += len(p.entries)
		sum.FaultyDIMMs += p.nDIMMs
		sum.FaultyNodes += len(p.nodeStates)
		sum.Faults += p.nFaults
		for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
			sum.FaultsByMode[m] += p.faultsByMode[m]
			sum.ErrorsByMode[m] += p.errorsByMode[m]
		}
		sum.Escalations += p.escalations
		if p.tStarted && (sum.First.IsZero() || p.first.Before(sum.First)) {
			sum.First = p.first
		}
		if p.tStarted {
			sum.WindowCount += p.rate.Count(last)
		}
		shed += int(p.shed.Load())
	}
	// Divide by the rate ring's effective window (whole bucket widths),
	// exactly as RateWindow.Rate does, so sharded == serial bit for bit
	// even when cfg.Window is not a multiple of the bucket count.
	if secs := s.parts[0].rate.Window().Seconds(); secs > 0 {
		sum.WindowRate = float64(sum.WindowCount) / secs
	}
	sum.Shed = shed
	sum.Offered = sum.Records + shed
	sum.Degraded = shed > 0
	return sum
}

// Snapshot returns the fleet fault list — exactly what one serial engine
// (or core.Cluster) produces over the merged stream: partition fault
// lists interleaved by each bank's first-record arrival index.
func (s *Sharded) Snapshot() []core.Fault {
	s.lockAll()
	defer s.unlockAll()
	return s.snapshotLocked()
}

func (s *Sharded) snapshotLocked() []core.Fault {
	total := 0
	for _, p := range s.parts {
		p.reclassify()
		total += p.nFaults
	}
	if total == 0 {
		// Match the serial engine: nil when no banks exist at all,
		// non-nil empty when banks exist but classify to nothing.
		banks := 0
		for _, p := range s.parts {
			banks += len(p.entries)
		}
		if banks == 0 {
			return nil
		}
	}
	out := make([]core.Fault, 0, total)
	cursors := make([]int, len(s.parts))
	for {
		best, bestIdx := -1, 0
		for pi, p := range s.parts {
			if c := cursors[pi]; c < len(p.entries) {
				if best < 0 || p.entries[c].firstIdx < bestIdx {
					best, bestIdx = pi, p.entries[c].firstIdx
				}
			}
		}
		if best < 0 {
			return out
		}
		p := s.parts[best]
		out = append(out, p.entries[cursors[best]].faults...)
		cursors[best]++
	}
}

// WindowedFIT merges the rolling FIT estimate: fault counts summed over
// partitions with the window ending at the fleet's newest event time,
// scaled by the fleet DIMM population.
func (s *Sharded) WindowedFIT() WindowedFIT {
	s.lockAll()
	defer s.unlockAll()
	return s.windowedFITLocked()
}

func (s *Sharded) windowedFITLocked() WindowedFIT {
	end := s.lastLocked()
	dimms := s.cfg.Engine.DIMMs
	w := WindowedFIT{Window: s.parts[0].cfg.Window, End: end}
	shed := s.shed.Load()
	for _, p := range s.parts {
		shed += p.shed.Load()
	}
	if shed > 0 {
		w.Degraded = true
	}
	if end.IsZero() || dimms <= 0 {
		w.Degraded = true
		return w
	}
	for _, p := range s.parts {
		p.reclassify()
		cut := end.Add(-p.cfg.Window)
		for i := range p.entries {
			for j := range p.entries[i].faults {
				f := &p.entries[i].faults[j]
				if f.First.After(cut) {
					w.NewFaults++
				}
				if f.Last.After(cut) {
					w.ActiveFaults++
				}
			}
		}
	}
	if hours := w.Window.Hours(); hours > 0 {
		w.FITPerDIMM = float64(w.NewFaults) / (float64(dimms) * hours) * 1e9
	}
	return w
}

// FaultRates converts the fleet fault population into FIT/DIMM over the
// given window, as Engine.FaultRates would over the merged stream.
func (s *Sharded) FaultRates(window time.Duration) core.FaultRates {
	s.lockAll()
	defer s.unlockAll()
	return core.AnalyzeFaultRates(s.snapshotLocked(), s.cfg.Engine.DIMMs, window)
}

// NodeStatus returns the live view of one node from its owning
// partition, with rolling windows ending at the fleet's newest event
// time (what the serial engine would report).
func (s *Sharded) NodeStatus(id topology.NodeID) (NodeStatus, bool) {
	s.lockAll()
	defer s.unlockAll()
	return s.parts[s.partition(id)].nodeStatusLocked(id, s.lastLocked())
}

// Features returns the fleet's per-bank failure-prediction feature
// vectors — partition outputs interleaved by each bank's first-record
// arrival index and evaluated at the fleet's newest event time, exactly
// what one serial engine (or a batch predict.Tracker) produces over the
// merged stream.
func (s *Sharded) Features() []predict.BankFeatures {
	s.lockAll()
	defer s.unlockAll()
	return s.featuresLocked()
}

func (s *Sharded) featuresLocked() []predict.BankFeatures {
	at := s.lastLocked()
	total := 0
	for _, p := range s.parts {
		total += len(p.entries)
	}
	if total == 0 {
		return nil
	}
	lists := make([][]predict.BankFeatures, len(s.parts))
	for pi, p := range s.parts {
		lists[pi] = p.featuresLocked(at)
	}
	out := make([]predict.BankFeatures, 0, total)
	cursors := make([]int, len(s.parts))
	for len(out) < total {
		best, bestIdx := -1, 0
		for pi := range lists {
			if c := cursors[pi]; c < len(lists[pi]) {
				if best < 0 || lists[pi][c].FirstIdx < bestIdx {
					best, bestIdx = pi, lists[pi][c].FirstIdx
				}
			}
		}
		out = append(out, lists[best][cursors[best]])
		cursors[best]++
	}
	return out
}

// Records returns every ingested record in global arrival order: the
// k-way merge of the partitions' index-stamped streams. IngestBatch of
// the result into a fresh engine (sharded at any partition count, or
// serial) reproduces the fleet state.
func (s *Sharded) Records() []mce.CERecord {
	s.lockAll()
	defer s.unlockAll()
	return s.recordsLocked()
}

func (s *Sharded) recordsLocked() []mce.CERecord {
	total := 0
	for _, p := range s.parts {
		total += len(p.records)
	}
	if total == 0 {
		return nil
	}
	out := make([]mce.CERecord, 0, total)
	cursors := make([]int, len(s.parts))
	for len(out) < total {
		best := -1
		var bestG int
		for pi, p := range s.parts {
			if c := cursors[pi]; c < len(p.records) {
				if best < 0 || p.gidx[c] < bestG {
					best, bestG = pi, p.gidx[c]
				}
			}
		}
		out = append(out, s.parts[best].records[cursors[best]])
		cursors[best]++
	}
	return out
}

// LiveView returns a current or recent fleet View, with the same
// contract as Engine.LiveView: a cached view whose epoch still matches
// returns without locks, a stale one triggers a try-lock rebuild, and
// readers never block behind ingest (they get the previous view
// instead). View.Seq is compared against Sharded.Seq for staleness.
func (s *Sharded) LiveView() *View {
	seq := s.Seq()
	if v := s.view.Load(); v != nil && v.Seq == seq {
		return v
	}
	if s.viewMu.TryLock() {
		v := s.buildView()
		s.viewMu.Unlock()
		return v
	}
	if v := s.view.Load(); v != nil {
		return v
	}
	s.viewMu.Lock()
	v := s.buildView()
	s.viewMu.Unlock()
	return v
}

// BuildView materializes a fresh fleet view unconditionally (the
// fanin-merge benchmark stage measures this path).
func (s *Sharded) BuildView() *View {
	s.viewMu.Lock()
	v := s.buildView()
	s.viewMu.Unlock()
	return v
}

// buildView merges all partitions into one immutable View under every
// partition lock — an epoch-consistent cut: no reader of the published
// view can see partition A at t1 and partition B at t0. Caller holds
// s.viewMu (so concurrent builders serialize and publication stays
// ordered).
func (s *Sharded) buildView() *View {
	s.lockAll()
	defer s.unlockAll()
	last := s.lastLocked()
	nNodes := 0
	for _, p := range s.parts {
		nNodes += len(p.nodeStates)
	}
	v := &View{
		Seq:     s.seqLocked(),
		BuiltAt: time.Now(),
		Summary: s.summaryLocked(),
		Faults:  s.snapshotLocked(),
		FIT:     s.windowedFITLocked(),
		nodes:   make(map[topology.NodeID]NodeStatus, nNodes),
	}
	v.banksFn = func() []predict.BankFeatures {
		s.lockAll()
		defer s.unlockAll()
		return s.featuresLocked()
	}
	for _, p := range s.parts {
		for i := range p.nodeStates {
			ns := &p.nodeStates[i]
			v.nodes[ns.node] = NodeStatus{
				Node:        ns.node,
				CEs:         ns.ces,
				First:       ns.first,
				Last:        ns.last,
				WindowCount: ns.rw.Count(last),
				WindowRate:  ns.rw.Rate(last),
			}
		}
	}
	s.view.Store(v)
	return v
}

// StartLanes starts one admission lane (bounded queue + drainer
// goroutine) per partition. A hot partition saturates and sheds its own
// lane while the others keep draining — the failure isolation the
// fan-out exists for.
func (s *Sharded) StartLanes(cfg LaneConfig) error {
	if s.hasLanes {
		return errors.New("stream: lanes already started")
	}
	if cfg.DrainBatch <= 0 {
		cfg.DrainBatch = 256
	}
	s.laneCfg = cfg
	s.lanes = make([]*overload.Queue[laneRec], len(s.parts))
	for i := range s.parts {
		part := s.parts[i]
		qcfg := cfg.Queue
		userShed := qcfg.OnShed
		qcfg.OnShed = func(n int) {
			part.NoteShed(n)
			if userShed != nil {
				userShed(n)
			}
		}
		s.lanes[i] = overload.NewQueue[laneRec](qcfg)
	}
	for i := range s.lanes {
		s.laneWG.Add(1)
		go s.drainLane(i)
	}
	s.hasLanes = true
	return nil
}

func (s *Sharded) drainLane(i int) {
	defer s.laneWG.Done()
	lane, part := s.lanes[i], s.parts[i]
	var gs []int
	var rs []mce.CERecord
	for {
		batch, ok := lane.Take(s.laneCfg.DrainBatch)
		if len(batch) > 0 {
			gs, rs = gs[:0], rs[:0]
			for j := range batch {
				gs = append(gs, int(batch[j].g))
				rs = append(rs, batch[j].r)
			}
			part.ingestIndexed(gs, rs)
			lane.Done()
			if s.laneCfg.DrainInterval > 0 {
				time.Sleep(s.laneCfg.DrainInterval)
			}
		}
		if !ok {
			return
		}
	}
}

// Offer routes one record to its partition's lane, returning false when
// the lane shed it (the loss is already accounted). Ordered per producer
// goroutine; the global arrival index is assigned before enqueue, so a
// producer's records reach their partitions in offer order.
func (s *Sharded) Offer(r mce.CERecord) bool {
	g := s.globalIdx.Add(1) - 1
	return s.lanes[s.partition(r.Node)].Offer(laneRec{g: g, r: r})
}

// CloseLanes closes every lane and waits for the drainers to finish the
// backlog.
func (s *Sharded) CloseLanes() {
	for _, lane := range s.lanes {
		lane.Close()
	}
	s.laneWG.Wait()
}

// LaneStats returns each lane's queue accounting (index = partition).
func (s *Sharded) LaneStats() []overload.QueueStats {
	out := make([]overload.QueueStats, len(s.lanes))
	for i, lane := range s.lanes {
		out[i] = lane.Stats()
	}
	return out
}

// LaneDepth sums the records currently queued across lanes.
func (s *Sharded) LaneDepth() int {
	d := 0
	for _, lane := range s.lanes {
		d += lane.Depth()
	}
	return d
}

// Quiesce freezes every lane (drainers idle, offers blocked) and calls
// fn with a prefix-consistent snapshot: every record ingested so far in
// global order, the records still queued (in global order, across all
// lanes), and the lane stats. This is the checkpoint path: ingested +
// queued + shed == offered exactly at the instant fn runs.
func (s *Sharded) Quiesce(fn func(ingested, queued []mce.CERecord, stats []overload.QueueStats)) {
	if len(s.lanes) == 0 {
		s.lockAll()
		recs := s.recordsLocked()
		s.unlockAll()
		fn(recs, nil, nil)
		return
	}
	var frozen []laneRec
	stats := make([]overload.QueueStats, len(s.lanes))
	var freeze func(i int)
	freeze = func(i int) {
		if i == len(s.lanes) {
			s.lockAll()
			recs := s.recordsLocked()
			s.unlockAll()
			sortLaneRecs(frozen)
			queued := make([]mce.CERecord, len(frozen))
			for j := range frozen {
				queued[j] = frozen[j].r
			}
			fn(recs, queued, stats)
			return
		}
		s.lanes[i].Freeze(func(queued []laneRec, st overload.QueueStats) {
			frozen = append(frozen, queued...)
			stats[i] = st
			freeze(i + 1)
		})
	}
	freeze(0)
}

// sortLaneRecs orders queued records by global index (insertion sort:
// the input is a small concatenation of already-sorted per-lane runs).
func sortLaneRecs(rs []laneRec) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].g < rs[j-1].g; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
