package stream_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stream"
	"repro/internal/topology"
)

func viewFixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig(71)
	cfg.Nodes = 32
	ds, err := dataset.Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestViewMatchesDirectQueries pins the snapshot contract: a View must
// answer every query exactly as the engine's direct (mutex-taking)
// methods do at the same point.
func TestViewMatchesDirectQueries(t *testing.T) {
	ds := viewFixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)

	v := e.LiveView()
	if v.Seq != e.Seq() {
		t.Fatalf("fresh view seq %d != engine seq %d", v.Seq, e.Seq())
	}
	wantSum := e.Summary()
	if v.Summary != wantSum {
		t.Fatalf("view summary = %+v, want %+v", v.Summary, wantSum)
	}
	wantFaults := e.Snapshot()
	if len(v.Faults) != len(wantFaults) {
		t.Fatalf("view faults = %d, want %d", len(v.Faults), len(wantFaults))
	}
	for i := range wantFaults {
		if v.Faults[i].Node != wantFaults[i].Node || v.Faults[i].Mode != wantFaults[i].Mode ||
			v.Faults[i].NErrors != wantFaults[i].NErrors {
			t.Fatalf("view fault %d diverges from Snapshot", i)
		}
	}
	if v.FIT != e.WindowedFIT() {
		t.Fatalf("view FIT = %+v, want %+v", v.FIT, e.WindowedFIT())
	}
	for _, f := range wantFaults {
		got, ok := v.NodeStatus(f.Node)
		want, wok := e.NodeStatus(f.Node)
		if ok != wok || got.CEs != want.CEs || len(got.Faults) != len(want.Faults) ||
			got.WindowCount != want.WindowCount {
			t.Fatalf("view node %v = %+v/%v, want %+v/%v", f.Node, got, ok, want, wok)
		}
	}
	if _, ok := v.NodeStatus(topology.NewNodeID(0, 0, 0) - 1); ok {
		t.Fatal("view invented a node")
	}
	rates := v.FaultRates(32*topology.SlotsPerNode, 24*time.Hour)
	wantRates := e.FaultRates(24 * time.Hour)
	if rates != wantRates {
		t.Fatalf("view fault rates = %+v, want %+v", rates, wantRates)
	}
}

// TestViewCachingAndInvalidation: the same pointer is served while the
// engine is unchanged, and ingest invalidates it.
func TestViewCachingAndInvalidation(t *testing.T) {
	ds := viewFixture(t)
	e := stream.New(stream.Config{})
	half := len(ds.CERecords) / 2
	e.IngestBatch(ds.CERecords[:half])

	v1 := e.LiveView()
	if v2 := e.LiveView(); v2 != v1 {
		t.Fatal("unchanged engine rebuilt its view")
	}
	e.IngestBatch(ds.CERecords[half:])
	v3 := e.LiveView()
	if v3 == v1 {
		t.Fatal("ingest did not invalidate the view")
	}
	if v3.Summary.Records != len(ds.CERecords) {
		t.Fatalf("post-ingest view records = %d, want %d", v3.Summary.Records, len(ds.CERecords))
	}
	// A shed notification is a state change too: the degraded accounting
	// must reach the next view.
	e.NoteShed(3)
	v4 := e.LiveView()
	if v4 == v3 {
		t.Fatal("NoteShed did not invalidate the view")
	}
	if !v4.Summary.Degraded || v4.Summary.Shed != 3 ||
		v4.Summary.Offered != v4.Summary.Records+3 {
		t.Fatalf("shed view summary = %+v", v4.Summary)
	}
	if !v4.FIT.Degraded {
		t.Fatal("windowed FIT not degraded after shed")
	}
}

// TestViewConcurrentWithIngest races readers against ingest batches and
// checks every served view is internally consistent (run under -race in
// make verify).
func TestViewConcurrentWithIngest(t *testing.T) {
	ds := viewFixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := e.LiveView()
				if v.Summary.Offered != v.Summary.Records+v.Summary.Shed {
					t.Error("view books do not balance")
					return
				}
				if v.Summary.Faults != len(v.Faults) {
					t.Errorf("view fault count %d != snapshot len %d",
						v.Summary.Faults, len(v.Faults))
					return
				}
			}
		}()
	}
	const step = 512
	for off := 0; off < len(ds.CERecords); off += step {
		end := off + step
		if end > len(ds.CERecords) {
			end = len(ds.CERecords)
		}
		e.IngestBatch(ds.CERecords[off:end])
	}
	close(stop)
	wg.Wait()

	// Once quiescent, the view converges to the batch answer.
	v := e.LiveView()
	want, err := core.Cluster(context.Background(), ds.CERecords, core.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Faults) != len(want) {
		t.Fatalf("final view faults = %d, want batch %d", len(v.Faults), len(want))
	}
}
