// Package exclusion implements the node exclude-list mitigation §3.2
// recommends for the small number of nodes that dominate the error counts:
// once a node accumulates enough distinct correctable faults, it is
// drained and removed from scheduling until service. The package evaluates
// a policy's cost/benefit over an error stream — errors avoided versus
// node-days of capacity lost — which is the trade a site operator actually
// weighs.
//
// The policy deliberately triggers on fault counts, not error counts: the
// paper's central methodological point is that error counts are dominated
// by a few noisy faults, so an error-count trigger would drain the wrong
// nodes. An error-count variant is provided for exactly that comparison.
package exclusion

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Trigger selects what the policy counts.
type Trigger int

// Trigger kinds.
const (
	// ByFaults drains a node after FaultThreshold distinct faults — the
	// paper-aligned policy.
	ByFaults Trigger = iota
	// ByErrors drains a node after ErrorThreshold raw CE records — the
	// naive policy the paper warns against.
	ByErrors
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case ByFaults:
		return "by-faults"
	case ByErrors:
		return "by-errors"
	default:
		return fmt.Sprintf("Trigger(%d)", int(t))
	}
}

// Policy configures the exclude list.
type Policy struct {
	Trigger Trigger
	// FaultThreshold drains a node at this many distinct faults
	// (ByFaults).
	FaultThreshold int
	// ErrorThreshold drains a node at this many CE records (ByErrors).
	ErrorThreshold int
	// MaxExcluded caps the exclude list (a site cannot drain the fleet);
	// 0 means unlimited.
	MaxExcluded int
}

// DefaultPolicy drains after 6 distinct faults, at most 16 nodes.
func DefaultPolicy() Policy {
	return Policy{Trigger: ByFaults, FaultThreshold: 6, MaxExcluded: 16}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	switch p.Trigger {
	case ByFaults:
		if p.FaultThreshold < 1 {
			return fmt.Errorf("exclusion: FaultThreshold %d < 1", p.FaultThreshold)
		}
	case ByErrors:
		if p.ErrorThreshold < 1 {
			return fmt.Errorf("exclusion: ErrorThreshold %d < 1", p.ErrorThreshold)
		}
	default:
		return fmt.Errorf("exclusion: unknown trigger %d", p.Trigger)
	}
	if p.MaxExcluded < 0 {
		return fmt.Errorf("exclusion: negative MaxExcluded")
	}
	return nil
}

// Outcome reports a policy's cost/benefit over a replayed stream.
type Outcome struct {
	Policy Policy
	// Excluded lists drained nodes with their drain times.
	Excluded map[topology.NodeID]simtime.Minute
	// ErrorsAvoided counts CE records on drained nodes after their drain.
	ErrorsAvoided int
	// ErrorsDelivered counts CE records that still reached the log.
	ErrorsDelivered int
	// NodeDaysLost is the capacity cost: Σ (window end − drain time).
	NodeDaysLost float64
	// AvoidedPerNodeDay is the benefit/cost ratio (0 when nothing lost).
	AvoidedPerNodeDay float64
}

// Evaluate replays a time-ordered CE record stream (with its clustered
// faults) under the policy. windowEnd bounds the capacity-loss accounting.
// Fault attribution uses the clustering's per-record fault assignment, so
// the ByFaults trigger reacts when a *new* fault is first observed on a
// node, exactly as an online monitor running the clusterer would.
func Evaluate(records []mce.CERecord, faults []core.Fault, policy Policy, windowEnd simtime.Minute) (Outcome, error) {
	if err := policy.Validate(); err != nil {
		return Outcome{}, err
	}
	out := Outcome{Policy: policy, Excluded: map[topology.NodeID]simtime.Minute{}}

	// recordFault[i] = index of the fault owning record i (-1 if none).
	recordFault := make([]int, len(records))
	for i := range recordFault {
		recordFault[i] = -1
	}
	for fi, f := range faults {
		for _, idx := range f.Errors {
			recordFault[idx] = fi
		}
	}
	// Replay in time order (records are already sorted; indices align).
	order := make([]int, len(records))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return records[order[a]].Time.Before(records[order[b]].Time)
	})

	faultsSeen := map[topology.NodeID]map[int]bool{}
	errorsSeen := map[topology.NodeID]int{}
	for _, idx := range order {
		r := records[idx]
		if _, gone := out.Excluded[r.Node]; gone {
			out.ErrorsAvoided++
			continue
		}
		out.ErrorsDelivered++
		trigger := false
		switch policy.Trigger {
		case ByFaults:
			if fi := recordFault[idx]; fi >= 0 {
				set := faultsSeen[r.Node]
				if set == nil {
					set = map[int]bool{}
					faultsSeen[r.Node] = set
				}
				set[fi] = true
				trigger = len(set) >= policy.FaultThreshold
			}
		case ByErrors:
			errorsSeen[r.Node]++
			trigger = errorsSeen[r.Node] >= policy.ErrorThreshold
		}
		if trigger && (policy.MaxExcluded == 0 || len(out.Excluded) < policy.MaxExcluded) {
			at := simtime.MinuteOf(r.Time)
			out.Excluded[r.Node] = at
			out.NodeDaysLost += float64(windowEnd-at) / simtime.MinutesPerDay
		}
	}
	if out.NodeDaysLost > 0 {
		out.AvoidedPerNodeDay = float64(out.ErrorsAvoided) / out.NodeDaysLost
	}
	return out, nil
}
