package exclusion

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/simtime"
)

func buildStream(t *testing.T, seed uint64, nodes int) ([]mce.CERecord, []core.Fault, simtime.Minute) {
	t.Helper()
	cfg := faultmodel.DefaultConfig(seed)
	cfg.Nodes = nodes
	pop, err := faultmodel.Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := mce.NewEncoder(seed)
	records := make([]mce.CERecord, len(pop.CEs))
	for i, ev := range pop.CEs {
		records[i] = mustEncodeCE(enc, ev, i)
	}
	faults := mustCluster(records, core.DefaultClusterConfig())
	return records, faults, simtime.MinuteOf(cfg.End)
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{Trigger: ByFaults, FaultThreshold: 0},
		{Trigger: ByErrors, ErrorThreshold: 0},
		{Trigger: Trigger(9)},
		{Trigger: ByFaults, FaultThreshold: 1, MaxExcluded: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
	if ByFaults.String() != "by-faults" || ByErrors.String() != "by-errors" {
		t.Error("trigger names wrong")
	}
}

func TestEvaluateConservation(t *testing.T) {
	records, faults, end := buildStream(t, 41, 300)
	out, err := Evaluate(records, faults, DefaultPolicy(), end)
	if err != nil {
		t.Fatal(err)
	}
	if out.ErrorsAvoided+out.ErrorsDelivered != len(records) {
		t.Errorf("conservation: %d + %d != %d", out.ErrorsAvoided, out.ErrorsDelivered, len(records))
	}
	if len(out.Excluded) == 0 {
		t.Error("no nodes drained (pathological nodes exist)")
	}
	if out.NodeDaysLost <= 0 {
		t.Error("no capacity cost accounted")
	}
	if out.AvoidedPerNodeDay <= 0 {
		t.Error("no benefit/cost ratio")
	}
}

func TestFaultTriggerDrainsTheRightNodes(t *testing.T) {
	// The paper's point operationalized: an error-count trigger drains
	// nodes whose single noisy fault would have been handled by page
	// retirement, while the fault-count trigger only drains genuinely
	// multi-fault machines. Compare "false drains": drained nodes with
	// fewer than 3 distinct clustered faults.
	records, faults, end := buildStream(t, 42, 400)
	falseDrains := func(out Outcome) int {
		perNode := map[int]int{}
		for _, f := range faults {
			perNode[int(f.Node)]++
		}
		n := 0
		for node := range out.Excluded {
			if perNode[int(node)] < 3 {
				n++
			}
		}
		return n
	}
	byFaults, err := Evaluate(records, faults, Policy{Trigger: ByFaults, FaultThreshold: 6, MaxExcluded: 12}, end)
	if err != nil {
		t.Fatal(err)
	}
	byErrors, err := Evaluate(records, faults, Policy{Trigger: ByErrors, ErrorThreshold: 50, MaxExcluded: 12}, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(byFaults.Excluded) == 0 || len(byErrors.Excluded) == 0 {
		t.Skip("draw produced no drainable nodes")
	}
	if ff := falseDrains(byFaults); ff != 0 {
		t.Errorf("fault trigger drained %d single-fault nodes", ff)
	}
	if fe := falseDrains(byErrors); fe == 0 {
		t.Logf("note: error trigger made no false drains in this draw")
	} else if falseDrains(byFaults) > fe {
		t.Error("fault trigger made more false drains than the error trigger")
	}
}

func TestMaxExcludedCap(t *testing.T) {
	records, faults, end := buildStream(t, 43, 400)
	out, err := Evaluate(records, faults, Policy{Trigger: ByFaults, FaultThreshold: 2, MaxExcluded: 3}, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Excluded) > 3 {
		t.Errorf("excluded %d nodes, cap is 3", len(out.Excluded))
	}
}

func TestEvaluateRejectsBadPolicy(t *testing.T) {
	if _, err := Evaluate(nil, nil, Policy{Trigger: ByFaults}, 0); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestEvaluateEmptyStream(t *testing.T) {
	out, err := Evaluate(nil, nil, DefaultPolicy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ErrorsAvoided != 0 || out.ErrorsDelivered != 0 || len(out.Excluded) != 0 {
		t.Errorf("empty stream outcome = %+v", out)
	}
}
