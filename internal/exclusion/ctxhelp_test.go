package exclusion

import (
	"context"

	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/mce"
)

// mustEncodeCE and mustCluster adapt the ctx+error APIs for test sites
// where an error is simply a test bug.
func mustEncodeCE(enc *mce.Encoder, ev faultmodel.CEEvent, i int) mce.CERecord {
	rec, err := enc.EncodeCE(ev, i)
	if err != nil {
		panic(err)
	}
	return rec
}

func mustCluster(records []mce.CERecord, cfg core.ClusterConfig) []core.Fault {
	faults, err := core.Cluster(context.Background(), records, cfg)
	if err != nil {
		panic(err)
	}
	return faults
}
