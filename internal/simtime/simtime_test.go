package simtime

import (
	"testing"
	"time"
)

func TestMinuteRoundTrip(t *testing.T) {
	for _, tm := range []time.Time{Epoch, StudyStart, EnvStart, HETStart, StudyEnd} {
		m := MinuteOf(tm)
		if got := m.Time(); !got.Equal(tm) {
			t.Errorf("minute round trip %v -> %v", tm, got)
		}
	}
	// Sub-minute times floor.
	tm := Epoch.Add(90 * time.Second)
	if MinuteOf(tm) != 1 {
		t.Errorf("MinuteOf(+90s) = %d", MinuteOf(tm))
	}
}

func TestDayRoundTrip(t *testing.T) {
	for _, tm := range []time.Time{Epoch, StudyStart, ReplacementStart, ReplacementEnd} {
		d := DayOf(tm)
		if got := d.Time(); !got.Equal(tm) {
			t.Errorf("day round trip %v -> %v", tm, got)
		}
	}
	if DayOf(StudyStart) != 19 {
		t.Errorf("Jan 20 should be day 19, got %d", DayOf(StudyStart))
	}
}

func TestMinuteDayConsistency(t *testing.T) {
	m := MinuteOf(StudyStart)
	if m.Day() != DayOf(StudyStart) {
		t.Errorf("Minute.Day = %d, DayOf = %d", m.Day(), DayOf(StudyStart))
	}
	d := DayOf(EnvStart)
	if d.Start().Time() != EnvStart {
		t.Errorf("Day.Start mismatch: %v", d.Start().Time())
	}
}

func TestIntervalOrdering(t *testing.T) {
	ordered := []time.Time{StudyStart, ReplacementStart, EnvStart, HETStart, StudyEnd, ReplacementEnd, EnvEnd}
	for i := 1; i < len(ordered); i++ {
		if !ordered[i-1].Before(ordered[i]) {
			t.Errorf("interval boundaries out of order at %d: %v !< %v", i, ordered[i-1], ordered[i])
		}
	}
}

func TestMonthKey(t *testing.T) {
	k := MonthKey(time.Date(2019, 5, 20, 13, 0, 0, 0, time.UTC))
	if MonthLabel(k) != "2019-05" {
		t.Errorf("MonthLabel = %q", MonthLabel(k))
	}
	if MonthKey(MonthKeyTime(k)) != k {
		t.Error("month key round trip failed")
	}
	// Consecutive months differ by 1, across year boundary too.
	dec := MonthKey(time.Date(2019, 12, 31, 0, 0, 0, 0, time.UTC))
	jan := MonthKey(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	if jan-dec != 1 {
		t.Errorf("year boundary: dec=%d jan=%d", dec, jan)
	}
}

func TestStudyDurations(t *testing.T) {
	// The failure window is 237 days; the env window is 122 days.
	if got := StudyEnd.Sub(StudyStart).Hours() / 24; got != 237 {
		t.Errorf("study window = %v days", got)
	}
	if got := EnvEnd.Sub(EnvStart).Hours() / 24; got != 122 {
		t.Errorf("env window = %v days", got)
	}
}
