// Package simtime defines the simulated study calendar and the minute/day
// indexing shared by the fault, environment, logging and inventory models.
//
// All timestamps are UTC. Minute and day indices count from Epoch
// (2019-01-01T00:00Z) so that records from different subsystems join on a
// common clock.
package simtime

import "time"

// Epoch is the origin of minute and day indices.
var Epoch = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

// Study intervals from the paper (§2.3, §3.1, §3.3, §3.5).
var (
	// StudyStart begins the failure-analysis interval (Jan 20, 2019).
	StudyStart = time.Date(2019, 1, 20, 0, 0, 0, 0, time.UTC)
	// StudyEnd ends the failure-analysis interval (Sep 14, 2019), when the
	// system moved to a closed network.
	StudyEnd = time.Date(2019, 9, 14, 0, 0, 0, 0, time.UTC)
	// ReplacementStart begins the hardware-replacement tracking window
	// (Feb 17, 2019).
	ReplacementStart = time.Date(2019, 2, 17, 0, 0, 0, 0, time.UTC)
	// ReplacementEnd ends the hardware-replacement tracking window
	// (Sep 17, 2019).
	ReplacementEnd = time.Date(2019, 9, 17, 0, 0, 0, 0, time.UTC)
	// EnvStart begins the environmental-data interval (May 20, 2019).
	EnvStart = time.Date(2019, 5, 20, 0, 0, 0, 0, time.UTC)
	// EnvEnd ends the environmental-data interval (Sep 19, 2019).
	EnvEnd = time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	// HETStart is when Hardware Event Tracker records begin appearing in
	// the syslog, following the August 2019 firmware update.
	HETStart = time.Date(2019, 8, 23, 0, 0, 0, 0, time.UTC)
)

// Minute is a minute index relative to Epoch.
type Minute int64

// Day is a day index relative to Epoch.
type Day int64

// MinuteOf converts a time to its minute index (flooring).
func MinuteOf(t time.Time) Minute {
	return Minute(t.Sub(Epoch) / time.Minute)
}

// Time converts a minute index back to a time.
func (m Minute) Time() time.Time {
	return Epoch.Add(time.Duration(m) * time.Minute)
}

// Day returns the day containing this minute.
func (m Minute) Day() Day { return Day(m / MinutesPerDay) }

// DayOf converts a time to its day index (flooring).
func DayOf(t time.Time) Day {
	return Day(t.Sub(Epoch) / (24 * time.Hour))
}

// Time converts a day index back to the midnight starting that day.
func (d Day) Time() time.Time {
	return Epoch.AddDate(0, 0, int(d))
}

// Start returns the first minute of the day.
func (d Day) Start() Minute { return Minute(d) * MinutesPerDay }

// Common durations in minutes, used for the temperature-window analysis
// (Fig 9: one hour, one day, one week, one month).
const (
	MinutesPerHour  = 60
	MinutesPerDay   = 24 * MinutesPerHour
	MinutesPerWeek  = 7 * MinutesPerDay
	MinutesPerMonth = 30 * MinutesPerDay
)

// HoursPerYear is used for FIT-rate conversion (FIT = failures per 1e9
// device-hours); 8766 matches the paper's Julian-year convention.
const HoursPerYear = 8766.0

// MonthKey returns a yyyy*12+mm key identifying the calendar month of a
// time, for monthly aggregation (Figs 4a, 13, 14).
func MonthKey(t time.Time) int {
	return t.Year()*12 + int(t.Month()) - 1
}

// MonthKeyTime returns the first instant of the month identified by key.
func MonthKeyTime(key int) time.Time {
	return time.Date(key/12, time.Month(key%12+1), 1, 0, 0, 0, 0, time.UTC)
}

// MonthLabel renders a month key as "2019-05".
func MonthLabel(key int) string {
	return MonthKeyTime(key).Format("2006-01")
}
