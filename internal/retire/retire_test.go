package retire

import (
	"context"
	"testing"

	"repro/internal/faultmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func eventAt(node topology.NodeID, row, col int, minute simtime.Minute) faultmodel.CEEvent {
	cell := topology.CellAddr{Node: node, Slot: 0, Rank: 0, Bank: 0, Row: row, Col: col}
	return faultmodel.CEEvent{Minute: minute, Node: node, Addr: topology.EncodePhysAddr(cell, 0), Bit: 1}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{Threshold: 0, SuccessProb: 0.5},
		{Threshold: 1, SuccessProb: -0.1},
		{Threshold: 1, SuccessProb: 1.5},
		{Threshold: 1, SuccessProb: 0.5, MaxPagesPerNode: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
}

func TestRetirementSuppressesRepeatOffender(t *testing.T) {
	e := NewEngine(1, Policy{Threshold: 3, SuccessProb: 1})
	var kept int
	for i := 0; i < 10; i++ {
		if e.Observe(eventAt(5, 100, 0, simtime.Minute(i))) {
			kept++
		}
	}
	// First 3 errors arrive (retirement fires at the 3rd); the rest are
	// suppressed.
	if kept != 3 {
		t.Errorf("kept = %d, want 3", kept)
	}
	st := e.Stats()
	if st.Suppressed != 7 || st.Retired != 1 || st.Seen != 10 {
		t.Errorf("stats = %+v", st)
	}
	if e.RetiredPages(5) != 1 {
		t.Errorf("RetiredPages = %d", e.RetiredPages(5))
	}
}

func TestDifferentPagesIndependent(t *testing.T) {
	e := NewEngine(1, Policy{Threshold: 2, SuccessProb: 1})
	// Two errors on page A retire it; page B remains live.
	e.Observe(eventAt(1, 0, 0, 0))
	e.Observe(eventAt(1, 0, 0, 1))
	if !e.Observe(eventAt(1, 4000, 0, 2)) {
		t.Error("error on unrelated page suppressed")
	}
	if e.Observe(eventAt(1, 0, 0, 3)) {
		t.Error("error on retired page not suppressed")
	}
}

func TestFailedRetirementKeepsErrorsFlowing(t *testing.T) {
	e := NewEngine(1, Policy{Threshold: 2, SuccessProb: 0})
	kept := 0
	for i := 0; i < 50; i++ {
		if e.Observe(eventAt(2, 7, 7, simtime.Minute(i))) {
			kept++
		}
	}
	if kept != 50 {
		t.Errorf("kept = %d, want all 50 (retirement always fails)", kept)
	}
	if st := e.Stats(); st.Failed != 1 || st.Retired != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPageBudget(t *testing.T) {
	e := NewEngine(1, Policy{Threshold: 1, SuccessProb: 1, MaxPagesPerNode: 2})
	// Three distinct pages hit threshold; only two may retire.
	for p := 0; p < 3; p++ {
		e.Observe(eventAt(3, p*8, 0, simtime.Minute(p)))
	}
	st := e.Stats()
	if st.Retired != 2 || st.BudgetExhausted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.MemoryRetiredBytes(); got != 2*topology.PageBytes {
		t.Errorf("MemoryRetiredBytes = %d", got)
	}
}

func TestFilterReducesHeavyFaultStream(t *testing.T) {
	cfg := faultmodel.DefaultConfig(11)
	cfg.Nodes = 200
	pop, err := faultmodel.Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(2, DefaultPolicy())
	kept := e.Filter(pop.CEs)
	if len(kept) >= len(pop.CEs) {
		t.Errorf("retirement removed nothing: %d -> %d", len(pop.CEs), len(kept))
	}
	st := e.Stats()
	if st.Seen != len(pop.CEs) || st.Suppressed != len(pop.CEs)-len(kept) {
		t.Errorf("stats inconsistent: %+v vs %d/%d", st, len(pop.CEs), len(kept))
	}
	// Retirement must bite hard on single-bit repeat offenders: the
	// surviving stream should be a small fraction when most errors come
	// from a few stuck bits.
	if float64(len(kept)) > 0.9*float64(len(pop.CEs)) {
		t.Logf("note: retirement suppressed only %.1f%% of errors", 100*float64(st.Suppressed)/float64(st.Seen))
	}
}

func TestNewEnginePanicsOnBadPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(1, Policy{Threshold: 0})
}

func TestEngineDeterministic(t *testing.T) {
	mk := func() Stats {
		e := NewEngine(42, Policy{Threshold: 2, SuccessProb: 0.5})
		for i := 0; i < 200; i++ {
			e.Observe(eventAt(topology.NodeID(i%5), (i%17)*8, 0, simtime.Minute(i)))
		}
		return e.Stats()
	}
	if mk() != mk() {
		t.Error("same-seed engines diverge")
	}
}
