package retire

import (
	"testing"
	"testing/quick"

	"repro/internal/faultmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Property: for any event sequence and any sane policy, the accounting
// balances (suppressed <= seen; delivered + suppressed == seen) and the
// retired-page count never exceeds the per-node budget.
func TestEngineAccountingProperty(t *testing.T) {
	f := func(rows []uint16, nodes []uint8, threshold uint8, budget uint8) bool {
		th := int(threshold)%8 + 1
		bud := int(budget) % 16
		e := NewEngine(1, Policy{Threshold: th, SuccessProb: 0.5, MaxPagesPerNode: bud})
		delivered := 0
		n := len(rows)
		if len(nodes) < n {
			n = len(nodes)
		}
		for i := 0; i < n; i++ {
			cell := topology.CellAddr{
				Node: topology.NodeID(int(nodes[i]) % 32),
				Slot: 0, Rank: 0, Bank: 0,
				Row: int(rows[i]) % topology.RowsPerBank,
				Col: 0,
			}
			ev := faultmodel.CEEvent{
				Minute: simtime.Minute(i),
				Node:   cell.Node,
				Addr:   topology.EncodePhysAddr(cell, 0),
			}
			if e.Observe(ev) {
				delivered++
			}
		}
		st := e.Stats()
		if st.Seen != n || delivered+st.Suppressed != n {
			return false
		}
		if bud > 0 {
			for node := topology.NodeID(0); node < 32; node++ {
				if e.RetiredPages(node) > bud {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
