// Package retire models OS page retirement (Tang et al., cited as the
// paper's [36]): when a physical page accumulates repeated correctable
// errors, the kernel unmaps it so the underlying fault stops producing
// errors. The paper credits page retirement (plus maintenance) for the
// downward error trend of Fig 4a and argues that small-footprint fault
// modes make retirement cheap (§3.2) while single-bank faults would
// require mapping out large address ranges.
//
// The model captures the operationally important imperfections: retirement
// can fail (pinned or kernel-owned pages cannot be unmapped — how a fault
// can still emit ~91,000 errors on a system with retirement enabled), and
// each node has a budget of retirable pages so the analysis can report the
// memory given up.
package retire

import (
	"fmt"

	"repro/internal/faultmodel"
	"repro/internal/simrand"
	"repro/internal/topology"
)

// Policy configures the retirement engine.
type Policy struct {
	// Threshold is the number of CEs a page may accumulate before the
	// kernel attempts to retire it.
	Threshold int
	// SuccessProb is the probability a retirement attempt succeeds; a
	// failed attempt marks the page unretirable forever (pinned memory).
	SuccessProb float64
	// MaxPagesPerNode caps retired pages per node (memory-loss budget);
	// 0 means unlimited.
	MaxPagesPerNode int
}

// DefaultPolicy mirrors a conservative production setting: retire after 4
// CEs on a page, 85% success, at most 4096 pages (16 MiB) per node.
func DefaultPolicy() Policy {
	return Policy{Threshold: 4, SuccessProb: 0.85, MaxPagesPerNode: 4096}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.Threshold < 1 {
		return fmt.Errorf("retire: threshold %d < 1", p.Threshold)
	}
	if p.SuccessProb < 0 || p.SuccessProb > 1 {
		return fmt.Errorf("retire: success probability %v out of [0,1]", p.SuccessProb)
	}
	if p.MaxPagesPerNode < 0 {
		return fmt.Errorf("retire: negative page budget")
	}
	return nil
}

// pageKey identifies a physical page on a node.
type pageKey struct {
	node topology.NodeID
	page uint64
}

// pageState tracks one page's retirement lifecycle.
type pageState int8

const (
	pageLive pageState = iota
	pageRetired
	pageUnretirable
)

// Stats accumulates the engine's effect.
type Stats struct {
	// Seen is the number of CEs offered.
	Seen int
	// Suppressed is the number of CEs avoided because their page was
	// already retired.
	Suppressed int
	// Retired is the number of successfully retired pages.
	Retired int
	// Failed is the number of pages whose retirement attempt failed.
	Failed int
	// BudgetExhausted counts attempts skipped because a node hit its
	// page budget.
	BudgetExhausted int
}

// MemoryRetiredBytes returns the total memory mapped out.
func (s Stats) MemoryRetiredBytes() int64 {
	return int64(s.Retired) * topology.PageBytes
}

// Engine applies a Policy to a time-ordered CE stream. Construct with
// NewEngine; not safe for concurrent use.
type Engine struct {
	policy  Policy
	rng     *simrand.Stream
	counts  map[pageKey]int
	state   map[pageKey]pageState
	perNode map[topology.NodeID]int
	stats   Stats
}

// NewEngine builds an engine; randomness (retirement success) derives from
// seed. It panics on an invalid policy (programmer error — validate
// user-supplied policies first).
func NewEngine(seed uint64, policy Policy) *Engine {
	if err := policy.Validate(); err != nil {
		panic(err)
	}
	return &Engine{
		policy:  policy,
		rng:     simrand.NewStream(seed).Derive("retire"),
		counts:  map[pageKey]int{},
		state:   map[pageKey]pageState{},
		perNode: map[topology.NodeID]int{},
	}
}

// Observe feeds one CE and reports whether the error actually manifests
// (true) or was suppressed by an earlier retirement (false).
func (e *Engine) Observe(ev faultmodel.CEEvent) bool {
	e.stats.Seen++
	key := pageKey{node: ev.Node, page: ev.Addr.Page()}
	switch e.state[key] {
	case pageRetired:
		e.stats.Suppressed++
		return false
	case pageUnretirable:
		return true
	}
	e.counts[key]++
	if e.counts[key] >= e.policy.Threshold {
		e.attempt(key)
	}
	return true
}

func (e *Engine) attempt(key pageKey) {
	if e.policy.MaxPagesPerNode > 0 && e.perNode[key.node] >= e.policy.MaxPagesPerNode {
		e.stats.BudgetExhausted++
		e.state[key] = pageUnretirable
		return
	}
	if e.rng.Bool(e.policy.SuccessProb) {
		e.state[key] = pageRetired
		e.perNode[key.node]++
		e.stats.Retired++
	} else {
		e.state[key] = pageUnretirable
		e.stats.Failed++
	}
}

// Filter applies the engine to an entire time-ordered stream and returns
// the surviving events plus statistics.
func (e *Engine) Filter(events []faultmodel.CEEvent) []faultmodel.CEEvent {
	out := make([]faultmodel.CEEvent, 0, len(events))
	for _, ev := range events {
		if e.Observe(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Stats returns the accounting so far.
func (e *Engine) Stats() Stats { return e.stats }

// PageRetired reports whether the page containing addr on node is
// currently retired — the query the predict payoff simulator uses to
// decide whether a later uncorrectable access would have been avoided.
func (e *Engine) PageRetired(node topology.NodeID, addr topology.PhysAddr) bool {
	return e.state[pageKey{node: node, page: addr.Page()}] == pageRetired
}

// RetiredPages returns the number of pages currently retired on a node.
func (e *Engine) RetiredPages(node topology.NodeID) int { return e.perNode[node] }
