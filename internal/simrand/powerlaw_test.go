package simrand

import (
	"math"
	"testing"
)

func TestPowerLawHeadProbabilities(t *testing.T) {
	// For alpha = 2.5 on [1, 1e6], P(1) should match 1/zeta(2.5) ~= 0.7454
	// and P(1)/P(2) = 2^2.5 ~= 5.657.
	pl := NewPowerLaw(2.5, 1, 1_000_000)
	rng := NewStream(1)
	const n = 400000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[pl.Sample(rng)]++
	}
	p1 := float64(counts[1]) / n
	if math.Abs(p1-0.7454) > 0.01 {
		t.Errorf("P(1) = %v, want ~0.7454", p1)
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-5.657) > 0.5 {
		t.Errorf("P(1)/P(2) = %v, want ~5.66", ratio)
	}
}

func TestPowerLawBounds(t *testing.T) {
	pl := NewPowerLaw(1.3, 5, 500)
	rng := NewStream(2)
	for i := 0; i < 50000; i++ {
		k := pl.Sample(rng)
		if k < 5 || k > 500 {
			t.Fatalf("sample %d out of [5,500]", k)
		}
	}
}

func TestPowerLawTinyRange(t *testing.T) {
	pl := NewPowerLaw(2, 3, 3)
	rng := NewStream(3)
	for i := 0; i < 100; i++ {
		if k := pl.Sample(rng); k != 3 {
			t.Fatalf("degenerate range sample = %d", k)
		}
	}
}

func TestPowerLawTailReachable(t *testing.T) {
	// With a shallow exponent and wide range, samples beyond the head
	// table must occur.
	pl := NewPowerLaw(1.2, 1, 10_000_000)
	rng := NewStream(4)
	sawTail := false
	for i := 0; i < 200000; i++ {
		if pl.Sample(rng) > headTableSize {
			sawTail = true
			break
		}
	}
	if !sawTail {
		t.Error("never sampled past the head table for a heavy tail")
	}
}

func TestPowerLawMean(t *testing.T) {
	pl := NewPowerLaw(2.5, 1, 100000)
	rng := NewStream(5)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(pl.Sample(rng))
	}
	got := sum / n
	want := pl.Mean()
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("sample mean %v vs analytic %v", got, want)
	}
}

func TestNewPowerLawPanics(t *testing.T) {
	cases := []struct {
		alpha      float64
		xmin, xmax int
	}{{1.0, 1, 10}, {2, 0, 10}, {2, 10, 5}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPowerLaw(%v,%d,%d) should panic", c.alpha, c.xmin, c.xmax)
				}
			}()
			NewPowerLaw(c.alpha, c.xmin, c.xmax)
		}()
	}
}
