package simrand

import (
	"math"
	"testing"
)

func TestIntNAndInt64NRanges(t *testing.T) {
	s := NewStream(41)
	for i := 0; i < 1000; i++ {
		if v := s.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if v := s.Int64N(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int64N out of range: %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewStream(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", got)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := NewStream(47)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed elements: %v", xs)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestParetoPanicsOnBadParams(t *testing.T) {
	cases := []struct{ alpha, lo, hi float64 }{
		{0, 1, 2}, {1, 0, 2}, {1, 3, 2},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pareto(%v,%v,%v) should panic", c.alpha, c.lo, c.hi)
				}
			}()
			NewStream(1).Pareto(c.alpha, c.lo, c.hi)
		}()
	}
}

func TestPowerLawIntPanicsOnBadParams(t *testing.T) {
	cases := []struct {
		alpha      float64
		xmin, xmax int
	}{{1, 1, 10}, {2, 0, 10}, {2, 5, 4}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PowerLawInt(%v,%d,%d) should panic", c.alpha, c.xmin, c.xmax)
				}
			}()
			NewStream(1).PowerLawInt(c.alpha, c.xmin, c.xmax)
		}()
	}
}

func TestWeibullPanicsOnBadParams(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Weibull(%v,%v) should panic", c[0], c[1])
				}
			}()
			NewStream(1).Weibull(c[0], c[1])
		}()
	}
}

func TestSeedAccessor(t *testing.T) {
	if NewStream(99).Seed() != 99 {
		t.Error("Seed() does not round-trip")
	}
}

func TestPowerLawIntBounds(t *testing.T) {
	s := NewStream(53)
	for i := 0; i < 5000; i++ {
		if v := s.PowerLawInt(1.5, 2, 50); v < 2 || v > 50 {
			t.Fatalf("PowerLawInt out of bounds: %d", v)
		}
	}
}
