// Package simrand provides deterministic, splittable random number streams
// and the sampling distributions used by the Astra memory-failure simulator.
//
// Everything in this package is reproducible: a Stream is fully determined
// by a 64-bit seed, and streams may be split by string label so that
// independent subsystems (fault generation, telemetry, inventory, ...)
// draw from statistically independent sequences without coordinating.
//
// The package also exposes stateless hash noise (Hash64, HashUnit) used by
// the procedural telemetry model in internal/envmodel, which must evaluate
// sensor samples at arbitrary (node, sensor, minute) coordinates in O(1)
// without storing the series.
package simrand

import (
	"math"
	"math/rand/v2"
)

// splitmix64 advances the SplitMix64 state and returns the next value.
// It is the standard avalanche mixer from Steele et al., used both for
// seeding PCG streams and as stateless coordinate noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes an arbitrary number of 64-bit coordinates into a single
// well-distributed 64-bit value. It is pure: the same inputs always yield
// the same output.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return splitmix64(h)
}

// HashString folds a string label into a 64-bit hash (FNV-1a followed by a
// SplitMix64 finalizer so short labels still differ in every bit).
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return splitmix64(h)
}

// HashUnit maps coordinates to a float64 uniformly distributed in [0, 1).
func HashUnit(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / (1 << 53)
}

// HashNorm maps coordinates to an approximately standard-normal deviate.
// It uses the sum of four independent uniforms (Irwin-Hall, variance 4/12)
// rescaled to unit variance; adequate for sensor noise, and pure.
func HashNorm(parts ...uint64) float64 {
	h := Hash64(parts...)
	s := 0.0
	for i := 0; i < 4; i++ {
		h = splitmix64(h)
		s += float64(h>>11) / (1 << 53)
	}
	// mean 2, variance 4/12 = 1/3 => scale by sqrt(3).
	return (s - 2) * 1.7320508075688772
}

// Stream is a deterministic random stream. The zero value is not usable;
// construct with NewStream or Stream.Derive.
type Stream struct {
	rng  *rand.Rand
	seed uint64
}

// NewStream returns a stream seeded by seed.
func NewStream(seed uint64) *Stream {
	return &Stream{
		rng:  rand.New(rand.NewPCG(splitmix64(seed), splitmix64(seed^0xdeadbeefcafef00d))),
		seed: seed,
	}
}

// Derive returns a new independent stream whose seed is determined by this
// stream's seed and the given label. Derive does not consume randomness
// from the parent, so the order of Derive calls never perturbs results.
func (s *Stream) Derive(label string) *Stream {
	return NewStream(Hash64(s.seed, HashString(label)))
}

// DeriveN returns a new independent stream keyed by label and an index,
// for per-entity substreams (for example one stream per node).
func (s *Stream) DeriveN(label string, n uint64) *Stream {
	return NewStream(Hash64(s.seed, HashString(label), n))
}

// Seed reports the seed the stream was constructed with.
func (s *Stream) Seed() uint64 { return s.seed }

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 { return s.rng.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.rng.IntN(n) }

// Int64N returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Stream) Int64N(n int64) int64 { return s.rng.Int64N(n) }

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.rng.Float64() < p }

// Norm returns a normal deviate with the given mean and standard deviation.
func (s *Stream) Norm(mean, sd float64) float64 {
	return mean + sd*s.rng.NormFloat64()
}

// TruncNorm returns a normal deviate truncated (by rejection) to [lo, hi].
// It panics if lo > hi. If the acceptance region is far in the tail the
// rejection loop falls back to clamping after 64 attempts; for all uses in
// this module the region covers the bulk of the distribution.
func (s *Stream) TruncNorm(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("simrand: TruncNorm bounds inverted")
	}
	for i := 0; i < 64; i++ {
		v := s.Norm(mean, sd)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exp requires rate > 0")
	}
	return s.rng.ExpFloat64() / rate
}

// Poisson returns a Poisson deviate with the given mean. For small means it
// uses Knuth's product method; for large means a normal approximation with
// continuity correction, which is accurate to well under the sampling noise
// of the simulations here.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Round(s.Norm(mean, math.Sqrt(mean)))
	if v < 0 {
		return 0
	}
	return int(v)
}

// Weibull returns a Weibull deviate with the given shape k and scale
// lambda, via inverse transform. It panics on non-positive parameters.
func (s *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("simrand: Weibull requires positive shape and scale")
	}
	u := s.rng.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Pareto returns a bounded Pareto deviate on [lo, hi] with tail exponent
// alpha > 0 (density ∝ x^-(alpha+1)). It panics on invalid parameters.
func (s *Stream) Pareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi < lo {
		panic("simrand: Pareto requires alpha > 0 and 0 < lo <= hi")
	}
	u := s.rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// PowerLawInt returns an integer deviate k in [xmin, xmax] drawn from a
// discrete power law P(k) ∝ k^-alpha, using the continuous-approximation
// inverse method of Clauset, Shalizi & Newman (2009, appendix D): draw a
// continuous bounded Pareto on [xmin-1/2, xmax+1/2] with exponent alpha-1
// ... in practice the standard approximation floor(continuous + 1/2) is
// accurate for xmin >= 1. It panics on invalid parameters.
func (s *Stream) PowerLawInt(alpha float64, xmin, xmax int) int {
	if alpha <= 1 || xmin < 1 || xmax < xmin {
		panic("simrand: PowerLawInt requires alpha > 1 and 1 <= xmin <= xmax")
	}
	lo := float64(xmin) - 0.5
	hi := float64(xmax) + 0.5
	v := s.Pareto(alpha-1, lo, hi)
	k := int(math.Floor(v + 0.5))
	if k < xmin {
		k = xmin
	}
	if k > xmax {
		k = xmax
	}
	return k
}

// Categorical samples an index from the (unnormalized, non-negative)
// weights. It panics if weights is empty or sums to zero.
func (s *Stream) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("simrand: Categorical weight < 0")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("simrand: Categorical requires positive total weight")
	}
	u := s.rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }
