package simrand

import "math"

// PowerLaw is a sampler for the bounded discrete power law
// P(k) ∝ k^-alpha on [Xmin, Xmax]. It precomputes an exact inverse-CDF
// table for the head of the distribution (where nearly all mass lives) and
// falls back to a rounded continuous bounded Pareto for the far tail, where
// the continuous approximation error is negligible. Construct once, sample
// many times; the sampler itself is immutable and safe for concurrent use
// with distinct Streams.
type PowerLaw struct {
	alpha      float64
	xmin, xmax int
	headMax    int       // last value covered by the exact table
	cdf        []float64 // cdf[i] = P(X <= xmin+i) for xmin+i <= headMax
	headMass   float64   // total probability of the head region
}

// headTableSize bounds the exact head table.
const headTableSize = 4096

// NewPowerLaw builds a sampler. It panics if alpha <= 1, xmin < 1 or
// xmax < xmin.
func NewPowerLaw(alpha float64, xmin, xmax int) *PowerLaw {
	if alpha <= 1 || xmin < 1 || xmax < xmin {
		panic("simrand: NewPowerLaw requires alpha > 1 and 1 <= xmin <= xmax")
	}
	p := &PowerLaw{alpha: alpha, xmin: xmin, xmax: xmax}
	p.headMax = xmin + headTableSize - 1
	if p.headMax > xmax {
		p.headMax = xmax
	}
	// Unnormalized masses: head exactly, tail via the continuous integral
	// ∫_{headMax+1/2}^{xmax+1/2} x^-alpha dx (consistent with how the tail
	// is sampled).
	head := make([]float64, p.headMax-xmin+1)
	total := 0.0
	for k := xmin; k <= p.headMax; k++ {
		total += math.Pow(float64(k), -alpha)
		head[k-xmin] = total
	}
	tailMass := 0.0
	if p.headMax < xmax {
		a1 := alpha - 1
		tailMass = (math.Pow(float64(p.headMax)+0.5, -a1) - math.Pow(float64(xmax)+0.5, -a1)) / a1
	}
	z := total + tailMass
	p.cdf = head
	for i := range p.cdf {
		p.cdf[i] /= z
	}
	p.headMass = total / z
	return p
}

// Sample draws one value using randomness from s.
func (p *PowerLaw) Sample(s *Stream) int {
	u := s.Float64()
	if u < p.headMass || p.headMax == p.xmax {
		// Binary search the head table for the smallest k with cdf >= u.
		lo, hi := 0, len(p.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if p.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return p.xmin + lo
	}
	// Tail: continuous bounded Pareto with density ∝ x^-alpha on
	// [headMax+1/2, xmax+1/2], rounded to the nearest integer.
	v := s.Pareto(p.alpha-1, float64(p.headMax)+0.5, float64(p.xmax)+0.5)
	k := int(math.Floor(v + 0.5))
	if k <= p.headMax {
		k = p.headMax + 1
	}
	if k > p.xmax {
		k = p.xmax
	}
	return k
}

// Mean returns the exact mean of the head region plus the continuous
// approximation for the tail — used by calibration code to size fault
// populations.
func (p *PowerLaw) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range p.cdf {
		m += float64(p.xmin+i) * (c - prev)
		prev = c
	}
	if p.headMax < p.xmax {
		// E[X · 1(tail)] ≈ ∫ x·x^-alpha dx over the tail, normalized.
		a1 := p.alpha - 1
		lo, hi := float64(p.headMax)+0.5, float64(p.xmax)+0.5
		zTail := (math.Pow(lo, -a1) - math.Pow(hi, -a1)) / a1
		var num float64
		if p.alpha == 2 {
			num = math.Log(hi / lo)
		} else {
			a2 := p.alpha - 2
			num = (math.Pow(lo, -a2) - math.Pow(hi, -a2)) / a2
		}
		m += (1 - p.headMass) * num / zTail
	}
	return m
}
