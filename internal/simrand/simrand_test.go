package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(3, 2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
	if Hash64(0) == Hash64(1) {
		t.Fatal("Hash64 collision on trivial inputs")
	}
}

func TestHashStringDistinct(t *testing.T) {
	seen := map[uint64]string{}
	labels := []string{"", "a", "b", "ab", "ba", "faults", "telemetry", "inventory", "node-0", "node-1"}
	for _, l := range labels {
		h := HashString(l)
		if prev, ok := seen[h]; ok {
			t.Fatalf("HashString collision: %q and %q", prev, l)
		}
		seen[h] = l
	}
}

func TestHashUnitRange(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		u := HashUnit(a, b)
		return u >= 0 && u < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashNormMoments(t *testing.T) {
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := uint64(0); i < n; i++ {
		v := HashNorm(i, 42)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("HashNorm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("HashNorm variance = %v, want ~1", variance)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(7)
	b := NewStream(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestDeriveIndependentOfOrder(t *testing.T) {
	p1 := NewStream(1)
	p2 := NewStream(1)
	// Deriving in different orders must give identical child streams.
	a1 := p1.Derive("a")
	b1 := p1.Derive("b")
	b2 := p2.Derive("b")
	a2 := p2.Derive("a")
	if a1.Uint64() != a2.Uint64() || b1.Uint64() != b2.Uint64() {
		t.Fatal("Derive depends on call order")
	}
}

func TestDeriveNDistinct(t *testing.T) {
	s := NewStream(3)
	a := s.DeriveN("node", 0)
	b := s.DeriveN("node", 1)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("DeriveN streams look identical")
	}
}

func TestTruncNormBounds(t *testing.T) {
	s := NewStream(11)
	for i := 0; i < 10000; i++ {
		v := s.TruncNorm(50, 10, 40, 60)
		if v < 40 || v > 60 {
			t.Fatalf("TruncNorm out of bounds: %v", v)
		}
	}
}

func TestTruncNormPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStream(1).TruncNorm(0, 1, 5, 4)
}

func TestPoissonMean(t *testing.T) {
	s := NewStream(5)
	for _, mean := range []float64{0.5, 3, 25, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := NewStream(5)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestParetoBounds(t *testing.T) {
	s := NewStream(9)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(1.2, 1, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestPowerLawIntBoundsAndShape(t *testing.T) {
	s := NewStream(13)
	const n = 200000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		k := s.PowerLawInt(2.5, 1, 1000)
		if k < 1 || k > 1000 {
			t.Fatalf("PowerLawInt out of bounds: %d", k)
		}
		counts[k]++
	}
	// For alpha = 2.5 the ratio P(1)/P(2) should be about 2^2.5 ~= 5.66.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 4 || ratio > 8 {
		t.Errorf("P(1)/P(2) = %v, want ~5.7", ratio)
	}
	// Most mass at 1.
	if float64(counts[1])/n < 0.5 {
		t.Errorf("P(1) = %v, want > 0.5", float64(counts[1])/n)
	}
}

func TestCategoricalProportions(t *testing.T) {
	s := NewStream(17)
	w := []float64{1, 2, 7}
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) should panic", w)
				}
			}()
			NewStream(1).Categorical(w)
		}()
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	if got := sum / n; math.Abs(got-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want 0.5", got)
	}
}

func TestNormMoments(t *testing.T) {
	s := NewStream(29)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 || math.Abs(sd-3) > 0.05 {
		t.Errorf("Norm(10,3): mean=%v sd=%v", mean, sd)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewStream(31)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(37)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
