package core

import (
	"repro/internal/mce"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Positional aggregates the rack-level analyses of §3.4 (Figs 10-12).
type Positional struct {
	// RegionErrors and RegionFaults are indexed by topology.Region
	// (Fig 10).
	RegionErrors [topology.NumRegions]int
	RegionFaults [topology.NumRegions]int
	// RegionFaultChi2 tests uniformity of raw fault counts across
	// regions. Because faults cluster on nodes (a pathological node
	// carries many), this statistic over-rejects; RegionNodeChi2 is the
	// honest significance test.
	RegionFaultChi2 stats.ChiSquare
	// RegionFaultyNodes counts the nodes with >= 1 fault in each region;
	// RegionNodeChi2 tests its uniformity (one trial per node, so the
	// χ² independence assumption actually holds).
	RegionFaultyNodes [topology.NumRegions]int
	RegionNodeChi2    stats.ChiSquare
	// RackErrors and RackFaults are indexed by rack number (Fig 12).
	RackErrors []int
	RackFaults []int
	// RackFaultChi2 tests uniformity of faults across racks.
	RackFaultChi2 stats.ChiSquare
	// RegionShareByRack[rack][region] is the fraction of the rack's
	// faults in each region (Fig 11); racks with no faults have all
	// zeros.
	RegionShareByRack [][topology.NumRegions]float64
	// MaxRackErrorRatio is the largest rack error count divided by the
	// second largest — the "Rack 31 experienced more than twice as many
	// errors as any other rack" statistic.
	MaxRackErrorRatio float64
	// MaxErrorRack is the rack with the most errors.
	MaxErrorRack int
}

// AnalyzePositional computes the §3.4 analyses.
func AnalyzePositional(records []mce.CERecord, faults []Fault) Positional {
	p := Positional{
		RackErrors:        make([]int, topology.Racks),
		RackFaults:        make([]int, topology.Racks),
		RegionShareByRack: make([][topology.NumRegions]float64, topology.Racks),
	}
	for _, r := range records {
		p.RegionErrors[r.Node.Region()]++
		p.RackErrors[r.Node.Rack()]++
	}
	rackRegionFaults := make([][topology.NumRegions]int, topology.Racks)
	faultyNodes := map[topology.NodeID]bool{}
	for _, f := range faults {
		reg := f.Region()
		rack := f.Node.Rack()
		p.RegionFaults[reg]++
		p.RackFaults[rack]++
		rackRegionFaults[rack][reg]++
		if !faultyNodes[f.Node] {
			faultyNodes[f.Node] = true
			p.RegionFaultyNodes[reg]++
		}
	}
	for rack, counts := range rackRegionFaults {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		for reg, c := range counts {
			p.RegionShareByRack[rack][reg] = float64(c) / float64(total)
		}
	}
	if cs, err := stats.ChiSquareUniform(p.RegionFaults[:]); err == nil {
		p.RegionFaultChi2 = cs
	}
	if cs, err := stats.ChiSquareUniform(p.RegionFaultyNodes[:]); err == nil {
		p.RegionNodeChi2 = cs
	}
	if cs, err := stats.ChiSquareUniform(p.RackFaults); err == nil {
		p.RackFaultChi2 = cs
	}
	// Largest vs second-largest rack error count.
	best, second := -1, -1
	for rack, c := range p.RackErrors {
		if best < 0 || c > p.RackErrors[best] {
			second = best
			best = rack
		} else if second < 0 || c > p.RackErrors[second] {
			second = rack
		}
	}
	p.MaxErrorRack = best
	if best >= 0 && second >= 0 && p.RackErrors[second] > 0 {
		p.MaxRackErrorRatio = float64(p.RackErrors[best]) / float64(p.RackErrors[second])
	}
	return p
}
