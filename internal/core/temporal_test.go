package core

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestAnalyzeModeStabilityHandBuilt(t *testing.T) {
	mk := func(month time.Month, mode FaultMode) Fault {
		return Fault{Mode: mode, First: time.Date(2019, month, 10, 0, 0, 0, 0, time.UTC)}
	}
	faults := []Fault{
		mk(time.February, ModeSingleBit), mk(time.February, ModeSingleBit),
		mk(time.March, ModeSingleBit), mk(time.March, ModeSingleBank),
	}
	ms := AnalyzeModeStability(faults)
	if len(ms.Months) != 2 {
		t.Fatalf("months = %v", ms.Months)
	}
	if ms.NewFaults[0][ModeSingleBit] != 2 || ms.NewFaults[1][ModeSingleBank] != 1 {
		t.Errorf("new faults = %+v", ms.NewFaults)
	}
	// Feb: 100% bit. Mar: 50% bit, 50% bank. Max drift = 0.5.
	if ms.MaxShareDrift < 0.49 || ms.MaxShareDrift > 0.51 {
		t.Errorf("drift = %v, want 0.5", ms.MaxShareDrift)
	}
}

func TestAnalyzeModeStabilityOnGeneratedData(t *testing.T) {
	_, records := generateSmall(t, 73, 500)
	faults := mustCluster(records, DefaultClusterConfig())
	ms := AnalyzeModeStability(faults)
	if len(ms.Months) < 5 {
		t.Fatalf("only %d months with new faults", len(ms.Months))
	}
	// Mode weights are time-invariant in the model, so the mix should be
	// reasonably stable (single-bit dominates everywhere).
	for i, row := range ms.NewFaults {
		total := 0
		for _, c := range row {
			total += c
		}
		if total < 10 {
			continue // noisy boundary months
		}
		if float64(row[ModeSingleBit])/float64(total) < 0.5 {
			t.Errorf("month %s: single-bit share below half: %+v",
				simtime.MonthLabel(ms.Months[i]), row)
		}
	}
	if ms.MaxShareDrift > 0.6 {
		t.Errorf("mode mix drift = %v, implausibly unstable", ms.MaxShareDrift)
	}
}

func TestAnalyzeInterarrivals(t *testing.T) {
	_, records := generateSmall(t, 74, 400)
	faults := mustCluster(records, DefaultClusterConfig())
	ia := AnalyzeInterarrivals(records, faults, 200)
	if ia.FaultsMeasured == 0 || len(ia.Gaps) == 0 {
		t.Fatal("no gaps measured")
	}
	// Gaps are sorted and non-negative.
	for i, g := range ia.Gaps {
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		if i > 0 && g < ia.Gaps[i-1] {
			t.Fatal("gaps not sorted")
		}
	}
	// Bursty faults produce meaningful sub-minute mass.
	if ia.SubMinuteFrac <= 0 {
		t.Error("no sub-minute gaps despite bursts")
	}
	if ia.SubMinuteFrac >= 1 {
		t.Error("all gaps sub-minute; spread faults missing")
	}
}

func TestAnalyzeInterarrivalsSampling(t *testing.T) {
	_, records := generateSmall(t, 75, 300)
	faults := mustCluster(records, DefaultClusterConfig())
	full := AnalyzeInterarrivals(records, faults, 0)
	sampled := AnalyzeInterarrivals(records, faults, 50)
	if len(sampled.Gaps) > len(full.Gaps) {
		t.Error("sampling produced more gaps than full scan")
	}
	if sampled.FaultsMeasured != full.FaultsMeasured {
		t.Error("sampling changed the fault count")
	}
}
