package core

import (
	"strconv"
	"time"

	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RecordIndex precomputes, in one sharded pass, everything the per-record
// analyses used to recompute by scanning all records each: per-record month
// keys and env-window membership, per-node/structure/region/rack error
// tallies, the month totals, and the per-sensor (node, month) domain
// counts the environmental analyses share. Study.Analyze builds one index
// and hands it to the indexed analysis variants below; the free-function
// analyses are kept for direct use (and as the benchmark baseline).
//
// All aggregates are integer counts merged in shard order, so the index —
// and every analysis derived from it — is identical at any parallelism.
// The indexed variants additionally iterate nodes in ascending order where
// the free functions ranged over Go maps, making float accumulations
// (notably stats.FitPowerLaw over per-node fault counts) bit-deterministic
// run to run.
type RecordIndex struct {
	records []mce.CERecord
	nodes   int
	par     int

	// Per-record precomputation (indexed by record position).
	monthOf []int32
	inEnv   []bool

	// Aggregates over all records.
	minTime, maxTime time.Time
	monthCounts      map[int]int
	perNodeErrors    []int
	socketErrors     [2]int
	bankErrors       [topology.BanksPerRank]int
	columnErrors     [ColumnBins]int
	rankErrors       [2]int
	slotErrors       [topology.SlotsPerNode]int
	regionErrors     [topology.NumRegions]int
	rackErrors       []int

	// Environmental-window precomputation.
	envMonths []int
	// domain[sensor] counts the in-window CEs per (node, month) inside the
	// sensor's domain (the covered slots for DIMM sensors, the socket's
	// DIMMs for CPU sensors) — what sensorDomainErrors computed per call.
	domain map[topology.Sensor]map[[2]int]int
}

// indexShard accumulates one contiguous record range's tallies; shards are
// merged in shard order.
type indexShard struct {
	minTime, maxTime time.Time
	monthCounts      map[int]int
	perNodeErrors    []int
	socketErrors     [2]int
	bankErrors       [topology.BanksPerRank]int
	columnErrors     [ColumnBins]int
	rankErrors       [2]int
	slotErrors       [topology.SlotsPerNode]int
	regionErrors     [topology.NumRegions]int
	rackErrors       []int
	domain           map[topology.Sensor]map[[2]int]int
}

// NewRecordIndex scans records once (sharded across parallelism workers;
// <= 1 scans inline) and returns the shared index. totalNodes bounds the
// node range, as in AnalyzePerNode.
func NewRecordIndex(records []mce.CERecord, totalNodes, parallelism int) *RecordIndex {
	ix := &RecordIndex{
		records:       records,
		nodes:         totalNodes,
		par:           parallelism,
		monthOf:       make([]int32, len(records)),
		inEnv:         make([]bool, len(records)),
		monthCounts:   map[int]int{},
		perNodeErrors: make([]int, totalNodes),
		rackErrors:    make([]int, topology.Racks),
		envMonths:     monthKeys(),
		domain:        map[topology.Sensor]map[[2]int]int{},
	}
	for _, s := range topology.TemperatureSensors() {
		ix.domain[s] = map[[2]int]int{}
	}
	if len(records) == 0 {
		return ix
	}

	// CPU sensor per socket (the non-DIMM temperature sensors).
	var cpuSensor [2]topology.Sensor
	for _, s := range topology.TemperatureSensors() {
		if !s.IsDIMM() {
			cpuSensor[s.Socket()] = s
		}
	}

	shards := parallel.NumChunks(parallelism, len(records))
	accs := make([]indexShard, shards)
	parallel.ForEachChunk(parallelism, len(records), func(shard, lo, hi int) {
		a := &accs[shard]
		a.minTime, a.maxTime = records[lo].Time, records[lo].Time
		a.monthCounts = map[int]int{}
		a.perNodeErrors = make([]int, totalNodes)
		a.rackErrors = make([]int, topology.Racks)
		a.domain = map[topology.Sensor]map[[2]int]int{}
		for _, s := range topology.TemperatureSensors() {
			a.domain[s] = map[[2]int]int{}
		}
		colBin := func(col int) int { return col * ColumnBins / topology.ColsPerRow }
		for i := lo; i < hi; i++ {
			r := &records[i]
			if r.Time.Before(a.minTime) {
				a.minTime = r.Time
			}
			if r.Time.After(a.maxTime) {
				a.maxTime = r.Time
			}
			mk := simtime.MonthKey(r.Time)
			ix.monthOf[i] = int32(mk)
			a.monthCounts[mk]++
			if int(r.Node) < totalNodes {
				a.perNodeErrors[r.Node]++
			}
			a.socketErrors[r.Socket]++
			a.bankErrors[r.Bank]++
			a.columnErrors[colBin(r.Col)]++
			a.rankErrors[r.Rank]++
			a.slotErrors[r.Slot]++
			a.regionErrors[r.Node.Region()]++
			a.rackErrors[r.Node.Rack()]++
			if inEnvWindow(*r) {
				ix.inEnv[i] = true
				key := [2]int{int(r.Node), mk}
				a.domain[topology.SensorForSlot(r.Slot)][key]++
				a.domain[cpuSensor[r.Socket]][key]++
			}
		}
	})

	ix.minTime, ix.maxTime = accs[0].minTime, accs[0].maxTime
	for s := range accs {
		a := &accs[s]
		if a.minTime.Before(ix.minTime) {
			ix.minTime = a.minTime
		}
		if a.maxTime.After(ix.maxTime) {
			ix.maxTime = a.maxTime
		}
		for mk, c := range a.monthCounts {
			ix.monthCounts[mk] += c
		}
		for n, c := range a.perNodeErrors {
			ix.perNodeErrors[n] += c
		}
		for i, c := range a.socketErrors {
			ix.socketErrors[i] += c
		}
		for i, c := range a.bankErrors {
			ix.bankErrors[i] += c
		}
		for i, c := range a.columnErrors {
			ix.columnErrors[i] += c
		}
		for i, c := range a.rankErrors {
			ix.rankErrors[i] += c
		}
		for i, c := range a.slotErrors {
			ix.slotErrors[i] += c
		}
		for i, c := range a.regionErrors {
			ix.regionErrors[i] += c
		}
		for i, c := range a.rackErrors {
			ix.rackErrors[i] += c
		}
		for sensor, dom := range a.domain {
			dst := ix.domain[sensor]
			for k, c := range dom {
				dst[k] += c
			}
		}
	}
	return ix
}

// EnvMonths returns the calendar months inside the environmental window
// (hoisted monthKeys computation).
func (ix *RecordIndex) EnvMonths() []int { return ix.envMonths }

// BreakdownByMode is the indexed BreakdownByMode: month totals come from
// the index, and the per-fault attribution loop shards across faults with
// per-shard series merged by integer sums.
func (ix *RecordIndex) BreakdownByMode(faults []Fault) ModeBreakdown {
	var b ModeBreakdown
	if len(ix.records) == 0 {
		b.Degraded = true
		return b
	}
	startKey := simtime.MonthKey(ix.minTime)
	endKey := simtime.MonthKey(ix.maxTime)
	n := endKey - startKey + 1
	b.Months = make([]int, n)
	for i := range b.Months {
		b.Months[i] = startKey + i
	}
	b.AllErrors = make([]int, n)
	for mk, c := range ix.monthCounts {
		b.AllErrors[mk-startKey] += c
	}
	b.Total = len(ix.records)
	for m := range b.ByMode {
		b.ByMode[m] = make([]int, n)
	}

	shards := parallel.NumChunks(ix.par, len(faults))
	type acc struct {
		faultsByMode [NumFaultModes]int
		errorsByMode [NumFaultModes]int
		byMode       [NumFaultModes][]int
	}
	accs := make([]acc, shards)
	parallel.ForEachChunk(ix.par, len(faults), func(shard, lo, hi int) {
		a := &accs[shard]
		for m := range a.byMode {
			a.byMode[m] = make([]int, n)
		}
		for i := lo; i < hi; i++ {
			f := &faults[i]
			a.faultsByMode[f.Mode]++
			a.errorsByMode[f.Mode] += f.NErrors
			series := a.byMode[f.Mode]
			for _, idx := range f.Errors {
				series[int(ix.monthOf[idx])-startKey]++
			}
		}
	})
	for s := range accs {
		a := &accs[s]
		for m := FaultMode(0); m < NumFaultModes; m++ {
			b.FaultsByMode[m] += a.faultsByMode[m]
			b.ErrorsByMode[m] += a.errorsByMode[m]
			if a.byMode[m] != nil {
				for i, c := range a.byMode[m] {
					b.ByMode[m][i] += c
				}
			}
		}
	}
	return b
}

// AnalyzePerNode is the indexed AnalyzePerNode. Per-node error counts come
// from the index, and both count vectors are assembled in ascending node
// order, so the power-law fit no longer depends on map iteration order.
func (ix *RecordIndex) AnalyzePerNode(faults []Fault) PerNode {
	out := PerNode{
		Errors:   map[topology.NodeID]int{},
		Faults:   map[topology.NodeID]int{},
		Degraded: len(ix.records) == 0 || ix.nodes <= 0,
	}
	perNode := make([]float64, 0, len(ix.records)/64+8)
	for n, c := range ix.perNodeErrors {
		if c > 0 {
			out.Errors[topology.NodeID(n)] = c
			perNode = append(perNode, float64(c))
		}
	}
	perNodeFaults := make([]int, ix.nodes)
	for i := range faults {
		f := &faults[i]
		out.Faults[f.Node]++
		if int(f.Node) < ix.nodes {
			perNodeFaults[f.Node]++
		}
	}
	out.NodesWithErrors = len(out.Errors)
	out.TopShare8 = stats.TopShare(perNode, 8)
	out.TopShare2Pct = stats.TopShare(perNode, ix.nodes*2/100)
	out.Lorenz = stats.LorenzCurve(perNode)
	var faultCounts []int
	for _, c := range perNodeFaults {
		if c > 0 {
			faultCounts = append(faultCounts, c)
		}
	}
	out.FaultHistogram = stats.NewCountHistogram(faultCounts)
	out.PowerLaw, out.PowerLawErr = stats.FitPowerLaw(faultCounts, 1)
	return out
}

// AnalyzeStructures is the indexed AnalyzeStructures: the error tallies
// come from the index, the (cheap) fault loop is unchanged.
func (ix *RecordIndex) AnalyzeStructures(faults []Fault) Structures {
	var s Structures
	s.Socket = newStructure([]string{"0", "1"})
	bankLabels := make([]string, topology.BanksPerRank)
	for i := range bankLabels {
		bankLabels[i] = strconv.Itoa(i)
	}
	s.Bank = newStructure(bankLabels)
	colLabels := make([]string, ColumnBins)
	for i := range colLabels {
		colLabels[i] = strconv.Itoa(i)
	}
	s.Column = newStructure(colLabels)
	s.Rank = newStructure([]string{"0", "1"})
	slotLabels := make([]string, topology.SlotsPerNode)
	for i, sl := range topology.AllSlots() {
		slotLabels[i] = sl.Name()
	}
	s.Slot = newStructure(slotLabels)

	copy(s.Socket.Errors, ix.socketErrors[:])
	copy(s.Bank.Errors, ix.bankErrors[:])
	copy(s.Column.Errors, ix.columnErrors[:])
	copy(s.Rank.Errors, ix.rankErrors[:])
	copy(s.Slot.Errors, ix.slotErrors[:])

	colBin := func(col int) int { return col * ColumnBins / topology.ColsPerRow }
	for _, f := range faults {
		s.Socket.Faults[f.Slot.Socket()]++
		s.Bank.Faults[f.Bank]++
		s.Rank.Faults[f.Rank]++
		s.Slot.Faults[f.Slot]++
		col := f.Col
		if col < 0 {
			if cell, _, err := topology.DecodePhysAddr(f.Node, f.Addr); err == nil && f.Addr != 0 {
				col = cell.Col
			} else if len(f.Errors) > 0 {
				col = ix.records[f.Errors[0]].Col
			} else {
				continue
			}
		}
		s.Column.Faults[colBin(col)]++
	}
	s.Socket.finish()
	s.Bank.finish()
	s.Column.finish()
	s.Rank.finish()
	s.Slot.finish()
	return s
}

// AnalyzePositional is the indexed AnalyzePositional: region and rack
// error tallies come from the index, the fault loop is unchanged.
func (ix *RecordIndex) AnalyzePositional(faults []Fault) Positional {
	p := Positional{
		RackErrors:        make([]int, topology.Racks),
		RackFaults:        make([]int, topology.Racks),
		RegionShareByRack: make([][topology.NumRegions]float64, topology.Racks),
	}
	copy(p.RegionErrors[:], ix.regionErrors[:])
	copy(p.RackErrors, ix.rackErrors)
	rackRegionFaults := make([][topology.NumRegions]int, topology.Racks)
	faultyNodes := map[topology.NodeID]bool{}
	for _, f := range faults {
		reg := f.Region()
		rack := f.Node.Rack()
		p.RegionFaults[reg]++
		p.RackFaults[rack]++
		rackRegionFaults[rack][reg]++
		if !faultyNodes[f.Node] {
			faultyNodes[f.Node] = true
			p.RegionFaultyNodes[reg]++
		}
	}
	for rack, counts := range rackRegionFaults {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		for reg, c := range counts {
			p.RegionShareByRack[rack][reg] = float64(c) / float64(total)
		}
	}
	if cs, err := stats.ChiSquareUniform(p.RegionFaults[:]); err == nil {
		p.RegionFaultChi2 = cs
	}
	if cs, err := stats.ChiSquareUniform(p.RegionFaultyNodes[:]); err == nil {
		p.RegionNodeChi2 = cs
	}
	if cs, err := stats.ChiSquareUniform(p.RackFaults); err == nil {
		p.RackFaultChi2 = cs
	}
	best, second := -1, -1
	for rack, c := range p.RackErrors {
		if best < 0 || c > p.RackErrors[best] {
			second = best
			best = rack
		} else if second < 0 || c > p.RackErrors[second] {
			second = rack
		}
	}
	p.MaxErrorRack = best
	if best >= 0 && second >= 0 && p.RackErrors[second] > 0 {
		p.MaxRackErrorRatio = float64(p.RackErrors[best]) / float64(p.RackErrors[second])
	}
	return p
}

// AnalyzeTempWindows is the indexed AnalyzeTempWindows: env-window
// membership comes from the index, and each window's record scan (the
// expensive MeanBefore lookups) shards across workers with per-shard bin
// counts merged by integer sums.
func (ix *RecordIndex) AnalyzeTempWindows(src SensorSource, windows []int64) []TempWindow {
	const binLo, binHi = 20.0, 70.0
	nBins := int(binHi - binLo)
	out := make([]TempWindow, 0, len(windows))
	for _, w := range windows {
		tw := TempWindow{WindowMinutes: w, BinLo: binLo, Counts: make([]int, nBins)}
		shards := parallel.NumChunks(ix.par, len(ix.records))
		counts := make([][]int, shards)
		parallel.ForEachChunk(ix.par, len(ix.records), func(shard, lo, hi int) {
			c := make([]int, nBins)
			for i := lo; i < hi; i++ {
				if !ix.inEnv[i] {
					continue
				}
				r := &ix.records[i]
				sensor := topology.SensorForSlot(r.Slot)
				mean := src.MeanBefore(r.Node, sensor, simtime.MinuteOf(r.Time), w)
				bin := int(mean - binLo)
				if bin < 0 || bin >= nBins {
					continue
				}
				c[bin]++
			}
			counts[shard] = c
		})
		for _, c := range counts {
			for i, v := range c {
				tw.Counts[i] += v
			}
		}
		var xs, ys []float64
		for i, c := range tw.Counts {
			if c == 0 {
				continue
			}
			xs = append(xs, binLo+float64(i)+0.5)
			ys = append(ys, float64(c))
		}
		tw.Fit, tw.FitErr = stats.FitLinear(xs, ys)
		out = append(out, tw)
	}
	return out
}

// AnalyzeTempDeciles is the indexed AnalyzeTempDeciles: domain counts and
// months come from the index, and the six sensors run concurrently, each
// sharding its (node, month) MonthlyMean grid across workers.
func (ix *RecordIndex) AnalyzeTempDeciles(src SensorSource) []DecilePanel {
	months := ix.envMonths
	sensors := topology.TemperatureSensors()
	out := make([]DecilePanel, len(sensors))
	tasks := make([]func(), len(sensors))
	for si, sensor := range sensors {
		si, sensor := si, sensor
		tasks[si] = func() {
			domain := ix.domain[sensor]
			keys := make([]float64, ix.nodes*len(months))
			vals := make([]float64, ix.nodes*len(months))
			parallel.ForEachChunk(ix.par, ix.nodes, func(_, lo, hi int) {
				for n := lo; n < hi; n++ {
					for j, mk := range months {
						keys[n*len(months)+j] = src.MonthlyMean(topology.NodeID(n), sensor, mk)
						vals[n*len(months)+j] = float64(domain[[2]int{n, mk}])
					}
				}
			})
			panel := DecilePanel{Sensor: sensor}
			bins, err := stats.Deciles(keys, vals)
			if err != nil {
				out[si] = panel
				return
			}
			panel.Bins = bins
			panel.Spread = stats.DecileSpread(bins)
			panel.Trend, panel.TrendErr = stats.TrendVerdict(bins)
			out[si] = panel
		}
	}
	parallel.Run(ix.par, tasks...)
	return out
}

// AnalyzeUtilization is the indexed AnalyzeUtilization, parallel across
// the six sensors with the (node, month) grid sharded as in
// AnalyzeTempDeciles.
func (ix *RecordIndex) AnalyzeUtilization(src SensorSource) []UtilizationPanel {
	months := ix.envMonths
	sensors := topology.TemperatureSensors()
	out := make([]UtilizationPanel, len(sensors))
	tasks := make([]func(), len(sensors))
	for si, sensor := range sensors {
		si, sensor := si, sensor
		tasks[si] = func() {
			domain := ix.domain[sensor]
			grid := ix.nodes * len(months)
			temps := make([]float64, grid)
			powers := make([]float64, grid)
			errsCounts := make([]float64, grid)
			parallel.ForEachChunk(ix.par, ix.nodes, func(_, lo, hi int) {
				for n := lo; n < hi; n++ {
					for j, mk := range months {
						i := n*len(months) + j
						temps[i] = src.MonthlyMean(topology.NodeID(n), sensor, mk)
						powers[i] = src.MonthlyMean(topology.NodeID(n), topology.SensorDCPower, mk)
						errsCounts[i] = float64(domain[[2]int{n, mk}])
					}
				}
			})
			med := stats.Median(temps)
			var hotP, hotE, coldP, coldE []float64
			for i, tv := range temps {
				if tv > med {
					hotP = append(hotP, powers[i])
					hotE = append(hotE, errsCounts[i])
				} else {
					coldP = append(coldP, powers[i])
					coldE = append(coldE, errsCounts[i])
				}
			}
			panel := UtilizationPanel{
				Sensor:        sensor,
				HotPowerMean:  stats.Mean(hotP),
				ColdPowerMean: stats.Mean(coldP),
			}
			if bins, err := stats.Deciles(hotP, hotE); err == nil {
				panel.Hot = bins
				panel.HotTrend, panel.HotTrendErr = stats.TrendVerdict(bins)
			}
			if bins, err := stats.Deciles(coldP, coldE); err == nil {
				panel.Cold = bins
				panel.ColdTrend, panel.ColdTrendErr = stats.TrendVerdict(bins)
			}
			out[si] = panel
		}
	}
	parallel.Run(ix.par, tasks...)
	return out
}
