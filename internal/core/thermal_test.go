package core

import (
	"testing"

	"repro/internal/envmodel"
	"repro/internal/topology"
)

func TestRegionTempsUniformOnAstra(t *testing.T) {
	env := envmodel.New(51, envmodel.DefaultParams())
	rt := AnalyzeRegionTemps(env, topology.Nodes, 4)
	if len(rt.Mean) != 6 {
		t.Fatalf("sensors covered = %d", len(rt.Mean))
	}
	// §3.4: region means agree to well under 1 °C on Astra.
	if rt.MaxSpread >= 1 {
		t.Errorf("region spread = %v °C, want < 1", rt.MaxSpread)
	}
	// Absolute levels plausible: CPU1 above CPU2, DIMMs cooler than CPUs.
	cpu1 := rt.Mean[topology.SensorCPU1]
	cpu2 := rt.Mean[topology.SensorCPU2]
	dimm := rt.Mean[topology.SensorDIMMACEG]
	if cpu1[0] <= cpu2[0] || dimm[0] >= cpu2[0] {
		t.Errorf("thermal ordering wrong: cpu1=%v cpu2=%v dimm=%v", cpu1[0], cpu2[0], dimm[0])
	}
}

func TestRegionTempsDetectVerticalGradient(t *testing.T) {
	params := envmodel.DefaultParams()
	params.RegionGradientC = 4 // Cielo-style bottom-to-top airflow
	env := envmodel.New(52, params)
	rt := AnalyzeRegionTemps(env, topology.Nodes, 8)
	if rt.MaxSpread < 6 {
		t.Errorf("gradient world spread = %v °C, want ~8", rt.MaxSpread)
	}
	m := rt.Mean[topology.SensorCPU1]
	if !(m[topology.RegionBottom] < m[topology.RegionMiddle] && m[topology.RegionMiddle] < m[topology.RegionTop]) {
		t.Errorf("region means not increasing bottom-to-top: %v", m)
	}
}

func TestRackTempsSpread(t *testing.T) {
	// Full node coverage: subsampling would inflate the spread with
	// per-node sampling noise.
	env := envmodel.New(53, envmodel.DefaultParams())
	rt := AnalyzeRackTemps(env, topology.Nodes, 1)
	// §3.4: rack-to-rack spread under ~4.2 °C but nonzero.
	if rt.MaxSpread >= 4.2 || rt.MaxSpread < 0.3 {
		t.Errorf("rack spread = %v °C, want in [0.3, 4.2)", rt.MaxSpread)
	}
	for _, sensor := range topology.TemperatureSensors() {
		if len(rt.Mean[sensor]) != topology.Racks {
			t.Fatalf("sensor %v covers %d racks", sensor, len(rt.Mean[sensor]))
		}
	}
}

func TestRackTempsPartialCoverage(t *testing.T) {
	env := envmodel.New(54, envmodel.DefaultParams())
	// Only the first rack's nodes: other racks must not poison the spread.
	rt := AnalyzeRackTemps(env, topology.NodesPerRack, 1)
	if rt.MaxSpread != 0 {
		t.Errorf("single-rack spread = %v, want 0", rt.MaxSpread)
	}
}

func TestEnvWindowMonths(t *testing.T) {
	months := EnvWindowMonths()
	if len(months) != 5 { // May..September 2019
		t.Errorf("env window months = %d, want 5", len(months))
	}
}
