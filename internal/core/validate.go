package core

import (
	"fmt"

	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/topology"
)

// ValidationMetrics quantifies how faithfully the clusterer recovered the
// generated ground truth — the self-check that a synthetic-data
// reproduction owes its users. The real study had no ground truth; this
// harness does, so it reports it.
type ValidationMetrics struct {
	// ErrorsAttributed is the number of input records assigned to some
	// fault; it must equal the record count (every error explained once).
	ErrorsAttributed int
	// DoubleAttributed counts records assigned to more than one fault
	// (must be 0).
	DoubleAttributed int
	// BanksChecked is the number of unambiguous banks compared (exactly
	// one ground-truth fault and a classifiable footprint).
	BanksChecked int
	// ModeAgreement is the fraction of checked banks where the clusterer
	// recovered both the fault count (one) and the expected observable
	// mode.
	ModeAgreement float64
	// FaultCountRatio is recovered/expected fault counts over all banks;
	// splitting and merging pull it off 1.
	FaultCountRatio float64
}

// ValidateClustering compares clustered faults against the ground-truth
// population that produced the records. Records must be the encoded form
// of pop.CEs in the same order (ground truth joins on index).
func ValidateClustering(pop *faultmodel.Population, records []mce.CERecord, faults []Fault, cfg ClusterConfig) (ValidationMetrics, error) {
	if len(records) != len(pop.CEs) {
		return ValidationMetrics{}, fmt.Errorf("core: %d records for %d ground-truth events (streams must align)", len(records), len(pop.CEs))
	}
	var m ValidationMetrics

	seen := make(map[int]bool, len(records))
	for _, f := range faults {
		for _, idx := range f.Errors {
			if seen[idx] {
				m.DoubleAttributed++
				continue
			}
			seen[idx] = true
			m.ErrorsAttributed++
		}
	}

	type bankID struct {
		node topology.NodeID
		slot topology.Slot
		rank int
		bank int
	}
	gt := map[bankID][]int{}
	for _, f := range pop.Faults {
		k := bankID{f.Anchor.Node, f.Anchor.Slot, f.Anchor.Rank, f.Anchor.Bank}
		gt[k] = append(gt[k], f.ID)
	}
	words := map[int]map[topology.PhysAddr]bool{}
	bits := map[int]map[int]bool{}
	cols := map[int]map[int]bool{}
	for i, ev := range pop.CEs {
		id := int(ev.FaultID)
		if words[id] == nil {
			words[id] = map[topology.PhysAddr]bool{}
			bits[id] = map[int]bool{}
			cols[id] = map[int]bool{}
		}
		words[id][records[i].Addr] = true
		bits[id][records[i].LineBit()] = true
		cols[id][records[i].Col] = true
	}
	recovered := map[bankID][]FaultMode{}
	for _, f := range faults {
		k := bankID{f.Node, f.Slot, f.Rank, f.Bank}
		recovered[k] = append(recovered[k], f.Mode)
	}

	agree := 0
	for k, ids := range gt {
		if len(ids) != 1 {
			continue
		}
		id := ids[0]
		var want FaultMode
		switch {
		case len(words[id]) == 1 && len(bits[id]) == 1:
			want = ModeSingleBit
		case len(words[id]) == 1:
			want = ModeSingleWord
		case len(cols[id]) == 1 && len(words[id]) >= cfg.ColMinWords:
			want = ModeSingleColumn
		case len(words[id]) >= cfg.BankMinWords:
			want = ModeSingleBank
		default:
			continue // two scattered words: legitimately split
		}
		m.BanksChecked++
		got := recovered[k]
		if len(got) == 1 && got[0] == want {
			agree++
		}
	}
	if m.BanksChecked > 0 {
		m.ModeAgreement = float64(agree) / float64(m.BanksChecked)
	}
	if len(pop.Faults) > 0 {
		m.FaultCountRatio = float64(len(faults)) / float64(len(pop.Faults))
	}
	return m, nil
}

// Ok reports whether the metrics meet the reproduction bar: every error
// attributed exactly once and ≥90% mode agreement on unambiguous banks.
func (m ValidationMetrics) Ok(totalRecords int) error {
	switch {
	case m.DoubleAttributed > 0:
		return fmt.Errorf("core: %d records attributed twice", m.DoubleAttributed)
	case m.ErrorsAttributed != totalRecords:
		return fmt.Errorf("core: %d of %d records attributed", m.ErrorsAttributed, totalRecords)
	case m.BanksChecked >= 50 && m.ModeAgreement < 0.9:
		return fmt.Errorf("core: mode agreement %.3f below 0.9", m.ModeAgreement)
	}
	return nil
}
