package core

import "testing"

func TestValidateClusteringOnGeneratedPopulation(t *testing.T) {
	pop, records := generateSmall(t, 61, 500)
	cfg := DefaultClusterConfig()
	faults := mustCluster(records, cfg)
	m, err := ValidateClustering(pop, records, faults, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Ok(len(records)); err != nil {
		t.Fatalf("validation failed: %v (metrics %+v)", err, m)
	}
	if m.BanksChecked < 100 {
		t.Errorf("only %d banks checked", m.BanksChecked)
	}
	if m.FaultCountRatio < 0.7 || m.FaultCountRatio > 1.3 {
		t.Errorf("fault count ratio = %v", m.FaultCountRatio)
	}
}

func TestValidateClusteringRejectsMisalignedStreams(t *testing.T) {
	pop, records := generateSmall(t, 62, 100)
	faults := mustCluster(records, DefaultClusterConfig())
	if _, err := ValidateClustering(pop, records[:len(records)-1], faults, DefaultClusterConfig()); err == nil {
		t.Error("misaligned streams accepted")
	}
}

func TestValidationMetricsOk(t *testing.T) {
	good := ValidationMetrics{ErrorsAttributed: 100, BanksChecked: 60, ModeAgreement: 0.95}
	if err := good.Ok(100); err != nil {
		t.Errorf("good metrics rejected: %v", err)
	}
	for name, m := range map[string]ValidationMetrics{
		"double-attribution": {ErrorsAttributed: 100, DoubleAttributed: 1},
		"missing-errors":     {ErrorsAttributed: 99},
		"low-agreement":      {ErrorsAttributed: 100, BanksChecked: 60, ModeAgreement: 0.5},
	} {
		if err := m.Ok(100); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Tiny samples skip the agreement bar (too noisy to judge).
	small := ValidationMetrics{ErrorsAttributed: 100, BanksChecked: 10, ModeAgreement: 0.2}
	if err := small.Ok(100); err != nil {
		t.Errorf("small-sample agreement should not gate: %v", err)
	}
}

func TestValidateClusteringDetectsBrokenClusterer(t *testing.T) {
	// A deliberately broken clustering (everything merged into one fault
	// per node) must fail the mode-agreement bar.
	pop, records := generateSmall(t, 63, 400)
	broken := mustCluster(records, ClusterConfig{ColMinWords: 2, BankMinWords: 2, RowMinWords: 2})
	// BankMinWords=2 merges any two scattered words into a phantom bank
	// fault, degrading agreement on two-fault banks... those banks are
	// excluded, so instead corrupt harder: relabel every fault's mode.
	for i := range broken {
		broken[i].Mode = ModeSingleBank
	}
	m, err := ValidateClustering(pop, records, broken, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.BanksChecked > 50 && m.ModeAgreement > 0.5 {
		t.Errorf("broken clusterer scored %v agreement", m.ModeAgreement)
	}
}
