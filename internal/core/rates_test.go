package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/topology"
)

func TestAnalyzeFaultRates(t *testing.T) {
	faults := []Fault{
		{Node: 1, Slot: 0, Mode: ModeSingleBit},
		{Node: 1, Slot: 0, Mode: ModeSingleBit},
		{Node: 2, Slot: 5, Mode: ModeSingleBank},
	}
	window := 1000 * time.Hour
	r := AnalyzeFaultRates(faults, 100, window)
	hours := 100.0 * 1000
	if got, want := r.PerMode[ModeSingleBit], 2/hours*1e9; math.Abs(got-want) > 1e-9 {
		t.Errorf("single-bit FIT = %v, want %v", got, want)
	}
	if got, want := r.Total, 3/hours*1e9; math.Abs(got-want) > 1e-9 {
		t.Errorf("total FIT = %v, want %v", got, want)
	}
	if r.FaultyDIMMs != 2 {
		t.Errorf("FaultyDIMMs = %d, want 2", r.FaultyDIMMs)
	}
	// Degenerate inputs are zero-valued, not a panic.
	if z := AnalyzeFaultRates(faults, 0, window); z.Total != 0 {
		t.Errorf("zero dimms rate = %+v", z)
	}
}

func TestFaultRatesOnGeneratedData(t *testing.T) {
	_, records := generateSmall(t, 72, 500)
	faults := mustCluster(records, DefaultClusterConfig())
	r := AnalyzeFaultRates(faults, 500*topology.SlotsPerNode, StudyWindow())
	if r.Total <= 0 {
		t.Fatal("zero total FIT")
	}
	// Single-bit dominates the per-mode FIT rates.
	if r.PerMode[ModeSingleBit] <= r.PerMode[ModeSingleBank] {
		t.Errorf("mode FIT ordering wrong: %+v", r.PerMode)
	}
	// Order-of-magnitude sanity: Astra's calibration works out to
	// ~4500 faults / 41472 DIMMs / 237 days ≈ 2×10⁴ FIT per DIMM for
	// correctable faults (far above the DUE FIT of ~10³, as expected).
	if r.Total < 2e3 || r.Total > 2e5 {
		t.Errorf("total fault FIT = %v, implausible", r.Total)
	}
	if r.FaultyDIMMs == 0 || r.FaultyDIMMs > len(faults) {
		t.Errorf("FaultyDIMMs = %d", r.FaultyDIMMs)
	}
}

func TestStudyWindow(t *testing.T) {
	if got := StudyWindow().Hours() / 24; got != 237 {
		t.Errorf("StudyWindow = %v days", got)
	}
}
