package core

import (
	"sort"
	"time"

	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// ModeStability is the Siddiqua-et-al.-style check the paper cites from
// related work: is the mix of newly observed fault modes stable over time?
// Each month is the set of faults first observed in it, broken down by
// mode.
type ModeStability struct {
	// Months are the month keys with at least one new fault.
	Months []int
	// NewFaults[i][m] is the number of mode-m faults first seen in
	// Months[i].
	NewFaults [][NumFaultModes]int
	// MaxShareDrift is the largest month-to-month change in any mode's
	// share of new faults (small = stable mix).
	MaxShareDrift float64
}

// AnalyzeModeStability computes the per-month new-fault mode mix.
func AnalyzeModeStability(faults []Fault) ModeStability {
	var out ModeStability
	byMonth := map[int]*[NumFaultModes]int{}
	for _, f := range faults {
		mk := simtime.MonthKey(f.First)
		row, ok := byMonth[mk]
		if !ok {
			row = &[NumFaultModes]int{}
			byMonth[mk] = row
		}
		row[f.Mode]++
	}
	for mk := range byMonth {
		out.Months = append(out.Months, mk)
	}
	sort.Ints(out.Months)
	var prevShare [NumFaultModes]float64
	for i, mk := range out.Months {
		row := byMonth[mk]
		out.NewFaults = append(out.NewFaults, *row)
		total := 0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue
		}
		var share [NumFaultModes]float64
		for m, c := range row {
			share[m] = float64(c) / float64(total)
		}
		if i > 0 {
			for m := range share {
				if d := share[m] - prevShare[m]; d > out.MaxShareDrift {
					out.MaxShareDrift = d
				} else if -d > out.MaxShareDrift {
					out.MaxShareDrift = -d
				}
			}
		}
		prevShare = share
	}
	return out
}

// Interarrivals characterizes error burstiness within faults: the
// distribution of gaps between consecutive errors of the same fault. Heavy
// sub-minute mass is what overflows the kernel's CE log space (§2.3).
type Interarrivals struct {
	// Gaps are the inter-error gaps in minutes, over faults with >= 2
	// errors, sorted ascending.
	Gaps []float64
	// Summary describes the gap distribution.
	Summary stats.Summary
	// SubMinuteFrac is the fraction of gaps under one minute (burst
	// pressure on the EDAC ring).
	SubMinuteFrac float64
	// FaultsMeasured is the number of multi-error faults contributing.
	FaultsMeasured int
}

// AnalyzeInterarrivals computes within-fault error gaps. To bound memory
// on huge faults, at most maxPerFault gaps are sampled per fault (0 means
// all).
func AnalyzeInterarrivals(records []mce.CERecord, faults []Fault, maxPerFault int) Interarrivals {
	var out Interarrivals
	for _, f := range faults {
		if len(f.Errors) < 2 {
			continue
		}
		out.FaultsMeasured++
		times := make([]time.Time, 0, len(f.Errors))
		for _, idx := range f.Errors {
			times = append(times, records[idx].Time)
		}
		sort.Slice(times, func(a, b int) bool { return times[a].Before(times[b]) })
		n := len(times) - 1
		stride := 1
		if maxPerFault > 0 && n > maxPerFault {
			stride = n / maxPerFault
		}
		for i := 0; i < n; i += stride {
			out.Gaps = append(out.Gaps, times[i+1].Sub(times[i]).Minutes())
		}
	}
	sort.Float64s(out.Gaps)
	out.Summary = stats.Summarize(out.Gaps)
	if len(out.Gaps) > 0 {
		sub := 0
		for _, g := range out.Gaps {
			if g < 1 {
				sub++
			}
		}
		out.SubMinuteFrac = float64(sub) / float64(len(out.Gaps))
	}
	return out
}
