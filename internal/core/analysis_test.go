package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/envmodel"
	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestBreakdownByMode(t *testing.T) {
	_, records := generateSmall(t, 31, 400)
	faults := mustCluster(records, DefaultClusterConfig())
	b := BreakdownByMode(records, faults)
	if b.Total != len(records) {
		t.Errorf("Total = %d, want %d", b.Total, len(records))
	}
	// Monthly totals sum to the overall total.
	sum := 0
	for _, c := range b.AllErrors {
		sum += c
	}
	if sum != b.Total {
		t.Errorf("monthly sums = %d, want %d", sum, b.Total)
	}
	// Every error belongs to a fault, so mode series also sum to total.
	modeSum := 0
	for m := range b.ByMode {
		for _, c := range b.ByMode[m] {
			modeSum += c
		}
	}
	if modeSum != b.Total {
		t.Errorf("mode sums = %d, want %d", modeSum, b.Total)
	}
	// Single-bit faults dominate the fault mix (Fig 4a).
	if b.FaultsByMode[ModeSingleBit] <= b.FaultsByMode[ModeSingleBank] {
		t.Errorf("fault mix implausible: %+v", b.FaultsByMode)
	}
	// Default config must never yield single-row (platform limitation).
	if b.FaultsByMode[ModeSingleRow] != 0 {
		t.Errorf("single-row faults without row ablation: %d", b.FaultsByMode[ModeSingleRow])
	}
	// Study months span Jan-Sep 2019.
	if len(b.Months) < 8 || simtime.MonthLabel(b.Months[0]) != "2019-01" {
		t.Errorf("months = %v", b.Months)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := BreakdownByMode(nil, nil)
	if b.Total != 0 || len(b.Months) != 0 {
		t.Errorf("empty breakdown = %+v", b)
	}
}

func TestErrorsPerFaultDist(t *testing.T) {
	_, records := generateSmall(t, 32, 400)
	faults := mustCluster(records, DefaultClusterConfig())
	d := ErrorsPerFaultDist(faults)
	if d.Median != 1 {
		t.Errorf("median errors/fault = %v, want 1 (Fig 4b)", d.Median)
	}
	if d.Max < 5000 {
		t.Errorf("max errors/fault = %d, expected a heavy hitter", d.Max)
	}
	if d.Mean < 10 {
		t.Errorf("mean errors/fault = %v", d.Mean)
	}
	if len(d.Counts) != len(faults) {
		t.Errorf("counts length %d != faults %d", len(d.Counts), len(faults))
	}
}

func TestAnalyzePerNode(t *testing.T) {
	_, records := generateSmall(t, 33, 400)
	faults := mustCluster(records, DefaultClusterConfig())
	pn := AnalyzePerNode(records, faults, 400)
	if pn.NodesWithErrors == 0 || pn.NodesWithErrors > 400 {
		t.Fatalf("NodesWithErrors = %d", pn.NodesWithErrors)
	}
	// ~39% of nodes see errors.
	frac := float64(pn.NodesWithErrors) / 400
	if frac < 0.25 || frac > 0.55 {
		t.Errorf("fraction of nodes with errors = %v, want ~0.39", frac)
	}
	if pn.TopShare8 <= 0 || pn.TopShare8 > 1 {
		t.Errorf("TopShare8 = %v", pn.TopShare8)
	}
	if pn.TopShare2Pct < pn.TopShare8 {
		t.Errorf("top-2%% (%v) < top-8 (%v) with 400 nodes", pn.TopShare2Pct, pn.TopShare8)
	}
	if last := pn.Lorenz[len(pn.Lorenz)-1]; math.Abs(last-1) > 1e-9 {
		t.Errorf("Lorenz end = %v", last)
	}
	if pn.PowerLawErr != nil {
		t.Errorf("power-law fit failed: %v", pn.PowerLawErr)
	} else if pn.PowerLaw.Alpha < 1.1 || pn.PowerLaw.Alpha > 3.5 {
		t.Errorf("node fault alpha = %v", pn.PowerLaw.Alpha)
	}
	// Histogram totals match the number of faulty nodes.
	histTotal := 0
	for _, n := range pn.FaultHistogram {
		histTotal += n
	}
	if histTotal != len(pn.Faults) {
		t.Errorf("histogram covers %d nodes, want %d", histTotal, len(pn.Faults))
	}
}

func TestAnalyzeStructures(t *testing.T) {
	_, records := generateSmall(t, 34, 600)
	faults := mustCluster(records, DefaultClusterConfig())
	s := AnalyzeStructures(records, faults)

	sumInts := func(xs []int) int {
		total := 0
		for _, x := range xs {
			total += x
		}
		return total
	}
	for name, sc := range map[string]StructureCounts{
		"socket": s.Socket, "bank": s.Bank, "rank": s.Rank, "slot": s.Slot, "column": s.Column,
	} {
		if got := sumInts(sc.Errors); got != len(records) {
			t.Errorf("%s errors sum = %d, want %d", name, got, len(records))
		}
	}
	for name, sc := range map[string]StructureCounts{
		"socket": s.Socket, "bank": s.Bank, "rank": s.Rank, "slot": s.Slot,
	} {
		if got := sumInts(sc.Faults); got != len(faults) {
			t.Errorf("%s faults sum = %d, want %d", name, got, len(faults))
		}
	}
	// Fault distributions: socket and bank uniform (χ² does not reject at
	// 1%), rank and slot skewed.
	if s.Socket.FaultChi2.PValue < 0.01 {
		t.Errorf("socket faults rejected as uniform: %+v", s.Socket.FaultChi2)
	}
	if s.Bank.FaultChi2.PValue < 0.001 {
		t.Errorf("bank faults rejected as uniform: %+v", s.Bank.FaultChi2)
	}
	if s.Rank.Faults[0] <= s.Rank.Faults[1] {
		t.Errorf("rank 0 faults should dominate: %v", s.Rank.Faults)
	}
	if s.Slot.FaultChi2.PValue > 0.01 {
		t.Errorf("slot faults should be non-uniform: %+v", s.Slot.FaultChi2)
	}
	// Errors-vs-faults divergence: the error vector should be wildly less
	// uniform than the fault vector on the socket dimension whenever a
	// pathological node dominates one socket (the paper's core point).
	if s.Socket.ErrorChi2.Statistic < s.Socket.FaultChi2.Statistic {
		t.Logf("note: socket errors less skewed than faults in this draw")
	}
}

func TestAnalyzeBitAddress(t *testing.T) {
	_, records := generateSmall(t, 35, 600)
	faults := mustCluster(records, DefaultClusterConfig())
	ba := AnalyzeBitAddress(faults)
	if len(ba.PerBit) == 0 || len(ba.PerAddr) == 0 {
		t.Fatal("empty bit/address maps")
	}
	for bit := range ba.PerBit {
		if bit < 0 || bit > topology.MaxLineBitPosition {
			t.Fatalf("bit position %d out of range", bit)
		}
	}
	if ba.BitFitErr != nil {
		t.Errorf("bit fit failed: %v", ba.BitFitErr)
	}
	if ba.AddrFitErr != nil {
		t.Errorf("addr fit failed: %v", ba.AddrFitErr)
	}
	// Most addresses host exactly one fault; a few host more (Fig 8b).
	if ba.AddrHistogram[1] == 0 {
		t.Error("no single-fault addresses")
	}
}

func TestAnalyzePositional(t *testing.T) {
	_, records := generateSmall(t, 36, 600)
	faults := mustCluster(records, DefaultClusterConfig())
	p := AnalyzePositional(records, faults)
	sumErr := 0
	for _, c := range p.RegionErrors {
		sumErr += c
	}
	if sumErr != len(records) {
		t.Errorf("region errors sum = %d, want %d", sumErr, len(records))
	}
	sumRack := 0
	for _, c := range p.RackErrors {
		sumRack += c
	}
	if sumRack != len(records) {
		t.Errorf("rack errors sum = %d, want %d", sumRack, len(records))
	}
	sumFaults := 0
	for _, c := range p.RegionFaults {
		sumFaults += c
	}
	if sumFaults != len(faults) {
		t.Errorf("region faults sum = %d, want %d", sumFaults, len(faults))
	}
	// Region shares per rack sum to 1 (or 0 for fault-free racks).
	for rack, shares := range p.RegionShareByRack {
		total := shares[0] + shares[1] + shares[2]
		if total != 0 && math.Abs(total-1) > 1e-9 {
			t.Errorf("rack %d shares sum to %v", rack, total)
		}
	}
	if p.MaxErrorRack < 0 || p.MaxErrorRack >= topology.Racks {
		t.Errorf("MaxErrorRack = %d", p.MaxErrorRack)
	}
	if p.MaxRackErrorRatio < 1 {
		t.Errorf("MaxRackErrorRatio = %v", p.MaxRackErrorRatio)
	}
}

// envRecords filters records to the environmental window.
func envRecords(records []mce.CERecord) []mce.CERecord {
	var out []mce.CERecord
	for _, r := range records {
		if inEnvWindow(r) {
			out = append(out, r)
		}
	}
	return out
}

func TestAnalyzeTempWindowsFlatOnAstraTruth(t *testing.T) {
	_, records := generateSmall(t, 37, 600)
	env := envmodel.New(37, envmodel.DefaultParams())
	windows := AnalyzeTempWindows(envRecords(records), env, Fig9Windows)
	if len(windows) != 4 {
		t.Fatalf("got %d windows", len(windows))
	}
	for _, w := range windows {
		total := 0
		for _, c := range w.Counts {
			total += c
		}
		if total == 0 {
			t.Fatalf("window %d: no errors binned", w.WindowMinutes)
		}
		if w.FitErr != nil {
			t.Fatalf("window %d: fit failed: %v", w.WindowMinutes, w.FitErr)
		}
	}
}

func TestAnalyzeTempDecilesAstraTruth(t *testing.T) {
	_, records := generateSmall(t, 38, 600)
	env := envmodel.New(38, envmodel.DefaultParams())
	panels := AnalyzeTempDeciles(envRecords(records), env, 600)
	if len(panels) != 6 {
		t.Fatalf("got %d panels, want 6", len(panels))
	}
	for _, p := range panels {
		if len(p.Bins) != 10 {
			t.Fatalf("panel %v: %d bins", p.Sensor, len(p.Bins))
		}
		// Decile spreads: CPUs wider than DIMMs; sane magnitudes.
		if p.Sensor == topology.SensorCPU1 || p.Sensor == topology.SensorCPU2 {
			if p.Spread < 3 || p.Spread > 14 {
				t.Errorf("CPU decile spread = %v", p.Spread)
			}
		} else if p.Spread < 1 || p.Spread > 9 {
			t.Errorf("DIMM decile spread = %v", p.Spread)
		}
	}
}

func TestAnalyzeUtilizationAstraTruth(t *testing.T) {
	_, records := generateSmall(t, 39, 600)
	env := envmodel.New(39, envmodel.DefaultParams())
	panels := AnalyzeUtilization(envRecords(records), env, 600)
	if len(panels) != 6 {
		t.Fatalf("got %d panels", len(panels))
	}
	for _, p := range panels {
		// Hot samples sit at higher power (shared utilization driver).
		if p.HotPowerMean <= p.ColdPowerMean {
			t.Errorf("%v: hot power %v <= cold power %v", p.Sensor, p.HotPowerMean, p.ColdPowerMean)
		}
	}
}

func TestTrendStrengthAndDescribe(t *testing.T) {
	_, records := generateSmall(t, 40, 400)
	env := envmodel.New(40, envmodel.DefaultParams())
	panels := AnalyzeTempDeciles(envRecords(records), env, 400)
	for _, p := range panels {
		if p.TrendErr != nil {
			continue
		}
		s := TrendStrength(p.Trend, p.Bins)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Errorf("%v: trend strength %v", p.Sensor, s)
		}
		if DescribeTrend(p.Trend, p.Bins) == "" {
			t.Error("empty trend description")
		}
	}
	if TrendStrength(panels[0].Trend, nil) != 0 {
		t.Error("TrendStrength(nil bins) != 0")
	}
}

func TestAnalyzeUncorrectable(t *testing.T) {
	cfg := faultmodel.DefaultConfig(41)
	pop, err := faultmodel.Generate(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := mce.NewEncoder(41)
	var hetRecs []het.Record
	for _, d := range pop.DUEs {
		hetRecs = append(hetRecs, het.FromDUE(mustEncodeDUE(enc, d)))
	}
	hetRecs = het.Merge(hetRecs, het.GenerateAmbient(41, simtime.HETStart, simtime.StudyEnd, topology.Nodes))
	u := AnalyzeUncorrectable(hetRecs, topology.DIMMs, simtime.StudyEnd)
	if u.DUEs == 0 {
		t.Fatal("no DUEs in the HET window")
	}
	// The generated rate is 0.00948/DIMM-year; the windowed estimate is
	// noisy (expectation ~24 events) but must be the right order.
	if u.DUEsPerDIMMYear < 0.002 || u.DUEsPerDIMMYear > 0.03 {
		t.Errorf("DUEsPerDIMMYear = %v, want ~0.00948", u.DUEsPerDIMMYear)
	}
	if u.FITPerDIMM < 200 || u.FITPerDIMM > 4000 {
		t.Errorf("FIT = %v, want ~1081", u.FITPerDIMM)
	}
	if u.First.Before(simtime.HETStart) {
		t.Errorf("First = %v precedes the firmware gate", u.First)
	}
	// Daily series cover multiple event types.
	nonEmpty := 0
	for _, daily := range u.DailyByType {
		if len(daily) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Errorf("only %d event types appear in the dailies", nonEmpty)
	}
}

func TestFITConversion(t *testing.T) {
	// The paper: 0.00948 DUEs/DIMM/year => FIT ~= 1081.
	if got := FIT(0.00948); math.Abs(got-1081) > 5 {
		t.Errorf("FIT(0.00948) = %v, want ~1081", got)
	}
	want := 0.00948 * float64(topology.DIMMs) * (22.0 * 24 / simtime.HoursPerYear)
	got := ExpectedDUEs(0.00948, topology.DIMMs, 22*24*time.Hour)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedDUEs = %v, want %v", got, want)
	}
}

// TestAnalyzeBitAddressWorkers proves the sharded counting pass and
// concurrent fits agree with the serial analysis at every worker count:
// maps and histograms exactly, the power-law fits up to float rounding
// (their input order comes from map iteration either way).
func TestAnalyzeBitAddressWorkers(t *testing.T) {
	_, records := generateSmall(t, 35, 600)
	faults := mustCluster(records, DefaultClusterConfig())
	want := AnalyzeBitAddress(faults)
	for _, workers := range []int{0, 2, 4, 8} {
		got := AnalyzeBitAddressWorkers(faults, workers)
		if !reflect.DeepEqual(got.PerBit, want.PerBit) || !reflect.DeepEqual(got.PerAddr, want.PerAddr) {
			t.Fatalf("workers=%d: count maps diverge", workers)
		}
		if !reflect.DeepEqual(got.BitHistogram, want.BitHistogram) || !reflect.DeepEqual(got.AddrHistogram, want.AddrHistogram) {
			t.Fatalf("workers=%d: histograms diverge", workers)
		}
		if (got.BitFitErr == nil) != (want.BitFitErr == nil) || (got.AddrFitErr == nil) != (want.AddrFitErr == nil) {
			t.Fatalf("workers=%d: fit errors diverge", workers)
		}
		if math.Abs(got.BitFit.Alpha-want.BitFit.Alpha) > 1e-9 || math.Abs(got.AddrFit.Alpha-want.AddrFit.Alpha) > 1e-9 {
			t.Fatalf("workers=%d: alphas diverge: %v vs %v, %v vs %v",
				workers, got.BitFit.Alpha, want.BitFit.Alpha, got.AddrFit.Alpha, want.AddrFit.Alpha)
		}
	}
}
