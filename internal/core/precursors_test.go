package core

import (
	"testing"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestAnalyzeDUEPrecursorsHandBuilt(t *testing.T) {
	base := simtime.StudyStart
	cell := topology.CellAddr{Node: 5, Slot: 3, Rank: 0, Bank: 1, Row: 10, Col: 20}
	faults := []Fault{{
		Node: 5, Slot: 3, Rank: 0, Bank: 1, Mode: ModeSingleBit,
		First: base.Add(24 * time.Hour), Last: base.Add(48 * time.Hour),
	}}
	dues := []mce.DUERecord{
		// Same DIMM, after the fault: precursor hit, 9-day lead.
		{Time: base.Add(10 * 24 * time.Hour), Node: 5, Addr: topology.EncodePhysAddr(cell, 0)},
		// Same DIMM but BEFORE the fault: no precursor.
		{Time: base.Add(12 * time.Hour), Node: 5, Addr: topology.EncodePhysAddr(cell, 0)},
		// Different node: no precursor.
		{Time: base.Add(10 * 24 * time.Hour), Node: 6, Addr: topology.EncodePhysAddr(
			topology.CellAddr{Node: 6, Slot: 3, Rank: 0, Bank: 1, Row: 10, Col: 20}, 0)},
	}
	p := AnalyzeDUEPrecursors(dues, faults, 100)
	if p.DUEs != 3 || p.WithPriorFault != 1 {
		t.Fatalf("precursors = %+v", p)
	}
	if p.Fraction < 0.33 || p.Fraction > 0.34 {
		t.Errorf("fraction = %v", p.Fraction)
	}
	if p.BaselineFraction != 0.01 {
		t.Errorf("baseline = %v", p.BaselineFraction)
	}
	if p.MedianLeadDays < 8.9 || p.MedianLeadDays > 9.1 {
		t.Errorf("lead = %v days", p.MedianLeadDays)
	}
	if p.Lift < 30 {
		t.Errorf("lift = %v", p.Lift)
	}
}

func TestAnalyzeDUEPrecursorsEmpty(t *testing.T) {
	p := AnalyzeDUEPrecursors(nil, nil, 0)
	if p.DUEs != 0 || p.Fraction != 0 || p.Lift != 0 {
		t.Errorf("empty precursors = %+v", p)
	}
}

func TestEscalatedDUEsHavePrecursors(t *testing.T) {
	// With escalation enabled, DUEs must show CE precursors well above
	// chance level.
	cfg := faultmodel.DefaultConfig(71)
	cfg.Nodes = 1200 // enough DIMMs for a stable baseline
	pop, err := faultmodel.Generate(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := mce.NewEncoder(cfg.Seed)
	records := make([]mce.CERecord, len(pop.CEs))
	for i, ev := range pop.CEs {
		records[i] = mustEncodeCE(enc, ev, i)
	}
	faults := mustCluster(records, DefaultClusterConfig())
	dues := make([]mce.DUERecord, len(pop.DUEs))
	for i, d := range pop.DUEs {
		dues[i] = mustEncodeDUE(enc, d)
	}
	p := AnalyzeDUEPrecursors(dues, faults, cfg.Nodes*topology.SlotsPerNode)
	if p.DUEs < 30 {
		t.Skipf("only %d DUEs in draw", p.DUEs)
	}
	if p.Lift < 1.5 {
		t.Errorf("precursor lift = %v, want clearly above chance (escalations present)", p.Lift)
	}
	if p.MedianLeadDays <= 0 {
		t.Errorf("median lead = %v days", p.MedianLeadDays)
	}

	// Ablation: with escalation off, the lift collapses toward 1.
	cfg2 := cfg
	cfg2.EscalationPerKErrors = 0
	pop2, err := faultmodel.Generate(testCtx, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	dues2 := make([]mce.DUERecord, len(pop2.DUEs))
	for i, d := range pop2.DUEs {
		dues2[i] = mustEncodeDUE(enc, d)
	}
	p2 := AnalyzeDUEPrecursors(dues2, faults, cfg.Nodes*topology.SlotsPerNode)
	if p2.DUEs > 30 && p2.Lift > p.Lift {
		t.Errorf("escalation-free lift %v exceeds escalated lift %v", p2.Lift, p.Lift)
	}
}
