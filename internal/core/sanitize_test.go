package core

import (
	"testing"
	"time"

	"repro/internal/mce"
	"repro/internal/topology"
)

func sanRec(sec int, node int, addr uint64) mce.CERecord {
	return mce.CERecord{
		Time: time.Date(2019, 5, 1, 0, 0, sec, 0, time.UTC),
		Node: topology.NodeID(node),
		Addr: topology.PhysAddr(addr),
	}
}

func TestSanitizeRecordsCleanPassthrough(t *testing.T) {
	in := []mce.CERecord{sanRec(1, 0, 0x100), sanRec(2, 1, 0x200), sanRec(3, 0, 0x300)}
	out, rep := SanitizeRecords(in)
	if rep.Changed() {
		t.Errorf("clean input reported changed: %+v", rep)
	}
	if len(out) != 3 || rep.In != 3 || rep.Out != 3 {
		t.Errorf("clean input altered: %d records, report %+v", len(out), rep)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d changed: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestSanitizeRecordsRepairsOrderAndDupes(t *testing.T) {
	in := []mce.CERecord{
		sanRec(5, 0, 0x100),
		sanRec(2, 1, 0x200),
		sanRec(2, 1, 0x200), // exact duplicate
		sanRec(1, 2, 0x300),
	}
	out, rep := SanitizeRecords(in)
	if !rep.WasUnsorted || rep.DuplicatesRemoved != 1 {
		t.Errorf("report = %+v, want unsorted with 1 duplicate", rep)
	}
	if len(out) != 3 {
		t.Fatalf("got %d records, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Error("output not time-ordered")
		}
	}
}

func TestSanitizeRecordsKeepsDistinctSameSecond(t *testing.T) {
	// Same timestamp, different address: a legitimate burst, not a dupe.
	in := []mce.CERecord{sanRec(1, 0, 0x100), sanRec(1, 0, 0x108)}
	out, rep := SanitizeRecords(in)
	if len(out) != 2 || rep.DuplicatesRemoved != 0 {
		t.Errorf("burst collapsed: %d records, report %+v", len(out), rep)
	}
}

func TestSanitizeRecordsEmpty(t *testing.T) {
	out, rep := SanitizeRecords(nil)
	if out != nil || rep.Changed() {
		t.Errorf("empty sanitize: %v, %+v", out, rep)
	}
}

// TestAnalysesDegradeOnEmptyInput drives every analysis that feeds the
// report with empty inputs — the end state of a fully corrupted ingest —
// and requires defined zero values with Degraded set, not panics.
func TestAnalysesDegradeOnEmptyInput(t *testing.T) {
	var records []mce.CERecord
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 0 {
		t.Fatalf("clustered %d faults from nothing", len(faults))
	}

	if b := BreakdownByMode(records, faults); !b.Degraded || b.Total != 0 {
		t.Errorf("BreakdownByMode = %+v", b)
	}
	if e := ErrorsPerFaultDist(faults); !e.Degraded || e.Median != 0 {
		t.Errorf("ErrorsPerFaultDist = %+v", e)
	}
	if p := AnalyzePerNode(records, faults, 100); !p.Degraded || p.TopShare2Pct != 0 {
		t.Errorf("AnalyzePerNode = %+v", p)
	}
	if p := AnalyzePerNode(records, faults, 0); !p.Degraded {
		t.Errorf("AnalyzePerNode(totalNodes=0) not degraded")
	}
	if r := AnalyzeFaultRates(faults, 200, StudyWindow()); !r.Degraded || r.Total != 0 {
		t.Errorf("AnalyzeFaultRates = %+v", r)
	}
	// The remaining analyses must simply not panic on empty input.
	_ = AnalyzeStructures(records, faults)
	_ = AnalyzeBitAddress(faults)
	_ = AnalyzePositional(records, faults)
	_ = AnalyzeDUEPrecursors(nil, faults, 200)
	_ = AnalyzeModeStability(faults)
	_ = AnalyzeInterarrivals(records, faults, 10)
}
