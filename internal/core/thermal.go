package core

import "repro/internal/topology"

// RegionTemps is the §3.4 within-rack thermal-uniformity analysis the
// paper describes but omits "due to space constraints": the mean
// temperature of each rack region for each of the six sensors. On Astra
// the means agree to well under 1 °C, which is why temperature can be
// excluded as a cause of positional error trends.
type RegionTemps struct {
	// Mean[sensor][region] is the fleet mean (°C) over the environmental
	// window.
	Mean map[topology.Sensor][topology.NumRegions]float64
	// MaxSpread is the largest region-to-region difference across all
	// sensors (paper: "significantly less than 1 °C").
	MaxSpread float64
}

// AnalyzeRegionTemps computes region means over the environmental window
// for nodes [0, nodes), sampling every strideth node for speed.
func AnalyzeRegionTemps(src SensorSource, nodes, stride int) RegionTemps {
	if stride < 1 {
		stride = 1
	}
	out := RegionTemps{Mean: map[topology.Sensor][topology.NumRegions]float64{}}
	months := monthKeys()
	for _, sensor := range topology.TemperatureSensors() {
		var sums [topology.NumRegions]float64
		var counts [topology.NumRegions]int
		for n := 0; n < nodes; n += stride {
			node := topology.NodeID(n)
			for _, mk := range months {
				sums[node.Region()] += src.MonthlyMean(node, sensor, mk)
				counts[node.Region()]++
			}
		}
		var means [topology.NumRegions]float64
		lo, hi := 0.0, 0.0
		for r := range sums {
			if counts[r] == 0 {
				continue
			}
			means[r] = sums[r] / float64(counts[r])
			if r == 0 || means[r] < lo {
				lo = means[r]
			}
			if r == 0 || means[r] > hi {
				hi = means[r]
			}
		}
		out.Mean[sensor] = means
		if spread := hi - lo; spread > out.MaxSpread {
			out.MaxSpread = spread
		}
	}
	return out
}

// RackTemps is the §3.4 rack-to-rack thermal variation analysis: per-rack
// mean temperatures per sensor. The paper reports a spread under ≈4.2 °C
// across the racks, consistent with the flat per-rack fault counts of
// Fig 12b.
type RackTemps struct {
	// Mean[sensor][rack] is the rack's fleet-mean temperature.
	Mean map[topology.Sensor][]float64
	// MaxSpread is the largest rack-to-rack difference across sensors.
	MaxSpread float64
}

// AnalyzeRackTemps computes per-rack means over the environmental window.
// Racks not covered by [0, nodes) are reported as 0 and skipped in the
// spread.
func AnalyzeRackTemps(src SensorSource, nodes, stride int) RackTemps {
	if stride < 1 {
		stride = 1
	}
	out := RackTemps{Mean: map[topology.Sensor][]float64{}}
	months := monthKeys()
	// Use the first environmental month only: rack offsets are static, so
	// one month suffices and keeps full-scale runs fast.
	mk := months[0]
	for _, sensor := range topology.TemperatureSensors() {
		sums := make([]float64, topology.Racks)
		counts := make([]int, topology.Racks)
		for n := 0; n < nodes; n += stride {
			node := topology.NodeID(n)
			sums[node.Rack()] += src.MonthlyMean(node, sensor, mk)
			counts[node.Rack()]++
		}
		means := make([]float64, topology.Racks)
		first := true
		lo, hi := 0.0, 0.0
		for r := range sums {
			if counts[r] == 0 {
				continue
			}
			means[r] = sums[r] / float64(counts[r])
			if first || means[r] < lo {
				lo = means[r]
			}
			if first || means[r] > hi {
				hi = means[r]
			}
			first = false
		}
		out.Mean[sensor] = means
		if spread := hi - lo; spread > out.MaxSpread {
			out.MaxSpread = spread
		}
	}
	return out
}

// EnvWindowMonths exposes the calendar months of the environmental window
// for callers that need to iterate them (reports, tests).
func EnvWindowMonths() []int { return monthKeys() }
