package core

import (
	"time"

	"repro/internal/het"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Uncorrectable is the §3.5 / Fig 15 analysis of Hardware Event Tracker
// records.
type Uncorrectable struct {
	// First and Last bound the observed HET records; the paper's analysis
	// window opens at the firmware update (Aug 23, 2019).
	First, Last time.Time
	// DailyByType[t] maps day index -> count for each event type
	// (Fig 15a).
	DailyByType [het.NumEventTypes]map[simtime.Day]int
	// DailyNonRecoverable maps day -> NON-RECOVERABLE count (Fig 15b).
	DailyNonRecoverable map[simtime.Day]int
	// DUEs is the number of memory DUE records (uncorrectableECC +
	// uncorrectableMachineCheckException).
	DUEs int
	// DUEsPerDIMMYear is the §3.5 rate (paper: 0.00948).
	DUEsPerDIMMYear float64
	// FITPerDIMM is the failures-in-time rate per DIMM (paper: ≈1081).
	FITPerDIMM float64
}

// AnalyzeUncorrectable computes the Fig 15 series and FIT rate from HET
// records. dimms is the DIMM population (41472 on the full system); the
// observation window runs from the firmware gate to windowEnd.
func AnalyzeUncorrectable(records []het.Record, dimms int, windowEnd time.Time) Uncorrectable {
	u := Uncorrectable{DailyNonRecoverable: map[simtime.Day]int{}}
	for i := range u.DailyByType {
		u.DailyByType[i] = map[simtime.Day]int{}
	}
	for _, r := range records {
		if !r.Recorded() || r.Time.After(windowEnd) {
			continue
		}
		if u.First.IsZero() || r.Time.Before(u.First) {
			u.First = r.Time
		}
		if r.Time.After(u.Last) {
			u.Last = r.Time
		}
		day := simtime.DayOf(r.Time)
		u.DailyByType[r.Type][day]++
		if r.Severity == het.SeverityNonRecoverable {
			u.DailyNonRecoverable[day]++
		}
		if r.Type == het.UncorrectableECC || r.Type == het.UncorrectableMCE {
			u.DUEs++
		}
	}
	window := windowEnd.Sub(simtime.HETStart)
	if window > 0 && dimms > 0 {
		years := window.Hours() / simtime.HoursPerYear
		u.DUEsPerDIMMYear = float64(u.DUEs) / float64(dimms) / years
		u.FITPerDIMM = FIT(u.DUEsPerDIMMYear)
	}
	return u
}

// FIT converts a per-device-per-year failure rate to failures per 1e9
// device-hours (the rate unit used in §3.5: 0.00948 DUEs/DIMM-year ⇒
// FIT ≈ 1081).
func FIT(perDeviceYear float64) float64 {
	return perDeviceYear / simtime.HoursPerYear * 1e9
}

// ExpectedDUEs returns the expected DUE count for a device population and
// window at a given per-device-year rate — used by the report to print the
// paper-vs-measured comparison.
func ExpectedDUEs(perDeviceYear float64, devices int, window time.Duration) float64 {
	return perDeviceYear * float64(devices) * window.Hours() / simtime.HoursPerYear
}

// DefaultDIMMs is the full-system DIMM population.
const DefaultDIMMs = topology.DIMMs
