package core

import "math/bits"

// BankSpatial summarizes the spatial structure of the errors a bank has
// accumulated — the error-bits indicators the memory-failure-prediction
// field studies key on (bit/DQ fan-out, row/column spread, multi-bit
// words). It is derived on demand from a BankState so the ingest hot
// path pays nothing for it; the derivation is deterministic regardless
// of map iteration order because every field is an order-independent
// reduction (counts, maxima, saturating distinct counts).
type BankSpatial struct {
	// Words is the number of distinct word addresses with errors.
	Words int
	// Errors is the total CE count folded into the bank.
	Errors int
	// MultiBitWords is the number of words with errors on ≥2 distinct
	// line-bit positions — the uncorrectable-capable population under
	// SEC-DED (two flipped bits in one codeword defeat correction).
	MultiBitWords int
	// MaxBitsPerWord is the largest distinct-bit count on any one word.
	MaxBitsPerWord int
	// DistinctBits is the number of distinct line-bit positions across
	// the whole bank (exact; the per-word bitsets are unioned).
	DistinctBits int
	// DQLanes is the number of distinct DQ lanes (bit position mod 8,
	// the x8-device data-pin heuristic) with errors. Faults confined to
	// one lane look like a single failing DRAM pin; spread across lanes
	// implies shared circuitry (sense amps, decoders) or many cells.
	DQLanes int
	// DistinctRows and DistinctCols count distinct row identifiers and
	// column addresses, each saturating at SpatialDistinctCap: the
	// predictors only care about "one / a few / many", and a fixed cap
	// keeps the scan allocation-free for pathological banks.
	DistinctRows int
	DistinctCols int
}

// SpatialDistinctCap bounds the DistinctRows/DistinctCols counts.
const SpatialDistinctCap = 64

// distinctSet is a tiny fixed-capacity set for the saturating
// row/column counts; linear scan is fine at cap 64.
type distinctSet struct {
	vals [SpatialDistinctCap]int32
	n    int
}

// add inserts v, reporting false once the set has saturated.
func (s *distinctSet) add(v int32) bool {
	if s.n >= SpatialDistinctCap {
		return false
	}
	for i := 0; i < s.n; i++ {
		if s.vals[i] == v {
			return true
		}
	}
	s.vals[s.n] = v
	s.n++
	return true
}

// Spatial derives the bank's spatial feature summary. It allocates
// nothing and does not mutate the state, so it is safe to call while
// the owner continues to Add (under the owner's lock).
func (b *BankState) Spatial() BankSpatial {
	var sp BankSpatial
	var union lineBits
	var rows, cols distinctSet
	for _, g := range b.words {
		sp.Words++
		sp.Errors += len(g.errors)
		if g.bits.n >= 2 {
			sp.MultiBitWords++
		}
		if g.bits.n > sp.MaxBitsPerWord {
			sp.MaxBitsPerWord = g.bits.n
		}
		for w := range union.words {
			union.words[w] |= g.bits.words[w]
		}
		rows.add(int32(g.rowBits))
		cols.add(int32(g.col))
	}
	var lanes uint8
	for _, v := range union.words {
		sp.DistinctBits += bits.OnesCount64(v)
		// Fold the 64-bit word onto its 8 DQ lanes: OR-folding the
		// bytes marks lane (position mod 8), and 64-bit word
		// boundaries preserve position mod 8.
		for ; v != 0; v >>= 8 {
			lanes |= uint8(v)
		}
	}
	sp.DQLanes = bits.OnesCount8(lanes)
	sp.DistinctRows = rows.n
	sp.DistinctCols = cols.n
	return sp
}
