package core

import (
	"sort"
	"strconv"

	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ModeBreakdown is the Fig 4a decomposition: per calendar month, the total
// error count and the error count attributed to faults of each mode.
type ModeBreakdown struct {
	// Months lists the month keys in order.
	Months []int
	// AllErrors[i] is the total CE count in Months[i].
	AllErrors []int
	// ByMode[m][i] is the CE count in Months[i] from faults of mode m.
	ByMode [NumFaultModes][]int
	// FaultsByMode counts faults per mode over the whole window.
	FaultsByMode [NumFaultModes]int
	// ErrorsByMode counts errors per mode over the whole window.
	ErrorsByMode [NumFaultModes]int
	// Total is the overall CE count (paper: 4,369,731).
	Total int
	// Degraded reports that the input was empty (reachable from fully
	// corrupted telemetry) and every field is a defined zero value.
	Degraded bool
}

// BreakdownByMode computes the Fig 4a series from clustered faults.
func BreakdownByMode(records []mce.CERecord, faults []Fault) ModeBreakdown {
	var b ModeBreakdown
	if len(records) == 0 {
		b.Degraded = true
		return b
	}
	first, last := records[0].Time, records[0].Time
	for _, r := range records {
		if r.Time.Before(first) {
			first = r.Time
		}
		if r.Time.After(last) {
			last = r.Time
		}
	}
	startKey := simtime.MonthKey(first)
	endKey := simtime.MonthKey(last)
	n := endKey - startKey + 1
	b.Months = make([]int, n)
	for i := range b.Months {
		b.Months[i] = startKey + i
	}
	b.AllErrors = make([]int, n)
	for m := range b.ByMode {
		b.ByMode[m] = make([]int, n)
	}
	for _, r := range records {
		b.AllErrors[simtime.MonthKey(r.Time)-startKey]++
		b.Total++
	}
	for _, f := range faults {
		b.FaultsByMode[f.Mode]++
		b.ErrorsByMode[f.Mode] += f.NErrors
		series := b.ByMode[f.Mode]
		for _, idx := range f.Errors {
			series[simtime.MonthKey(records[idx].Time)-startKey]++
		}
	}
	return b
}

// ErrorsPerFault summarizes the Fig 4b violin: the distribution of error
// counts across faults.
type ErrorsPerFault struct {
	Counts  []int // per-fault error counts, ascending
	Median  float64
	Mean    float64
	Max     int
	Summary stats.Summary
	// Degraded reports an empty fault population (zero-valued summary).
	Degraded bool
}

// ErrorsPerFaultDist computes the Fig 4b distribution.
func ErrorsPerFaultDist(faults []Fault) ErrorsPerFault {
	out := ErrorsPerFault{Counts: make([]int, 0, len(faults)), Degraded: len(faults) == 0}
	for _, f := range faults {
		out.Counts = append(out.Counts, f.NErrors)
		if f.NErrors > out.Max {
			out.Max = f.NErrors
		}
	}
	sort.Ints(out.Counts)
	fs := stats.CountsToFloats(out.Counts)
	out.Summary = stats.Summarize(fs)
	out.Median = out.Summary.Median
	out.Mean = out.Summary.Mean
	return out
}

// PerNode is the Fig 5 analysis: error and fault counts by node, the
// count histogram, the concentration statistics and the power-law fit.
type PerNode struct {
	// Errors and Faults map node -> count (nodes with zero omitted).
	Errors map[topology.NodeID]int
	Faults map[topology.NodeID]int
	// FaultHistogram is the Fig 5a transform: fault count -> node count.
	FaultHistogram stats.CountHistogram
	// NodesWithErrors is the number of nodes with >= 1 CE (paper: 1013).
	NodesWithErrors int
	// TopShare8 is the CE share of the 8 busiest nodes (paper: > 0.5).
	TopShare8 float64
	// TopShare2Pct is the CE share of the top 2% of nodes (paper: ~0.9).
	TopShare2Pct float64
	// Lorenz is the Fig 5b cumulative-share curve over nodes sorted by
	// CE count descending.
	Lorenz []float64
	// PowerLaw is the fit to the per-node fault counts (Fig 5a).
	PowerLaw stats.PowerLawFit
	// PowerLawErr reports a fit failure (small samples).
	PowerLawErr error
	// Degraded reports an empty record population or a non-positive
	// totalNodes; concentration statistics are zero-valued.
	Degraded bool
}

// AnalyzePerNode computes the Fig 5 statistics. totalNodes is the system
// size used for the top-2% cut (2592 on the full system).
func AnalyzePerNode(records []mce.CERecord, faults []Fault, totalNodes int) PerNode {
	out := PerNode{
		Errors:   map[topology.NodeID]int{},
		Faults:   map[topology.NodeID]int{},
		Degraded: len(records) == 0 || totalNodes <= 0,
	}
	for _, r := range records {
		out.Errors[r.Node]++
	}
	for _, f := range faults {
		out.Faults[f.Node]++
	}
	out.NodesWithErrors = len(out.Errors)
	perNode := make([]float64, 0, len(out.Errors))
	for _, c := range out.Errors {
		perNode = append(perNode, float64(c))
	}
	out.TopShare8 = stats.TopShare(perNode, 8)
	out.TopShare2Pct = stats.TopShare(perNode, totalNodes*2/100)
	out.Lorenz = stats.LorenzCurve(perNode)
	var faultCounts []int
	for _, c := range out.Faults {
		faultCounts = append(faultCounts, c)
	}
	out.FaultHistogram = stats.NewCountHistogram(faultCounts)
	out.PowerLaw, out.PowerLawErr = stats.FitPowerLaw(faultCounts, 1)
	return out
}

// StructureCounts pairs the error and fault count vectors for one
// structural dimension, with uniformity tests — the Fig 6/7 payload.
type StructureCounts struct {
	// Labels names the cells (e.g. slot letters).
	Labels []string
	// Errors and Faults are the per-cell counts.
	Errors []int
	Faults []int
	// ErrorChi2 and FaultChi2 test uniformity of each vector.
	ErrorChi2, FaultChi2 stats.ChiSquare
}

func newStructure(labels []string) StructureCounts {
	return StructureCounts{
		Labels: labels,
		Errors: make([]int, len(labels)),
		Faults: make([]int, len(labels)),
	}
}

func (s *StructureCounts) finish() {
	if cs, err := stats.ChiSquareUniform(s.Errors); err == nil {
		s.ErrorChi2 = cs
	}
	if cs, err := stats.ChiSquareUniform(s.Faults); err == nil {
		s.FaultChi2 = cs
	}
}

// Divergence quantifies the paper's central methodological point for one
// structure: how different a picture error counts paint compared to fault
// counts.
type Divergence struct {
	// TotalVariation is the TV distance between the normalized error and
	// fault distributions: 0 when errors are a faithful proxy for
	// faults, up to 1 when they concentrate on entirely different cells.
	TotalVariation float64
	// RankCorrelation is the Spearman correlation between per-cell error
	// and fault counts: a study ranking cells ("which slot is worst?")
	// by errors instead of faults flips conclusions when this is low or
	// negative.
	RankCorrelation float64
}

// Divergence computes the error-vs-fault disagreement for the structure.
// Zero-valued when either vector is empty.
func (s StructureCounts) Divergence() Divergence {
	var d Divergence
	var errTotal, faultTotal float64
	for i := range s.Errors {
		errTotal += float64(s.Errors[i])
		faultTotal += float64(s.Faults[i])
	}
	if errTotal == 0 || faultTotal == 0 {
		return d
	}
	for i := range s.Errors {
		d.TotalVariation += 0.5 * abs(float64(s.Errors[i])/errTotal-float64(s.Faults[i])/faultTotal)
	}
	d.RankCorrelation = stats.Spearman(stats.CountsToFloats(s.Errors), stats.CountsToFloats(s.Faults))
	return d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Structures aggregates the within-node positional analyses of Figs 6, 7.
type Structures struct {
	Socket StructureCounts // Fig 6a/6d
	Bank   StructureCounts // Fig 6b/6e
	Column StructureCounts // Fig 6c/6f (column index folded into 16 bins)
	Rank   StructureCounts // Fig 7a/7b
	Slot   StructureCounts // Fig 7c/7d
}

// ColumnBins is the number of bins the column dimension is folded into for
// Fig 6c/6f (the paper's figure shows on the order of two dozen column
// groups).
const ColumnBins = 16

// AnalyzeStructures computes the Fig 6/7 error and fault distributions.
// Fault counts weight each fault once, regardless of its error count —
// the paper's core "count faults, not errors" move.
func AnalyzeStructures(records []mce.CERecord, faults []Fault) Structures {
	var s Structures
	s.Socket = newStructure([]string{"0", "1"})
	bankLabels := make([]string, topology.BanksPerRank)
	for i := range bankLabels {
		bankLabels[i] = strconv.Itoa(i)
	}
	s.Bank = newStructure(bankLabels)
	colLabels := make([]string, ColumnBins)
	for i := range colLabels {
		colLabels[i] = strconv.Itoa(i)
	}
	s.Column = newStructure(colLabels)
	s.Rank = newStructure([]string{"0", "1"})
	slotLabels := make([]string, topology.SlotsPerNode)
	for i, sl := range topology.AllSlots() {
		slotLabels[i] = sl.Name()
	}
	s.Slot = newStructure(slotLabels)

	colBin := func(col int) int { return col * ColumnBins / topology.ColsPerRow }

	for _, r := range records {
		s.Socket.Errors[r.Socket]++
		s.Bank.Errors[r.Bank]++
		s.Column.Errors[colBin(r.Col)]++
		s.Rank.Errors[r.Rank]++
		s.Slot.Errors[r.Slot]++
	}
	for _, f := range faults {
		s.Socket.Faults[f.Slot.Socket()]++
		s.Bank.Faults[f.Bank]++
		s.Rank.Faults[f.Rank]++
		s.Slot.Faults[f.Slot]++
		// Column attribution: word-level and column faults have a
		// defined column; bank faults touch many columns and are
		// counted at the column of their first error, matching how
		// field studies bin them.
		col := f.Col
		if col < 0 {
			if cell, _, err := topology.DecodePhysAddr(f.Node, f.Addr); err == nil && f.Addr != 0 {
				col = cell.Col
			} else if len(f.Errors) > 0 {
				col = records[f.Errors[0]].Col
			} else {
				continue
			}
		}
		s.Column.Faults[colBin(col)]++
	}
	s.Socket.finish()
	s.Bank.finish()
	s.Column.finish()
	s.Rank.finish()
	s.Slot.finish()
	return s
}

// BitAddress is the Fig 8 analysis: fault counts per cache-line bit
// position and per physical address, with power-law fits.
type BitAddress struct {
	// PerBit maps line-bit position -> number of faults anchored there.
	PerBit map[int]int
	// PerAddr maps the DIMM-local, page-granular address (the paper's
	// "address location") -> number of faults anchored there, aggregated
	// across the DIMM population. Manufacturing weak spots repeat at the
	// same device-internal location on many parts, producing the
	// collision power law of Fig 8b.
	PerAddr map[topology.PhysAddr]int
	// BitHistogram and AddrHistogram are the count -> frequency
	// transforms plotted in Fig 8.
	BitHistogram  stats.CountHistogram
	AddrHistogram stats.CountHistogram
	// BitFit and AddrFit are power-law fits to the per-location counts.
	BitFit, AddrFit       stats.PowerLawFit
	BitFitErr, AddrFitErr error
}

// AnalyzeBitAddress computes the Fig 8 distributions from word-level
// faults (bit positions are only meaningful for single-bit faults;
// addresses for single-bit and single-word faults).
func AnalyzeBitAddress(faults []Fault) BitAddress {
	return AnalyzeBitAddressWorkers(faults, 1)
}

// AnalyzeBitAddressWorkers is AnalyzeBitAddress at an explicit worker
// count (0 = GOMAXPROCS): the counting pass shards over the faults with
// per-shard maps merged in shard order, and the bit and address
// histogram+fit pipelines run concurrently. The counts reaching each fit
// come from Go map iteration, whose order was never deterministic — the
// fits are order-insensitive up to float rounding — so parallelism adds
// no new nondeterminism.
func AnalyzeBitAddressWorkers(faults []Fault, workers int) BitAddress {
	out := BitAddress{PerBit: map[int]int{}, PerAddr: map[topology.PhysAddr]int{}}
	type shardMaps struct {
		perBit  map[int]int
		perAddr map[topology.PhysAddr]int
	}
	shards := make([]shardMaps, parallel.NumChunks(workers, len(faults)))
	parallel.ForEachChunk(workers, len(faults), func(shard, lo, hi int) {
		m := shardMaps{perBit: map[int]int{}, perAddr: map[topology.PhysAddr]int{}}
		for i := lo; i < hi; i++ {
			f := &faults[i]
			if f.Mode == ModeSingleBit && f.Bit >= 0 {
				m.perBit[f.Bit]++
			}
			if (f.Mode == ModeSingleBit || f.Mode == ModeSingleWord) && f.Addr != 0 {
				page := f.Addr.DIMMLocal() &^ topology.PhysAddr(topology.PageBytes-1)
				m.perAddr[page]++
			}
		}
		shards[shard] = m
	})
	for _, m := range shards {
		for bit, c := range m.perBit {
			out.PerBit[bit] += c
		}
		for page, c := range m.perAddr {
			out.PerAddr[page] += c
		}
	}
	bitCounts := make([]int, 0, len(out.PerBit))
	for _, c := range out.PerBit {
		bitCounts = append(bitCounts, c)
	}
	addrCounts := make([]int, 0, len(out.PerAddr))
	for _, c := range out.PerAddr {
		addrCounts = append(addrCounts, c)
	}
	parallel.Run(workers,
		func() {
			out.BitHistogram = stats.NewCountHistogram(bitCounts)
			out.BitFit, out.BitFitErr = stats.FitPowerLaw(bitCounts, 1)
		},
		func() {
			out.AddrHistogram = stats.NewCountHistogram(addrCounts)
			out.AddrFit, out.AddrFitErr = stats.FitPowerLaw(addrCounts, 1)
		},
	)
	return out
}
