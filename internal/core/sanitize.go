package core

import (
	"sort"

	"repro/internal/mce"
)

// SanitizeReport accounts for what SanitizeRecords changed.
type SanitizeReport struct {
	// In and Out are the record counts before and after sanitizing.
	In, Out int
	// WasUnsorted reports that the input was not time-ordered (the sort
	// repaired it).
	WasUnsorted bool
	// DuplicatesRemoved counts exact-duplicate records collapsed to one.
	DuplicatesRemoved int
}

// Changed reports whether sanitizing altered the input at all.
func (r SanitizeReport) Changed() bool {
	return r.WasUnsorted || r.DuplicatesRemoved > 0
}

// SanitizeRecords prepares externally-ingested CE records for analysis:
// it time-orders them and collapses exact duplicates (every field equal),
// reporting what it changed. The clusterer itself is order-insensitive,
// but the temporal analyses assume time order, and relay-duplicated
// records would inflate error counts.
//
// It is deliberately NOT applied to generator output: identical records
// are legitimate there (a burst hammering one cell within one second),
// and the calibration tests depend on exact counts. Use it on parsed
// external telemetry, where a byte-identical record is overwhelmingly a
// relay artifact.
func SanitizeRecords(records []mce.CERecord) ([]mce.CERecord, SanitizeReport) {
	rep := SanitizeReport{In: len(records)}
	if len(records) == 0 {
		return nil, rep
	}
	for i := 1; i < len(records); i++ {
		if records[i].Time.Before(records[i-1].Time) {
			rep.WasUnsorted = true
			break
		}
	}
	out := make([]mce.CERecord, len(records))
	copy(out, records)
	// Total order (time first, then every locating field) makes exact
	// duplicates adjacent and the result deterministic.
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if !x.Time.Equal(y.Time) {
			return x.Time.Before(y.Time)
		}
		if x.Node != y.Node {
			return x.Node < y.Node
		}
		if x.Addr != y.Addr {
			return x.Addr < y.Addr
		}
		return x.BitPos < y.BitPos
	})
	dst := 1
	for i := 1; i < len(out); i++ {
		if out[i] == out[dst-1] {
			rep.DuplicatesRemoved++
			continue
		}
		out[dst] = out[i]
		dst++
	}
	out = out[:dst]
	rep.Out = len(out)
	return out, rep
}
