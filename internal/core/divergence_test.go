package core

import (
	"math"
	"testing"
)

func TestDivergenceIdenticalDistributions(t *testing.T) {
	sc := StructureCounts{
		Labels: []string{"a", "b", "c"},
		Errors: []int{10, 20, 30},
		Faults: []int{1, 2, 3}, // same shape, different scale
	}
	d := sc.Divergence()
	if d.TotalVariation > 1e-12 {
		t.Errorf("TV = %v for proportional vectors", d.TotalVariation)
	}
	if math.Abs(d.RankCorrelation-1) > 1e-12 {
		t.Errorf("rank correlation = %v, want 1", d.RankCorrelation)
	}
}

func TestDivergenceDisjointDistributions(t *testing.T) {
	sc := StructureCounts{
		Labels: []string{"a", "b"},
		Errors: []int{100, 0},
		Faults: []int{0, 100},
	}
	d := sc.Divergence()
	if math.Abs(d.TotalVariation-1) > 1e-12 {
		t.Errorf("TV = %v for disjoint vectors, want 1", d.TotalVariation)
	}
	if d.RankCorrelation >= 0 {
		t.Errorf("rank correlation = %v, want negative", d.RankCorrelation)
	}
}

func TestDivergenceEmpty(t *testing.T) {
	sc := StructureCounts{Labels: []string{"a"}, Errors: []int{0}, Faults: []int{0}}
	if d := sc.Divergence(); d.TotalVariation != 0 || d.RankCorrelation != 0 {
		t.Errorf("empty divergence = %+v", d)
	}
}

func TestDivergenceOnGeneratedData(t *testing.T) {
	// The generated population embodies the paper's point: error counts
	// diverge sharply from fault counts on the structures dominated by
	// pathological nodes. The socket split (2 cells) must show a much
	// larger error imbalance than fault imbalance whenever a pathological
	// node dominates one socket; at minimum, the divergence fields are
	// well-formed and the per-slot TV is nonzero.
	_, records := generateSmall(t, 41, 500)
	faults := mustCluster(records, DefaultClusterConfig())
	s := AnalyzeStructures(records, faults)
	for name, sc := range map[string]StructureCounts{
		"socket": s.Socket, "rank": s.Rank, "slot": s.Slot, "bank": s.Bank,
	} {
		d := sc.Divergence()
		if d.TotalVariation < 0 || d.TotalVariation > 1 {
			t.Errorf("%s: TV = %v out of [0,1]", name, d.TotalVariation)
		}
		if math.IsNaN(d.RankCorrelation) {
			t.Errorf("%s: NaN rank correlation", name)
		}
	}
	if d := s.Slot.Divergence(); d.TotalVariation == 0 {
		t.Error("slot errors and faults identical; heavy tail missing")
	}
}
