package core

import (
	"sort"
	"time"

	"repro/internal/mce"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Precursors asks the predictive-maintenance question the field studies
// behind the paper care about: are uncorrectable errors preceded by
// correctable-fault activity on the same DIMM? On Astra the answer
// matters because CE-triggered DIMM replacement is the main lever a site
// has against DUEs.
type Precursors struct {
	// DUEs is the number of uncorrectable records examined.
	DUEs int
	// WithPriorFault counts DUEs whose DIMM had a clustered correctable
	// fault first observed before the DUE.
	WithPriorFault int
	// Fraction is WithPriorFault / DUEs.
	Fraction float64
	// BaselineFraction is the chance level: the fraction of all DIMMs
	// carrying ≥1 fault, i.e. what Fraction would be if DUEs struck
	// DIMMs at random.
	BaselineFraction float64
	// Lift is Fraction / BaselineFraction (how much more often than
	// chance a DUE has CE precursors); 0 when the baseline is 0.
	Lift float64
	// MedianLeadDays is the median warning time from first CE-fault
	// observation to the DUE, over the precursor-bearing DUEs.
	MedianLeadDays float64
}

// AnalyzeDUEPrecursors joins the DUE stream against clustered faults.
// dimms is the device population for the chance-level baseline.
func AnalyzeDUEPrecursors(dues []mce.DUERecord, faults []Fault, dimms int) Precursors {
	var p Precursors
	p.DUEs = len(dues)
	type dimmKey struct {
		node topology.NodeID
		slot topology.Slot
	}
	firstFault := map[dimmKey]time.Time{}
	for _, f := range faults {
		k := dimmKey{f.Node, f.Slot}
		if t, ok := firstFault[k]; !ok || f.First.Before(t) {
			firstFault[k] = f.First
		}
	}
	if dimms > 0 {
		p.BaselineFraction = float64(len(firstFault)) / float64(dimms)
	}
	var leads []float64
	for _, d := range dues {
		cell, _, err := topology.DecodePhysAddr(d.Node, d.Addr)
		if err != nil {
			continue
		}
		first, ok := firstFault[dimmKey{d.Node, cell.Slot}]
		if !ok || !first.Before(d.Time) {
			continue
		}
		p.WithPriorFault++
		leads = append(leads, d.Time.Sub(first).Hours()/24)
	}
	if p.DUEs > 0 {
		p.Fraction = float64(p.WithPriorFault) / float64(p.DUEs)
	}
	if p.BaselineFraction > 0 {
		p.Lift = p.Fraction / p.BaselineFraction
	}
	if len(leads) > 0 {
		sort.Float64s(leads)
		p.MedianLeadDays, _ = stats.Quantile(leads, 0.5)
	}
	return p
}
