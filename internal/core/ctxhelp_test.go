package core

import (
	"context"

	"repro/internal/faultmodel"
	"repro/internal/mce"
)

// testCtx is the context the legacy single-value test call sites thread
// through the cancellable pipeline APIs.
var testCtx = context.Background()

// mustCluster and the must-encoders adapt the ctx+error APIs for test
// sites where an error is simply a test bug.
func mustCluster(records []mce.CERecord, cfg ClusterConfig) []Fault {
	faults, err := Cluster(testCtx, records, cfg)
	if err != nil {
		panic(err)
	}
	return faults
}

func mustEncodeCE(enc *mce.Encoder, ev faultmodel.CEEvent, i int) mce.CERecord {
	rec, err := enc.EncodeCE(ev, i)
	if err != nil {
		panic(err)
	}
	return rec
}

func mustEncodeDUE(enc *mce.Encoder, ev faultmodel.DUEEvent) mce.DUERecord {
	rec, err := enc.EncodeDUE(ev)
	if err != nil {
		panic(err)
	}
	return rec
}
