// Package core implements the paper's primary contribution: the
// methodology for analyzing memory failures on a large-scale system.
// It clusters raw correctable-error records into faults, classifies fault
// modes, and runs every distributional, positional, environmental and
// uncorrectable-error analysis in the paper's evaluation (Figs 4-15,
// §3.2-§3.5). The headline methodological point — that analyzing errors
// instead of faults leads to wrong conclusions — is embodied in the paired
// error/fault outputs of every analysis.
//
// The package consumes only what the platform actually exposes: parsed
// syslog records (no ground-truth fault IDs) and sensor data. Validation
// against ground truth lives in the tests and the dataset self-check.
package core

import (
	"context"
	"math/bits"
	"sort"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/topology"
)

// FaultMode is the classification the clusterer can assign from observable
// data. It mirrors faultmodel.Mode except that single-row is absent: the
// platform's CE records carry no usable row information (§3.2), so row
// faults are observationally indistinguishable from bank faults.
type FaultMode int

// Observable fault modes.
const (
	ModeSingleBit FaultMode = iota
	ModeSingleWord
	ModeSingleColumn
	ModeSingleBank
	// ModeSingleRow is only assigned by the WithRowClustering ablation,
	// which pretends the row field were trustworthy; the paper's
	// platform could not produce it.
	ModeSingleRow
	// NumFaultModes is the number of observable modes.
	NumFaultModes
)

// String names the mode as in Fig 4a.
func (m FaultMode) String() string {
	switch m {
	case ModeSingleBit:
		return "single-bit"
	case ModeSingleWord:
		return "single-word"
	case ModeSingleColumn:
		return "single-column"
	case ModeSingleBank:
		return "single-bank"
	case ModeSingleRow:
		return "single-row"
	default:
		return "unknown"
	}
}

// Fault is a cluster of correctable errors attributed to one underlying
// hardware fault.
type Fault struct {
	// Node, Slot, Rank, Bank locate the fault's device structures.
	Node topology.NodeID
	Slot topology.Slot
	Rank int
	Bank int
	// Mode is the observable classification.
	Mode FaultMode
	// Col is the shared column for single-column faults (else -1).
	Col int
	// Addr is the shared word address for single-bit/single-word faults
	// (else 0). Addresses are stable opaque identifiers; their row bits
	// are scrambled by the platform.
	Addr topology.PhysAddr
	// Bit is the shared line-bit position for single-bit faults (else -1).
	Bit int
	// NErrors is the number of CE records attributed to the fault.
	NErrors int
	// First and Last bound the fault's observed activity.
	First, Last time.Time
	// Errors are indices into the input record slice, in input order.
	Errors []int
}

// Region returns the rack region of the fault's node.
func (f Fault) Region() topology.Region { return f.Node.Region() }

// ClusterConfig tunes the clustering thresholds.
type ClusterConfig struct {
	// ColMinWords is the minimum number of distinct word addresses
	// sharing a column before they merge into a single-column fault.
	ColMinWords int
	// BankMinWords is the minimum number of distinct word addresses
	// (not already explained by a column) before the remainder of a bank
	// merges into a single-bank fault. Below it, word clusters stand as
	// independent single-bit/single-word faults — two independent stuck
	// bits in one bank must not masquerade as a bank fault.
	BankMinWords int
	// RowClustering enables the ablation that trusts the (scrambled) row
	// bits as stable identifiers and recovers single-row faults; the
	// paper's analysis could not do this (§3.2).
	RowClustering bool
	// RowMinWords is the single-row analogue of ColMinWords.
	RowMinWords int
	// Parallelism bounds the worker pool Cluster shards the grouping scan
	// and per-bank classification across: 0 uses runtime.GOMAXPROCS(0),
	// 1 restores the serial code path. Banks are independent by
	// construction, so the fault list is bit-identical at every setting.
	Parallelism int
}

// DefaultClusterConfig returns the thresholds used by the reproduction.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{ColMinWords: 2, BankMinWords: 3, RowMinWords: 2}
}

// BankKey addresses one DRAM bank in the system. It is the grouping key
// shared by the batch clusterer and the incremental stream engine
// (internal/stream): both accumulate per-bank state under this key and
// classify it with the same code, so their fault outputs agree by
// construction.
type BankKey struct {
	Node topology.NodeID
	Slot topology.Slot
	Rank int8
	Bank int8
}

// RecordBankKey returns the bank a CE record belongs to.
func RecordBankKey(r *mce.CERecord) BankKey {
	return BankKey{Node: r.Node, Slot: r.Slot, Rank: int8(r.Rank), Bank: int8(r.Bank)}
}

// lineBits is a fixed-size bitset over codeword line-bit positions
// (LineBit values are at most topology.MaxLineBitPosition), replacing the
// map[int]struct{} the grouping scan used to allocate per word group.
type lineBits struct {
	words [(topology.MaxLineBitPosition + 64) / 64]uint64
	n     int
}

func (b *lineBits) set(i int) {
	w, m := i>>6, uint64(1)<<(i&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.n++
	}
}

// union folds another bitset in, keeping the distinct-bit count exact.
func (b *lineBits) union(o *lineBits) {
	n := 0
	for w := range b.words {
		b.words[w] |= o.words[w]
		n += bits.OnesCount64(b.words[w])
	}
	b.n = n
}

// wordGroup accumulates the errors observed on one word address.
type wordGroup struct {
	addr        topology.PhysAddr
	col         int
	rowBits     int
	bits        lineBits
	firstBit    int
	errors      []int
	first, last time.Time
}

// BankState accumulates the word groups of one bank, one CE record at a
// time. It is the unit of incremental clustering: batch Cluster builds one
// per bank during its grouping scan, and the stream engine keeps one per
// bank for the lifetime of the stream, re-deriving faults on demand via
// AppendFaults. Classification is a pure function of the accumulated
// state, so the order queries interleave with Add calls never changes the
// resulting faults.
type BankState struct {
	words map[topology.PhysAddr]*wordGroup
}

// NewBankState returns an empty accumulator.
func NewBankState() *BankState {
	return &BankState{words: map[topology.PhysAddr]*wordGroup{}}
}

// Add folds one CE record into the bank. i is the caller's index for the
// record (batch: position in the input slice; stream: arrival number);
// it is recorded in the eventual Fault.Errors. Records must be added in
// index order for the per-fault error lists to come out in input order.
func (b *BankState) Add(i int, r *mce.CERecord) {
	g, ok := b.words[r.Addr]
	if !ok {
		g = &wordGroup{
			addr:     r.Addr,
			col:      r.Col,
			rowBits:  r.RowRaw,
			firstBit: r.LineBit(),
			errors:   make([]int, 0, 4),
			first:    r.Time,
			last:     r.Time,
		}
		b.words[r.Addr] = g
	}
	g.bits.set(r.LineBit())
	g.errors = append(g.errors, i)
	if r.Time.Before(g.first) {
		g.first = r.Time
	}
	if r.Time.After(g.last) {
		g.last = r.Time
	}
}

// Words returns the number of distinct word addresses seen.
func (b *BankState) Words() int { return len(b.words) }

// Errors returns the number of CE records folded in.
func (b *BankState) Errors() int {
	n := 0
	for _, g := range b.words {
		n += len(g.errors)
	}
	return n
}

// Merge folds a later shard's accumulator into b. Every record index in o
// must follow every index already in b (contiguous shards merged in shard
// order), so b's first-seen anchor fields win and o's errors append after
// b's — exactly the serial Add order.
func (b *BankState) Merge(o *BankState) {
	for addr, og := range o.words {
		g, ok := b.words[addr]
		if !ok {
			b.words[addr] = og
			continue
		}
		g.bits.union(&og.bits)
		g.errors = append(g.errors, og.errors...)
		if og.first.Before(g.first) {
			g.first = og.first
		}
		if og.last.After(g.last) {
			g.last = og.last
		}
	}
}

// AppendFaults classifies the bank's accumulated word groups and appends
// the resulting faults, choosing the smallest fault footprint consistent
// with the group structure — the field-study convention (a bank rarely
// hosts two simultaneous independent faults, but the two-word case is
// deliberately kept separate so that two independent stuck bits never
// masquerade as a bank fault). The accumulator is not consumed: the same
// state can be classified again after further Add calls.
func (b *BankState) AppendFaults(faults []Fault, key BankKey, cfg ClusterConfig) []Fault {
	// Deterministic order: by address.
	groups := make([]*wordGroup, 0, len(b.words))
	for _, g := range b.words {
		groups = append(groups, g)
	}
	sortWordGroups(groups)
	return classifyGroups(faults, key, groups, cfg)
}

// Cluster groups CE records into faults and classifies each fault's mode.
// Records may be in any order; the per-fault Errors indices refer to the
// input slice. The algorithm follows the established field-study
// methodology (Sridharan & Liberty; Levy et al.):
//
//  1. errors sharing a word address form a word cluster; one distinct bit
//     position means single-bit, several mean single-word;
//  2. >= ColMinWords word clusters sharing a column within one bank merge
//     into a single-column fault;
//  3. >= BankMinWords remaining word clusters in one bank merge into a
//     single-bank fault; fewer stand as independent word-level faults.
//
// With cfg.RowClustering (an ablation the real platform could not run,.
// §3.2), step 2.5 merges word clusters sharing row bits into single-row
// faults.
//
// Cancelling ctx aborts the clustering and returns the context's error; a
// panic in any worker is recovered and returned as a *parallel.PanicError.
func Cluster(ctx context.Context, records []mce.CERecord, cfg ClusterConfig) (faults []Fault, err error) {
	defer parallel.Recover(&err)
	workers := parallel.Workers(cfg.Parallelism)
	var grouped bankGroups
	if workers <= 1 || len(records) < 2*minGroupShard {
		grouped, err = groupRecords(ctx, records, 0, len(records))
		if err != nil {
			return nil, err
		}
	} else {
		// Shard the grouping scan over contiguous record ranges and merge
		// shard-by-shard: contiguous ranges mean a bank (or word) first
		// seen in shard k was first seen globally in shard k, so folding
		// shards in order reproduces the serial first-appearance order
		// and per-group error order exactly.
		shards := parallel.NumChunks(workers, len(records))
		parts := make([]bankGroups, shards)
		err = parallel.ForEachChunkCtx(ctx, workers, len(records), func(ctx context.Context, shard, lo, hi int) error {
			part, err := groupRecords(ctx, records, lo, hi)
			if err != nil {
				return err
			}
			parts[shard] = part
			return nil
		})
		if err != nil {
			return nil, err
		}
		grouped = parts[0]
		for _, part := range parts[1:] {
			grouped.merge(part)
		}
	}

	banks, order := grouped.banks, grouped.order
	if workers <= 1 || len(order) < 2 {
		for i, key := range order {
			if err := parallel.Poll(ctx, i); err != nil {
				return nil, err
			}
			faults = banks[key].AppendFaults(faults, key, cfg)
		}
		return faults, nil
	}
	shards := parallel.NumChunks(workers, len(order))
	parts := make([][]Fault, shards)
	err = parallel.ForEachChunkCtx(ctx, workers, len(order), func(ctx context.Context, shard, lo, hi int) error {
		var fs []Fault
		for i, key := range order[lo:hi] {
			if err := parallel.Poll(ctx, i); err != nil {
				return err
			}
			fs = banks[key].AppendFaults(fs, key, cfg)
		}
		parts[shard] = fs
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, fs := range parts {
		total += len(fs)
	}
	faults = make([]Fault, 0, total)
	for _, fs := range parts {
		faults = append(faults, fs...)
	}
	return faults, nil
}

// minGroupShard keeps the grouping scan serial for small inputs where the
// per-shard map setup would cost more than the scan itself.
const minGroupShard = 1 << 14

// bankGroups is the grouping-scan output: per-bank accumulators plus the
// banks' first-appearance order.
type bankGroups struct {
	banks map[BankKey]*BankState
	order []BankKey
}

// groupRecords builds per-bank accumulators from records[lo:hi]. Error
// indices are global (the caller's full slice), so sharded scans can be
// merged. Cancellation is polled every few thousand records.
func groupRecords(ctx context.Context, records []mce.CERecord, lo, hi int) (bankGroups, error) {
	// Pre-size for the common shape: errors concentrate on few banks, so
	// the bank map stays small relative to the record count.
	banks := make(map[BankKey]*BankState, (hi-lo)/256+8)
	var order []BankKey // deterministic output ordering
	for i := lo; i < hi; i++ {
		if err := parallel.Poll(ctx, i-lo); err != nil {
			return bankGroups{}, err
		}
		r := &records[i]
		key := RecordBankKey(r)
		bank, ok := banks[key]
		if !ok {
			bank = NewBankState()
			banks[key] = bank
			order = append(order, key)
		}
		bank.Add(i, r)
	}
	return bankGroups{banks: banks, order: order}, nil
}

// merge folds a later shard's groups into bg. bg must cover records that
// all precede o's, so bg's first-seen metadata (anchor record fields,
// bank order) wins and o's errors append after bg's.
func (bg *bankGroups) merge(o bankGroups) {
	for _, key := range o.order {
		bank, ok := bg.banks[key]
		if !ok {
			bg.banks[key] = o.banks[key]
			bg.order = append(bg.order, key)
			continue
		}
		bank.Merge(o.banks[key])
	}
}

// dominanceFrac is the fraction of a bank's word groups that must share
// one column (or row, under the ablation) for that structure to be carved
// out as its own fault when the bank also has stragglers.
const dominanceFrac = 0.8

func classifyGroups(faults []Fault, key BankKey, groups []*wordGroup, cfg ClusterConfig) []Fault {
	base := Fault{Node: key.Node, Slot: key.Slot, Rank: int(key.Rank), Bank: int(key.Bank), Col: -1, Bit: -1}
	wordFault := func(g *wordGroup) Fault {
		f := base
		f.Addr = g.addr
		if g.bits.n == 1 {
			f.Mode = ModeSingleBit
			f.Bit = g.firstBit
		} else {
			f.Mode = ModeSingleWord
		}
		mergeGroups(&f, []*wordGroup{g})
		return f
	}

	switch len(groups) {
	case 0:
		return faults
	case 1:
		return append(faults, wordFault(groups[0]))
	}

	// Column structure of the bank.
	byCol := map[int][]*wordGroup{}
	domCol, domColN := -1, 0
	for _, g := range groups {
		byCol[g.col] = append(byCol[g.col], g)
		if n := len(byCol[g.col]); n > domColN || (n == domColN && g.col < domCol) {
			domCol, domColN = g.col, n
		}
	}
	if len(byCol) == 1 && len(groups) >= cfg.ColMinWords {
		f := base
		f.Mode = ModeSingleColumn
		f.Col = groups[0].col
		mergeGroups(&f, groups)
		return append(faults, f)
	}

	// Row structure (ablation only: the platform's row bits are opaque).
	if cfg.RowClustering {
		byRow := map[int]int{}
		for _, g := range groups {
			byRow[g.rowBits]++
		}
		if len(byRow) == 1 && len(groups) >= cfg.RowMinWords {
			f := base
			f.Mode = ModeSingleRow
			mergeGroups(&f, groups)
			return append(faults, f)
		}
	}

	// Two scattered words: two independent word-level faults.
	if len(groups) == 2 {
		return append(faults, wordFault(groups[0]), wordFault(groups[1]))
	}

	// A dominant column with a few stragglers: carve out the column
	// fault, classify the remainder recursively.
	if domColN >= cfg.ColMinWords && float64(domColN) >= dominanceFrac*float64(len(groups)) {
		f := base
		f.Mode = ModeSingleColumn
		f.Col = domCol
		mergeGroups(&f, byCol[domCol])
		faults = append(faults, f)
		var rest []*wordGroup
		for _, g := range groups {
			if g.col != domCol {
				rest = append(rest, g)
			}
		}
		return classifyGroups(faults, key, rest, cfg)
	}

	// Many scattered words: one bank fault.
	if len(groups) >= cfg.BankMinWords {
		f := base
		f.Mode = ModeSingleBank
		mergeGroups(&f, groups)
		return append(faults, f)
	}
	for _, g := range groups {
		faults = append(faults, wordFault(g))
	}
	return faults
}

// mergeGroups folds word groups into a fault.
func mergeGroups(f *Fault, groups []*wordGroup) {
	for i, g := range groups {
		if i == 0 {
			f.First, f.Last = g.first, g.last
		} else {
			if g.first.Before(f.First) {
				f.First = g.first
			}
			if g.last.After(f.Last) {
				f.Last = g.last
			}
		}
		f.NErrors += len(g.errors)
		f.Errors = append(f.Errors, g.errors...)
	}
}

func sortWordGroups(groups []*wordGroup) {
	sort.Slice(groups, func(a, b int) bool { return groups[a].addr < groups[b].addr })
}

// TrueModeObservable maps a ground-truth fault mode to the mode a perfect
// observer without row information would assign — the reference against
// which clustering recall is measured. Single-row faults surface as
// single-bank (>= 3 distinct words) or word-level faults.
func TrueModeObservable(m faultmodel.Mode, distinctWords int, cfg ClusterConfig) FaultMode {
	switch m {
	case faultmodel.SingleBit:
		return ModeSingleBit
	case faultmodel.SingleWord:
		return ModeSingleWord
	case faultmodel.SingleColumn:
		if distinctWords >= cfg.ColMinWords {
			return ModeSingleColumn
		}
		return ModeSingleBit
	case faultmodel.SingleRow, faultmodel.SingleBank:
		if distinctWords >= cfg.BankMinWords {
			return ModeSingleBank
		}
		return ModeSingleBit
	default:
		return ModeSingleBit
	}
}
