package core

import (
	"fmt"

	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// SensorSource supplies the telemetry aggregates the environmental
// analyses need. internal/envmodel.Model implements it procedurally; a
// recorded-data implementation could replay the open-data CSV files.
type SensorSource interface {
	// MeanBefore returns the mean sensor value over the n minutes
	// immediately preceding t.
	MeanBefore(node topology.NodeID, s topology.Sensor, t simtime.Minute, n int64) float64
	// MonthlyMean returns the mean sensor value over a calendar month
	// (see simtime.MonthKey).
	MonthlyMean(node topology.NodeID, s topology.Sensor, monthKey int) float64
}

// TempWindow is one panel of Fig 9: CE counts binned by the mean
// temperature of the errored DIMM over the preceding window, with a linear
// fit whose slope answers "do hotter DIMMs throw more errors?".
type TempWindow struct {
	// WindowMinutes is the averaging window (1h / 1d / 1w / 1mo).
	WindowMinutes int64
	// BinLo is the temperature of the first bin edge; bins are 1 °C wide.
	BinLo float64
	// Counts[i] is the CE count whose preceding-window mean temperature
	// fell in [BinLo+i, BinLo+i+1).
	Counts []int
	// Fit is the OLS fit of count against bin-center temperature.
	Fit stats.LinearFit
	// FitErr reports a fit failure.
	FitErr error
}

// Fig9Windows are the paper's four averaging windows.
var Fig9Windows = []int64{
	simtime.MinutesPerHour,
	simtime.MinutesPerDay,
	simtime.MinutesPerWeek,
	simtime.MinutesPerMonth,
}

// AnalyzeTempWindows computes Fig 9 over the CE records within
// [envStart, envEnd): for each record, the mean temperature of the DIMM
// sensor covering the errored slot over the preceding window. Records are
// binned at 1 °C granularity between 20 and 70 °C.
func AnalyzeTempWindows(records []mce.CERecord, src SensorSource, windows []int64) []TempWindow {
	const binLo, binHi = 20.0, 70.0
	out := make([]TempWindow, 0, len(windows))
	for _, w := range windows {
		tw := TempWindow{WindowMinutes: w, BinLo: binLo, Counts: make([]int, int(binHi-binLo))}
		for _, r := range records {
			if !inEnvWindow(r) {
				continue
			}
			sensor := topology.SensorForSlot(r.Slot)
			mean := src.MeanBefore(r.Node, sensor, simtime.MinuteOf(r.Time), w)
			bin := int(mean - binLo)
			if bin < 0 || bin >= len(tw.Counts) {
				continue
			}
			tw.Counts[bin]++
		}
		var xs, ys []float64
		for i, c := range tw.Counts {
			if c == 0 {
				continue
			}
			xs = append(xs, binLo+float64(i)+0.5)
			ys = append(ys, float64(c))
		}
		tw.Fit, tw.FitErr = stats.FitLinear(xs, ys)
		out = append(out, tw)
	}
	return out
}

func inEnvWindow(r mce.CERecord) bool {
	return !r.Time.Before(simtime.EnvStart) && r.Time.Before(simtime.EnvEnd)
}

// monthKeys returns the calendar months fully inside the environmental
// window.
func monthKeys() []int {
	var out []int
	for k := simtime.MonthKey(simtime.EnvStart); k <= simtime.MonthKey(simtime.EnvEnd.AddDate(0, 0, -1)); k++ {
		out = append(out, k)
	}
	return out
}

// sensorDomainErrors counts, for each (node, month), the CEs within the
// sensor's domain: the socket's DIMMs for a CPU sensor, the covered slots
// for a DIMM sensor, the whole node for the power sensor.
func sensorDomainErrors(records []mce.CERecord, sensor topology.Sensor) map[[2]int]int {
	out := map[[2]int]int{}
	for _, r := range records {
		if !inEnvWindow(r) {
			continue
		}
		switch {
		case sensor == topology.SensorDCPower:
			// whole node
		case sensor.IsDIMM():
			if topology.SensorForSlot(r.Slot) != sensor {
				continue
			}
		default:
			if r.Socket != sensor.Socket() {
				continue
			}
		}
		out[[2]int{int(r.Node), simtime.MonthKey(r.Time)}]++
	}
	return out
}

// DecilePanel is one curve of Fig 13: monthly CE rate by temperature
// decile for one sensor.
type DecilePanel struct {
	Sensor topology.Sensor
	Bins   []stats.DecileBin
	// Spread is the first-to-ninth decile temperature difference
	// (paper: ≈7 °C for CPUs, ≈4 °C for DIMMs).
	Spread float64
	// Trend is the linear fit across the decile points; the paper's
	// conclusion is "no discernible trend".
	Trend    stats.LinearFit
	TrendErr error
}

// AnalyzeTempDeciles computes Fig 13: for every (node, month) sample, the
// monthly mean temperature of the sensor (x) against the monthly CE count
// in the sensor's domain (y), summarized in deciles. nodes bounds the node
// range (reduced-scale runs).
func AnalyzeTempDeciles(records []mce.CERecord, src SensorSource, nodes int) []DecilePanel {
	months := monthKeys()
	var out []DecilePanel
	for _, sensor := range topology.TemperatureSensors() {
		domain := sensorDomainErrors(records, sensor)
		keys := make([]float64, 0, nodes*len(months))
		vals := make([]float64, 0, nodes*len(months))
		for n := 0; n < nodes; n++ {
			for _, mk := range months {
				keys = append(keys, src.MonthlyMean(topology.NodeID(n), sensor, mk))
				vals = append(vals, float64(domain[[2]int{n, mk}]))
			}
		}
		panel := DecilePanel{Sensor: sensor}
		bins, err := stats.Deciles(keys, vals)
		if err != nil {
			out = append(out, panel)
			continue
		}
		panel.Bins = bins
		panel.Spread = stats.DecileSpread(bins)
		panel.Trend, panel.TrendErr = stats.TrendVerdict(bins)
		out = append(out, panel)
	}
	return out
}

// UtilizationPanel is one panel of Fig 14: monthly CE rate against monthly
// node power, with samples split into "hot" and "cold" halves by the
// median monthly temperature of one sensor.
type UtilizationPanel struct {
	Sensor topology.Sensor
	// Hot and Cold are decile curves over power for each half.
	Hot, Cold []stats.DecileBin
	// HotTrend and ColdTrend fit CE rate against power in each half; the
	// paper finds no strong utilization effect.
	HotTrend, ColdTrend       stats.LinearFit
	HotTrendErr, ColdTrendErr error
	// HotPowerMean and ColdPowerMean show the power/temperature coupling
	// (hot samples sit to the right, Fig 14).
	HotPowerMean, ColdPowerMean float64
}

// AnalyzeUtilization computes Fig 14 for the six temperature sensors.
func AnalyzeUtilization(records []mce.CERecord, src SensorSource, nodes int) []UtilizationPanel {
	months := monthKeys()
	var out []UtilizationPanel
	for _, sensor := range topology.TemperatureSensors() {
		domain := sensorDomainErrors(records, sensor)
		var temps, powers, errsCounts []float64
		for n := 0; n < nodes; n++ {
			for _, mk := range months {
				temps = append(temps, src.MonthlyMean(topology.NodeID(n), sensor, mk))
				powers = append(powers, src.MonthlyMean(topology.NodeID(n), topology.SensorDCPower, mk))
				errsCounts = append(errsCounts, float64(domain[[2]int{n, mk}]))
			}
		}
		med := stats.Median(temps)
		var hotP, hotE, coldP, coldE []float64
		for i, tv := range temps {
			if tv > med {
				hotP = append(hotP, powers[i])
				hotE = append(hotE, errsCounts[i])
			} else {
				coldP = append(coldP, powers[i])
				coldE = append(coldE, errsCounts[i])
			}
		}
		panel := UtilizationPanel{
			Sensor:        sensor,
			HotPowerMean:  stats.Mean(hotP),
			ColdPowerMean: stats.Mean(coldP),
		}
		if bins, err := stats.Deciles(hotP, hotE); err == nil {
			panel.Hot = bins
			panel.HotTrend, panel.HotTrendErr = stats.TrendVerdict(bins)
		}
		if bins, err := stats.Deciles(coldP, coldE); err == nil {
			panel.Cold = bins
			panel.ColdTrend, panel.ColdTrendErr = stats.TrendVerdict(bins)
		}
		out = append(out, panel)
	}
	return out
}

// TrendStrength expresses how strong a fitted trend is relative to the
// response scale: the predicted change across the observed key range
// divided by the mean response. The paper's "not strongly correlated"
// corresponds to small values (and/or inconsistent signs across panels).
func TrendStrength(fit stats.LinearFit, bins []stats.DecileBin) float64 {
	if len(bins) < 2 {
		return 0
	}
	span := bins[len(bins)-1].MaxKey - bins[0].MaxKey
	mean := 0.0
	for _, b := range bins {
		mean += b.MeanValue
	}
	mean /= float64(len(bins))
	if mean == 0 {
		return 0
	}
	return fit.Slope * span / mean
}

// DescribeTrend renders a human-readable verdict for a panel.
func DescribeTrend(fit stats.LinearFit, bins []stats.DecileBin) string {
	s := TrendStrength(fit, bins)
	switch {
	case s > 0.5:
		return fmt.Sprintf("strong positive trend (%.2fx across range)", s)
	case s < -0.5:
		return fmt.Sprintf("strong negative trend (%.2fx across range)", s)
	default:
		return fmt.Sprintf("no strong trend (%.2fx across range)", s)
	}
}
