package core

import (
	"testing"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// rec builds a CE record at explicit coordinates for hand-crafted cases.
func rec(node topology.NodeID, slot topology.Slot, rank, bank, row, col, bit int, minute int) mce.CERecord {
	cell := topology.CellAddr{Node: node, Slot: slot, Rank: rank, Bank: bank, Row: row, Col: col}
	return mce.CERecord{
		Time:   simtime.StudyStart.Add(time.Duration(minute) * time.Minute),
		Node:   node,
		Socket: slot.Socket(),
		Slot:   slot,
		Rank:   rank,
		Bank:   bank,
		RowRaw: row, // hand-crafted tests use transparent rows
		Col:    col,
		BitPos: topology.LineBitPosition(col, bit),
		Addr:   topology.EncodePhysAddr(cell, 0),
	}
}

func TestClusterSingleBit(t *testing.T) {
	records := []mce.CERecord{
		rec(1, 0, 0, 3, 100, 40, 5, 0),
		rec(1, 0, 0, 3, 100, 40, 5, 10),
		rec(1, 0, 0, 3, 100, 40, 5, 20),
	}
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 1 {
		t.Fatalf("got %d faults, want 1", len(faults))
	}
	f := faults[0]
	if f.Mode != ModeSingleBit || f.NErrors != 3 || f.Bit != topology.LineBitPosition(40, 5) {
		t.Errorf("fault = %+v", f)
	}
	if f.First.After(f.Last) || !f.First.Equal(records[0].Time) {
		t.Errorf("time bounds wrong: %v..%v", f.First, f.Last)
	}
	if len(f.Errors) != 3 {
		t.Errorf("error indices = %v", f.Errors)
	}
}

func TestClusterSingleWord(t *testing.T) {
	records := []mce.CERecord{
		rec(1, 0, 0, 3, 100, 40, 5, 0),
		rec(1, 0, 0, 3, 100, 40, 9, 10), // same word, different bit
	}
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 1 || faults[0].Mode != ModeSingleWord {
		t.Fatalf("faults = %+v", faults)
	}
}

func TestClusterSingleColumn(t *testing.T) {
	records := []mce.CERecord{
		rec(1, 2, 1, 7, 100, 55, 3, 0),
		rec(1, 2, 1, 7, 200, 55, 3, 10), // same column, different row
		rec(1, 2, 1, 7, 300, 55, 3, 20),
	}
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 1 || faults[0].Mode != ModeSingleColumn {
		t.Fatalf("faults = %+v", faults)
	}
	if faults[0].Col != 55 || faults[0].NErrors != 3 {
		t.Errorf("fault = %+v", faults[0])
	}
}

func TestClusterSingleBank(t *testing.T) {
	records := []mce.CERecord{
		rec(1, 2, 1, 7, 100, 10, 3, 0),
		rec(1, 2, 1, 7, 200, 20, 3, 10),
		rec(1, 2, 1, 7, 300, 30, 3, 20), // three words, three columns
	}
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 1 || faults[0].Mode != ModeSingleBank {
		t.Fatalf("faults = %+v", faults)
	}
}

func TestClusterKeepsIndependentFaultsSeparate(t *testing.T) {
	// Two repeat-offender bits in the same bank but different columns:
	// below BankMinWords they must remain two single-bit faults, not
	// merge into a phantom bank fault.
	records := []mce.CERecord{
		rec(1, 2, 1, 7, 100, 10, 3, 0),
		rec(1, 2, 1, 7, 100, 10, 3, 5),
		rec(1, 2, 1, 7, 200, 20, 4, 10),
		rec(1, 2, 1, 7, 200, 20, 4, 15),
	}
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 2 {
		t.Fatalf("got %d faults, want 2: %+v", len(faults), faults)
	}
	for _, f := range faults {
		if f.Mode != ModeSingleBit || f.NErrors != 2 {
			t.Errorf("fault = %+v", f)
		}
	}
}

func TestClusterSeparatesBanksAndNodes(t *testing.T) {
	records := []mce.CERecord{
		rec(1, 2, 1, 7, 100, 10, 3, 0),
		rec(1, 2, 1, 8, 100, 10, 3, 0), // different bank
		rec(2, 2, 1, 7, 100, 10, 3, 0), // different node
		rec(1, 3, 1, 7, 100, 10, 3, 0), // different slot
		rec(1, 2, 0, 7, 100, 10, 3, 0), // different rank
	}
	faults := mustCluster(records, DefaultClusterConfig())
	if len(faults) != 5 {
		t.Fatalf("got %d faults, want 5", len(faults))
	}
}

func TestClusterRowAblation(t *testing.T) {
	// Errors sharing (opaque) row bits across columns: invisible without
	// row clustering (classified single-bank), recovered with it.
	records := []mce.CERecord{
		rec(1, 2, 1, 7, 123, 10, 3, 0),
		rec(1, 2, 1, 7, 123, 20, 3, 10),
		rec(1, 2, 1, 7, 123, 30, 3, 20),
	}
	noRow := mustCluster(records, DefaultClusterConfig())
	if len(noRow) != 1 || noRow[0].Mode != ModeSingleBank {
		t.Fatalf("without row clustering: %+v", noRow)
	}
	cfg := DefaultClusterConfig()
	cfg.RowClustering = true
	withRow := mustCluster(records, cfg)
	if len(withRow) != 1 || withRow[0].Mode != ModeSingleRow {
		t.Fatalf("with row clustering: %+v", withRow)
	}
}

func TestClusterEmptyInput(t *testing.T) {
	if got := mustCluster(nil, DefaultClusterConfig()); len(got) != 0 {
		t.Errorf("Cluster(nil) = %+v", got)
	}
}

func TestClusterDeterministicOrder(t *testing.T) {
	records := []mce.CERecord{
		rec(3, 1, 0, 2, 10, 10, 1, 0),
		rec(1, 2, 1, 7, 100, 10, 3, 1),
		rec(2, 0, 0, 0, 5, 5, 0, 2),
	}
	a := mustCluster(records, DefaultClusterConfig())
	b := mustCluster(records, DefaultClusterConfig())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Mode != b[i].Mode {
			t.Fatal("cluster output order not deterministic")
		}
	}
}

// encodePopulation converts a generated population to OS-visible records.
func encodePopulation(pop *faultmodel.Population) []mce.CERecord {
	enc := mce.NewEncoder(pop.Config.Seed)
	out := make([]mce.CERecord, len(pop.CEs))
	for i, ev := range pop.CEs {
		out[i] = mustEncodeCE(enc, ev, i)
	}
	return out
}

func generateSmall(t testing.TB, seed uint64, nodes int) (*faultmodel.Population, []mce.CERecord) {
	t.Helper()
	cfg := faultmodel.DefaultConfig(seed)
	cfg.Nodes = nodes
	pop, err := faultmodel.Generate(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop, encodePopulation(pop)
}

func TestClusterAgainstGroundTruth(t *testing.T) {
	pop, records := generateSmall(t, 21, 400)
	cfg := DefaultClusterConfig()
	clustered := mustCluster(records, cfg)

	// Every error must be attributed to exactly one fault.
	total := 0
	seen := map[int]bool{}
	for _, f := range clustered {
		total += f.NErrors
		for _, idx := range f.Errors {
			if seen[idx] {
				t.Fatalf("error %d attributed twice", idx)
			}
			seen[idx] = true
		}
	}
	if total != len(records) {
		t.Fatalf("attributed %d of %d errors", total, len(records))
	}

	// Per-bank comparison against ground truth, restricted to banks with
	// exactly one ground-truth fault (unambiguous cases).
	type bank struct {
		node         topology.NodeID
		slot         topology.Slot
		rank, bankNo int
	}
	gtFaults := map[bank][]int{} // bank -> fault IDs
	for _, f := range pop.Faults {
		k := bank{f.Anchor.Node, f.Anchor.Slot, f.Anchor.Rank, f.Anchor.Bank}
		gtFaults[k] = append(gtFaults[k], f.ID)
	}
	// Distinct reported words / bits / cols per ground-truth fault.
	words := map[int]map[topology.PhysAddr]bool{}
	bits := map[int]map[int]bool{}
	cols := map[int]map[int]bool{}
	for i, ev := range pop.CEs {
		id := int(ev.FaultID)
		if words[id] == nil {
			words[id] = map[topology.PhysAddr]bool{}
			bits[id] = map[int]bool{}
			cols[id] = map[int]bool{}
		}
		words[id][records[i].Addr] = true
		bits[id][records[i].LineBit()] = true
		cols[id][records[i].Col] = true
	}
	recovered := map[bank][]Fault{}
	for _, f := range clustered {
		k := bank{f.Node, f.Slot, f.Rank, f.Bank}
		recovered[k] = append(recovered[k], f)
	}

	checked, agree := 0, 0
	for k, ids := range gtFaults {
		if len(ids) != 1 {
			continue // ambiguous bank
		}
		id := ids[0]
		var want FaultMode
		switch {
		case len(words[id]) == 1 && len(bits[id]) == 1:
			want = ModeSingleBit
		case len(words[id]) == 1:
			want = ModeSingleWord
		case len(cols[id]) == 1 && len(words[id]) >= cfg.ColMinWords:
			want = ModeSingleColumn
		case len(words[id]) >= cfg.BankMinWords:
			want = ModeSingleBank
		default:
			continue // small mixed footprint; either outcome defensible
		}
		got := recovered[k]
		checked++
		if len(got) == 1 && got[0].Mode == want {
			agree++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d unambiguous banks; generation too small", checked)
	}
	if frac := float64(agree) / float64(checked); frac < 0.9 {
		t.Errorf("clustering agreement = %.3f (%d/%d), want >= 0.9", frac, agree, checked)
	}
}

func TestRowAblationRecoversRowFaults(t *testing.T) {
	pop, records := generateSmall(t, 22, 400)
	cfg := DefaultClusterConfig()
	cfg.RowClustering = true
	clustered := mustCluster(records, cfg)
	rowFaults := 0
	for _, f := range clustered {
		if f.Mode == ModeSingleRow {
			rowFaults++
		}
	}
	gtRows := 0
	for _, f := range pop.Faults {
		if f.Mode == faultmodel.SingleRow && f.NErrors >= 2 {
			gtRows++
		}
	}
	if gtRows == 0 {
		t.Skip("no multi-error row faults in draw")
	}
	if rowFaults == 0 {
		t.Errorf("row ablation recovered 0 of %d ground-truth row faults", gtRows)
	}
	// Without the ablation, none are visible.
	for _, f := range mustCluster(records, DefaultClusterConfig()) {
		if f.Mode == ModeSingleRow {
			t.Fatal("default config must not produce single-row faults")
		}
	}
}

func TestTrueModeObservable(t *testing.T) {
	cfg := DefaultClusterConfig()
	cases := []struct {
		mode  faultmodel.Mode
		words int
		want  FaultMode
	}{
		{faultmodel.SingleBit, 1, ModeSingleBit},
		{faultmodel.SingleWord, 1, ModeSingleWord},
		{faultmodel.SingleColumn, 5, ModeSingleColumn},
		{faultmodel.SingleColumn, 1, ModeSingleBit},
		{faultmodel.SingleRow, 5, ModeSingleBank},
		{faultmodel.SingleRow, 1, ModeSingleBit},
		{faultmodel.SingleBank, 4, ModeSingleBank},
	}
	for _, c := range cases {
		if got := TrueModeObservable(c.mode, c.words, cfg); got != c.want {
			t.Errorf("TrueModeObservable(%v, %d) = %v, want %v", c.mode, c.words, got, c.want)
		}
	}
}

func BenchmarkCluster(b *testing.B) {
	_, records := generateSmall(b, 23, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCluster(records, DefaultClusterConfig())
	}
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	_, records := generateSmall(t, 33, 400)
	serialCfg := DefaultClusterConfig()
	serialCfg.Parallelism = 1
	parCfg := DefaultClusterConfig()
	parCfg.Parallelism = 8

	serial := mustCluster(records, serialCfg)
	par := mustCluster(records, parCfg)
	if len(serial) != len(par) {
		t.Fatalf("fault counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		a, b := serial[i], par[i]
		if a.Node != b.Node || a.Slot != b.Slot || a.Rank != b.Rank || a.Bank != b.Bank ||
			a.Mode != b.Mode || a.Addr != b.Addr || a.Col != b.Col || a.Bit != b.Bit ||
			!a.First.Equal(b.First) || !a.Last.Equal(b.Last) || a.NErrors != b.NErrors {
			t.Fatalf("fault %d differs:\nserial   %+v\nparallel %+v", i, a, b)
		}
		if len(a.Errors) != len(b.Errors) {
			t.Fatalf("fault %d error counts differ", i)
		}
		for j := range a.Errors {
			if a.Errors[j] != b.Errors[j] {
				t.Fatalf("fault %d error %d differs: %d vs %d", i, j, a.Errors[j], b.Errors[j])
			}
		}
	}
}
