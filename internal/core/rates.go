package core

import (
	"time"

	"repro/internal/simtime"
)

// FaultRates expresses the clustered fault population as per-device rates
// in FIT (failures per 10⁹ device-hours) by mode — the unit Sridharan &
// Liberty and the other field studies the paper builds on report, making
// this reproduction directly comparable to that literature.
type FaultRates struct {
	// PerMode[m] is the FIT/DIMM rate of mode m.
	PerMode [NumFaultModes]float64
	// Total is the overall faulty-DIMM FIT rate.
	Total float64
	// FaultyDIMMs is the number of distinct DIMMs with ≥1 fault.
	FaultyDIMMs int
	// DeviceHours is the exposure used for the denominator.
	DeviceHours float64
	// Degraded reports that no rates could be computed: no faults, or an
	// undefined exposure (non-positive population or window). All rates
	// are defined zeros.
	Degraded bool
}

// AnalyzeFaultRates converts fault counts into FIT/DIMM over the
// observation window for a population of dimms devices.
func AnalyzeFaultRates(faults []Fault, dimms int, window time.Duration) FaultRates {
	var r FaultRates
	if dimms <= 0 || window <= 0 || len(faults) == 0 {
		r.Degraded = true
		return r
	}
	r.DeviceHours = float64(dimms) * window.Hours()
	type dimmKey struct {
		node int
		slot int
	}
	seen := map[dimmKey]bool{}
	var counts [NumFaultModes]int
	total := 0
	for _, f := range faults {
		counts[f.Mode]++
		total++
		k := dimmKey{int(f.Node), int(f.Slot)}
		if !seen[k] {
			seen[k] = true
		}
	}
	r.FaultyDIMMs = len(seen)
	for m := range counts {
		r.PerMode[m] = float64(counts[m]) / r.DeviceHours * 1e9
	}
	r.Total = float64(total) / r.DeviceHours * 1e9
	return r
}

// StudyWindow returns the paper's failure-analysis window duration.
func StudyWindow() time.Duration {
	return simtime.StudyEnd.Sub(simtime.StudyStart)
}
