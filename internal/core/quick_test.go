package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// recSpec is a compact random record description for property tests.
type recSpec struct {
	Node   uint16
	Slot   uint8
	Rank   bool
	Bank   uint8
	Row    uint16
	Col    uint16
	Bit    uint8
	Minute uint32
}

func (rs recSpec) record() mce.CERecord {
	slot := topology.Slot(int(rs.Slot) % topology.SlotsPerNode)
	rank := 0
	if rs.Rank {
		rank = 1
	}
	cell := topology.CellAddr{
		Node: topology.NodeID(int(rs.Node) % topology.Nodes),
		Slot: slot,
		Rank: rank,
		Bank: int(rs.Bank) % topology.BanksPerRank,
		Row:  int(rs.Row) % topology.RowsPerBank,
		Col:  int(rs.Col) % topology.ColsPerRow,
	}
	bit := int(rs.Bit) % topology.CodeBitsPerWord
	return mce.CERecord{
		Time:   simtime.StudyStart.Add(time.Duration(rs.Minute%200000) * time.Minute),
		Node:   cell.Node,
		Socket: slot.Socket(),
		Slot:   slot,
		Rank:   cell.Rank,
		Bank:   cell.Bank,
		RowRaw: cell.Row,
		Col:    cell.Col,
		BitPos: topology.LineBitPosition(cell.Col, bit),
		Addr:   topology.EncodePhysAddr(cell, 0),
	}
}

// Property: for ANY record multiset, clustering attributes every record to
// exactly one fault, and per-fault counts match their index lists.
func TestClusterConservationProperty(t *testing.T) {
	f := func(specs []recSpec) bool {
		records := make([]mce.CERecord, len(specs))
		for i, rs := range specs {
			records[i] = rs.record()
		}
		faults := mustCluster(records, DefaultClusterConfig())
		seen := map[int]bool{}
		for _, fa := range faults {
			if fa.NErrors != len(fa.Errors) {
				return false
			}
			for _, idx := range fa.Errors {
				if idx < 0 || idx >= len(records) || seen[idx] {
					return false
				}
				seen[idx] = true
			}
			// Every attributed record matches the fault's bank coordinates.
			for _, idx := range fa.Errors {
				r := records[idx]
				if r.Node != fa.Node || r.Slot != fa.Slot || r.Rank != fa.Rank || r.Bank != fa.Bank {
					return false
				}
			}
		}
		return len(seen) == len(records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: fault time bounds cover exactly the attributed records.
func TestClusterTimeBoundsProperty(t *testing.T) {
	f := func(specs []recSpec) bool {
		records := make([]mce.CERecord, len(specs))
		for i, rs := range specs {
			records[i] = rs.record()
		}
		for _, fa := range mustCluster(records, DefaultClusterConfig()) {
			for _, idx := range fa.Errors {
				tm := records[idx].Time
				if tm.Before(fa.First) || tm.After(fa.Last) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
