package core

import (
	"testing"
	"time"

	"repro/internal/mce"
	"repro/internal/topology"
)

func spatialRec(addr topology.PhysAddr, col, row, bit int) *mce.CERecord {
	return &mce.CERecord{
		Time:   time.Unix(1000, 0),
		Addr:   addr,
		Col:    col,
		RowRaw: row,
		BitPos: bit,
	}
}

func TestBankSpatial(t *testing.T) {
	b := NewBankState()
	// Word 0x40: bits 3 and 11 (two distinct bits, lanes 3 — 11 mod 8 = 3).
	b.Add(0, spatialRec(0x40, 5, 100, 3))
	b.Add(1, spatialRec(0x40, 5, 100, 11))
	b.Add(2, spatialRec(0x40, 5, 100, 3)) // repeat: no new bit
	// Word 0x80: single bit 4 (lane 4), different column, same row.
	b.Add(3, spatialRec(0x80, 6, 100, 4))
	// Word 0xc0: single bit 8 (lane 0), new row.
	b.Add(4, spatialRec(0xc0, 5, 200, 8))

	sp := b.Spatial()
	want := BankSpatial{
		Words:          3,
		Errors:         5,
		MultiBitWords:  1,
		MaxBitsPerWord: 2,
		DistinctBits:   4, // {3, 11, 4, 8}
		DQLanes:        3, // {3, 4, 0}
		DistinctRows:   2, // {100, 200}
		DistinctCols:   2, // {5, 6}
	}
	if sp != want {
		t.Fatalf("Spatial() = %+v, want %+v", sp, want)
	}
}

func TestBankSpatialEmpty(t *testing.T) {
	if sp := NewBankState().Spatial(); sp != (BankSpatial{}) {
		t.Fatalf("empty Spatial() = %+v", sp)
	}
}

// TestBankSpatialSaturation: distinct row/col counts cap at
// SpatialDistinctCap and stay there; exact fields keep counting.
func TestBankSpatialSaturation(t *testing.T) {
	b := NewBankState()
	n := SpatialDistinctCap * 3
	for i := 0; i < n; i++ {
		b.Add(i, spatialRec(topology.PhysAddr(0x40*uint64(i+1)), i, i, i%16))
	}
	sp := b.Spatial()
	if sp.DistinctRows != SpatialDistinctCap || sp.DistinctCols != SpatialDistinctCap {
		t.Fatalf("saturation: rows=%d cols=%d want %d", sp.DistinctRows, sp.DistinctCols, SpatialDistinctCap)
	}
	if sp.Words != n || sp.Errors != n {
		t.Fatalf("words=%d errors=%d want %d", sp.Words, sp.Errors, n)
	}
	if sp.DistinctBits != 16 || sp.DQLanes != 8 {
		t.Fatalf("bits=%d lanes=%d want 16, 8", sp.DistinctBits, sp.DQLanes)
	}
}
