package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/envmodel"
)

// TestRecordIndexMatchesDirectAnalyses asserts every indexed analysis
// reproduces its free-function counterpart, at both serial and parallel
// index settings. AnalyzePerNode's power-law fit is compared with a float
// tolerance: the indexed variant feeds the fit in ascending node order
// (deterministic) where the free function ranges over a map.
func TestRecordIndexMatchesDirectAnalyses(t *testing.T) {
	const nodes = 400
	_, records := generateSmall(t, 41, nodes)
	faults := mustCluster(records, DefaultClusterConfig())
	env := envmodel.New(41, envmodel.DefaultParams())

	for _, par := range []int{1, 8} {
		ix := NewRecordIndex(records, nodes, par)

		if got, want := ix.BreakdownByMode(faults), BreakdownByMode(records, faults); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: BreakdownByMode diverges", par)
		}
		if got, want := ix.AnalyzeStructures(faults), AnalyzeStructures(records, faults); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: AnalyzeStructures diverges", par)
		}
		if got, want := ix.AnalyzePositional(faults), AnalyzePositional(records, faults); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: AnalyzePositional diverges", par)
		}
		if got, want := ix.AnalyzeTempWindows(env, Fig9Windows), AnalyzeTempWindows(records, env, Fig9Windows); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: AnalyzeTempWindows diverges", par)
		}
		if got, want := ix.AnalyzeTempDeciles(env), AnalyzeTempDeciles(records, env, nodes); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: AnalyzeTempDeciles diverges", par)
		}
		if got, want := ix.AnalyzeUtilization(env), AnalyzeUtilization(records, env, nodes); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: AnalyzeUtilization diverges", par)
		}

		got, want := ix.AnalyzePerNode(faults), AnalyzePerNode(records, faults, nodes)
		if math.Abs(got.PowerLaw.Alpha-want.PowerLaw.Alpha) > 1e-9 {
			t.Errorf("par=%d: PerNode power-law alpha %v vs %v", par, got.PowerLaw.Alpha, want.PowerLaw.Alpha)
		}
		got.PowerLaw = want.PowerLaw
		got.PowerLawErr = want.PowerLawErr
		if !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d: AnalyzePerNode diverges", par)
		}
	}
}

// TestRecordIndexParallelMatchesSerial asserts the index-built aggregates
// and every indexed analysis are identical between a serial and a parallel
// index (the analysis-layer half of the determinism contract).
func TestRecordIndexParallelMatchesSerial(t *testing.T) {
	const nodes = 400
	_, records := generateSmall(t, 43, nodes)
	faults := mustCluster(records, DefaultClusterConfig())
	env := envmodel.New(43, envmodel.DefaultParams())

	serial := NewRecordIndex(records, nodes, 1)
	par := NewRecordIndex(records, nodes, 8)

	type results struct {
		Breakdown   ModeBreakdown
		PerNode     PerNode
		Structures  Structures
		Positional  Positional
		TempWindows []TempWindow
		TempDeciles []DecilePanel
		Utilization []UtilizationPanel
	}
	run := func(ix *RecordIndex) results {
		return results{
			Breakdown:   ix.BreakdownByMode(faults),
			PerNode:     ix.AnalyzePerNode(faults),
			Structures:  ix.AnalyzeStructures(faults),
			Positional:  ix.AnalyzePositional(faults),
			TempWindows: ix.AnalyzeTempWindows(env, Fig9Windows),
			TempDeciles: ix.AnalyzeTempDeciles(env),
			Utilization: ix.AnalyzeUtilization(env),
		}
	}
	if a, b := run(serial), run(par); !reflect.DeepEqual(a, b) {
		t.Error("indexed analyses differ between Parallelism=1 and Parallelism=8")
	}
}
