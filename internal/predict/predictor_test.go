package predict

import "testing"

func TestRuleLadderPrefixSemantics(t *testing.T) {
	r := DefaultRuleLadder()
	n := float64(len(r.Rungs))

	// Fresh bank: one CE, nothing else.
	f := Features{CEs: 1}
	if got := r.Score(&f); got != 0 {
		t.Fatalf("1 CE: score %v want 0", got)
	}

	// Two CEs climb exactly rung 1.
	f = Features{CEs: 2}
	if got := r.Score(&f); got != 1/n {
		t.Fatalf("2 CEs: score %v want %v", got, 1/n)
	}

	// A heavy persistent single-cell fault climbs the volume spine.
	f = Features{CEs: 20000, SpanHours: 500, ActiveDays: 20, WindowCEs: 50}
	if got := r.Score(&f); got != 1 {
		t.Fatalf("heavy fault: score %v want 1", got)
	}

	// Prefix semantics: a multi-bit word at low volume accelerates rung
	// 3 but cannot skip rung 2 (needs 16 CEs first).
	f = Features{CEs: 4, MultiBitWords: 1}
	if got := r.Score(&f); got != 1/n {
		t.Fatalf("multibit at 4 CEs: score %v want %v", got, 1/n)
	}
	f = Features{CEs: 16, MultiBitWords: 1}
	if got := r.Score(&f); got != 3/n {
		t.Fatalf("multibit at 16 CEs: score %v want %v (rungs 1-3)", got, 3/n)
	}

	// A 256-CE burst confined to one hour stalls at the persistence rung.
	f = Features{CEs: 300, SpanHours: 1}
	if got := r.Score(&f); got != 4/n {
		t.Fatalf("short burst: score %v want %v", got, 4/n)
	}
}

func TestRuleLadderMonotoneInVolume(t *testing.T) {
	r := DefaultRuleLadder()
	prev := -1.0
	for _, ces := range []float64{0, 1, 2, 16, 64, 128, 256, 1024, 4096, 16384, 91000} {
		f := Features{CEs: ces, SpanHours: 1000, ActiveDays: 10}
		s := r.Score(&f)
		if s < prev {
			t.Fatalf("score not monotone in CE volume: %v -> %v at ces=%v", prev, s, ces)
		}
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of [0,1]", s)
		}
		prev = s
	}
}

func TestRuleLadderEmpty(t *testing.T) {
	r := &RuleLadder{}
	f := Features{CEs: 1e6}
	if got := r.Score(&f); got != 0 {
		t.Fatalf("empty ladder score %v", got)
	}
}
