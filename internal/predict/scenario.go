package predict

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/topology"
)

// Scenario bundles a generated-fleet configuration with the matching
// evaluation settings — the unit astrapredict trains and evaluates on,
// and the fixture the pinned regression test locks down.
type Scenario struct {
	Dataset dataset.Config
	Eval    EvalConfig
}

// DefaultScenario is the stock prediction benchmark: a 64-node fleet
// where escalation DUEs (the CE-precursor population predictive
// maintenance exists for) dominate the background rate. Relative to
// the paper calibration, EscalationPerKErrors is raised so the 64-node
// slice yields a statistically usable DUE population (the full-scale
// rate would give ~2 events), and the unpredictable background rate is
// dropped to the floor — the same move the prediction field studies
// make when they evaluate on fault-injected traces. The horizon is
// generous (90 days) because the generator spreads escalations across
// the fault's remaining lifetime rather than clustering them near the
// precursor burst.
func DefaultScenario(seed uint64) Scenario {
	dc := dataset.DefaultConfig(seed)
	dc.Nodes = 96
	fc := &dc.Fault
	fc.Nodes = dc.Nodes
	fc.EscalationPerKErrors = 1.0
	fc.EscalationCap = 0.9
	fc.DUEsPerDIMMYear = 0.0005
	return Scenario{
		Dataset: dc,
		Eval: EvalConfig{
			Horizon:    180 * 24 * time.Hour,
			Tracker:    DefaultTrackerConfig(),
			TotalDIMMs: dc.Nodes * topology.SlotsPerNode,
		},
	}
}
