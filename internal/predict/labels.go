package predict

import (
	"sort"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/topology"
)

// DIMMKey identifies one DIMM — the granularity predictions are
// evaluated at, matching the field studies (operators replace DIMMs,
// not banks).
type DIMMKey struct {
	Node topology.NodeID
	Slot topology.Slot
}

// DUE is one ground-truth uncorrectable event, decoded to the DIMM it
// struck.
type DUE struct {
	DIMM  DIMMKey
	Bank  int8
	Rank  int8
	Time  time.Time
	Cause faultmodel.DUECause
}

// Labels extracts the ground-truth DUE stream from a generated
// population, sorted by time (ties broken by node then address, the
// dataset convention). Unlike the field studies, these labels are
// perfect: the fault model knows exactly which DIMM every DUE struck
// and when.
func Labels(pop *faultmodel.Population) []DUE {
	out := make([]DUE, 0, len(pop.DUEs))
	for i := range pop.DUEs {
		ev := &pop.DUEs[i]
		cell, _, err := topology.DecodePhysAddr(ev.Node, ev.Addr)
		if err != nil {
			continue // undecodable address: outside the DIMM map
		}
		out = append(out, DUE{
			DIMM:  DIMMKey{Node: ev.Node, Slot: cell.Slot},
			Bank:  int8(cell.Bank),
			Rank:  int8(cell.Rank),
			Time:  ev.Minute.Time(),
			Cause: ev.Cause,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].DIMM.Node != out[j].DIMM.Node {
			return out[i].DIMM.Node < out[j].DIMM.Node
		}
		return out[i].DIMM.Slot < out[j].DIMM.Slot
	})
	return out
}
