package predict

import (
	"context"
	"testing"

	"repro/internal/dataset"
)

// scenarioSeed pins the regression fleet. Seed 8 includes pathological
// nodes, giving a DUE population (~30) large enough that the
// precision/recall bar is met with margin rather than at equality.
const scenarioSeed = 8

func buildScenario(t *testing.T) (Scenario, *dataset.Dataset, []DUE) {
	t.Helper()
	sc := DefaultScenario(scenarioSeed)
	ds, err := dataset.Build(context.Background(), sc.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	return sc, ds, Labels(ds.Pop)
}

// TestRuleLadderMeetsBar is the pinned acceptance regression: on the
// default scenario the rule ladder must reach recall ≥ 0.5 at
// precision ≥ 0.8 somewhere on its sweep, with positive lead times.
// The run is fully deterministic (seeded generation, deterministic
// features and ladder), so any failure is a real behavior change in
// the pipeline, not noise.
func TestRuleLadderMeetsBar(t *testing.T) {
	sc, ds, dues := buildScenario(t)
	if len(dues) < 10 {
		t.Fatalf("scenario yields only %d DUEs; fixture degenerate", len(dues))
	}
	ev, err := Evaluate(ds.CERecords, dues, DefaultRuleLadder(), sc.Eval)
	if err != nil {
		t.Fatal(err)
	}
	pt := ev.BestAt(0.8)
	if pt == nil {
		best := ev.Best()
		t.Fatalf("no sweep point with precision >= 0.8 (best: %+v)", best)
	}
	if pt.Recall < 0.5 {
		t.Fatalf("recall %.3f < 0.5 at precision %.3f (threshold %.2f, tp=%d fp=%d fn=%d)",
			pt.Recall, pt.Precision, pt.Threshold, pt.TP, pt.FP, pt.FN)
	}
	if pt.LeadP50 <= 0 || pt.LeadMean <= 0 {
		t.Fatalf("non-positive lead times: p50=%v mean=%v", pt.LeadP50, pt.LeadMean)
	}
	t.Logf("rule ladder: threshold=%.2f precision=%.3f recall=%.3f f1=%.3f leadP50=%v leadP90=%v (tp=%d fp=%d fn=%d of %d DUE DIMMs)",
		pt.Threshold, pt.Precision, pt.Recall, pt.F1, pt.LeadP50, pt.LeadP90, pt.TP, pt.FP, pt.FN, ev.DIMMsDUE)
}

// TestLogRegTrainsOnScenario: the trained model must be competitive
// with the hand-built ladder on its own training fleet (a smoke bound,
// not a leaderboard — training and eval share the fleet here).
func TestLogRegTrainsOnScenario(t *testing.T) {
	sc, ds, dues := buildScenario(t)
	samples := BuildSamples(ds.CERecords, dues, SampleConfig{
		Horizon: sc.Eval.Horizon,
		Tracker: sc.Eval.Tracker,
	})
	m, err := TrainLogReg(samples, DefaultTrainConfig(scenarioSeed))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(ds.CERecords, dues, m, sc.Eval)
	if err != nil {
		t.Fatal(err)
	}
	best := ev.Best()
	if best == nil || best.F1 < 0.5 {
		t.Fatalf("logreg best F1 %+v below 0.5 on training fleet", best)
	}
	t.Logf("logreg: threshold=%.2f precision=%.3f recall=%.3f f1=%.3f",
		best.Threshold, best.Precision, best.Recall, best.F1)
}

// TestPayoffSimulator: predict-then-retire must avoid a nontrivial
// share of DUEs on the scenario, and the reactive arm's accounting
// must be internally consistent.
func TestPayoffSimulator(t *testing.T) {
	_, ds, _ := buildScenario(t)
	pay, err := SimulatePayoff(ds.CERecords, ds.Pop, DefaultRuleLadder(), PayoffConfig{
		Threshold: 0.625, // rung 5: the precision/recall sweet spot
		Seed:      scenarioSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred, reac := pay.Predictive, pay.Reactive
	if pred.DUEsTotal == 0 || pred.DUEsTotal != reac.DUEsTotal {
		t.Fatalf("due totals: pred=%d reac=%d", pred.DUEsTotal, reac.DUEsTotal)
	}
	if pred.DUEsAvoided <= 0 {
		t.Fatalf("predictive arm avoided %d DUEs", pred.DUEsAvoided)
	}
	if pred.DUEsAvoided < reac.DUEsAvoided {
		t.Fatalf("predictive arm (%d avoided) should beat reactive page retirement (%d) on escalation-dominated DUEs",
			pred.DUEsAvoided, reac.DUEsAvoided)
	}
	if pred.UnitsRetired <= 0 || pred.CapacityBytes != int64(pred.UnitsRetired)*BankBytes {
		t.Fatalf("predictive capacity accounting: units=%d bytes=%d", pred.UnitsRetired, pred.CapacityBytes)
	}
	if pred.ECCConfirmed != pred.DUEsAvoided {
		t.Fatalf("ECC confirmation: %d of %d avoided DUEs confirmed uncorrectable",
			pred.ECCConfirmed, pred.DUEsAvoided)
	}
	t.Logf("payoff: predictive avoided %d/%d (retired %d banks, %.1f MiB); reactive avoided %d (%d pages, %.1f MiB, %d CEs suppressed)",
		pred.DUEsAvoided, pred.DUEsTotal, pred.UnitsRetired, float64(pred.CapacityBytes)/(1<<20),
		reac.DUEsAvoided, reac.UnitsRetired, float64(reac.CapacityBytes)/(1<<20), reac.CEsSuppressed)
}

// TestSampleBuilder: the sample set must contain both classes and
// correct arity on the scenario fleet.
func TestSampleBuilder(t *testing.T) {
	sc, ds, dues := buildScenario(t)
	samples := BuildSamples(ds.CERecords, dues, SampleConfig{Horizon: sc.Eval.Horizon})
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	pos := 0
	for _, s := range samples {
		if len(s.X) != NumFeatures {
			t.Fatalf("sample arity %d", len(s.X))
		}
		if s.Label {
			pos++
		}
	}
	if pos == 0 || pos == len(samples) {
		t.Fatalf("degenerate labels: %d/%d positive", pos, len(samples))
	}
}
