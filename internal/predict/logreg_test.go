package predict

import (
	"context"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/simrand"
)

// separableSamples builds a linearly separable two-cluster problem in
// the real feature space (heavy banks positive, light banks negative).
func separableSamples(n int) []Sample {
	rng := simrand.NewStream(5).Derive("logreg-test")
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		pos := i%3 == 0
		var f Features
		if pos {
			f = Features{CEs: 2000 + rng.Float64()*5000, SpanHours: 1000, ActiveDays: 50, WindowCEs: 40 + rng.Float64()*100}
		} else {
			f = Features{CEs: 1 + rng.Float64()*10, SpanHours: rng.Float64() * 5, ActiveDays: 1, WindowCEs: rng.Float64() * 3}
		}
		out = append(out, Sample{X: f.Vector(nil), Label: pos})
	}
	return out
}

func TestTrainLogRegSeparable(t *testing.T) {
	samples := separableSamples(300)
	m, err := TrainLogReg(samples, DefaultTrainConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// The trained model must separate the clusters it was fit on.
	correct := 0
	for _, s := range samples {
		z := m.B
		for j, v := range s.X {
			z += m.W[j] * (v - m.Mean[j]) / m.Std[j]
		}
		p := sigmoid(z)
		if (p >= 0.5) == s.Label {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(samples)); frac < 0.99 {
		t.Fatalf("separable training accuracy %.3f", frac)
	}
	if m.FinalLoss <= 0 || m.FinalLoss > 0.2 {
		t.Fatalf("final loss %v", m.FinalLoss)
	}
}

func TestTrainLogRegDeterministic(t *testing.T) {
	a, err := TrainLogReg(separableSamples(200), DefaultTrainConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainLogReg(separableSamples(200), DefaultTrainConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical training runs produced different models")
	}
}

func TestTrainLogRegRejectsDegenerate(t *testing.T) {
	if _, err := TrainLogReg(nil, DefaultTrainConfig(1)); err == nil {
		t.Fatal("empty training set accepted")
	}
	all := separableSamples(50)
	onlyPos := all[:0:0]
	for _, s := range all {
		if s.Label {
			onlyPos = append(onlyPos, s)
		}
	}
	if _, err := TrainLogReg(onlyPos, DefaultTrainConfig(1)); err == nil {
		t.Fatal("single-class training set accepted")
	}
	bad := []Sample{{X: []float64{1, 2}, Label: true}, {X: []float64{1}, Label: false}}
	if _, err := TrainLogReg(bad, DefaultTrainConfig(1)); err == nil {
		t.Fatal("ragged arity accepted")
	}
}

func TestModelSaveLoadRoundtrip(t *testing.T) {
	m, err := TrainLogReg(separableSamples(120), DefaultTrainConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveModel(context.Background(), atomicio.OS, dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(atomicio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", m, got)
	}
	f := Features{CEs: 5000, SpanHours: 2000, ActiveDays: 30, WindowCEs: 80}
	if a, b := m.Score(&f), got.Score(&f); a != b {
		t.Fatalf("scores diverge after roundtrip: %v vs %v", a, b)
	}
}

func TestLoadModelDetectsCorruption(t *testing.T) {
	m, err := TrainLogReg(separableSamples(120), DefaultTrainConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveModel(context.Background(), atomicio.OS, dir, m); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the model artifact; the manifest digest must catch it.
	path := dir + "/" + ModelFileName
	data, err := atomicio.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "\"bias\"", "\"bIas\"", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(atomicio.OS, dir); err == nil {
		t.Fatal("tampered model loaded cleanly")
	}
}
