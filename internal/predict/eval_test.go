package predict

import (
	"testing"
	"time"

	"repro/internal/mce"
	"repro/internal/topology"
)

// ceThreshold alarms purely on cumulative CE count, making alarm times
// exactly predictable for the classification tests.
type ceThreshold struct{ n float64 }

func (p *ceThreshold) Name() string { return "ce-threshold" }
func (p *ceThreshold) Score(f *Features) float64 {
	if f.CEs >= p.n {
		return 1
	}
	return 0
}

func synthRecords(node topology.NodeID, slot topology.Slot, start time.Time, n int, gap time.Duration) []mce.CERecord {
	out := make([]mce.CERecord, n)
	for i := range out {
		out[i] = mce.CERecord{
			Time: start.Add(time.Duration(i) * gap),
			Node: node,
			Slot: slot,
			Addr: topology.PhysAddr(0x40),
		}
	}
	return out
}

func mergeByTime(streams ...[]mce.CERecord) []mce.CERecord {
	var all []mce.CERecord
	for _, s := range streams {
		all = append(all, s...)
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].Time.Before(all[j-1].Time); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}

func TestEvaluateClassification(t *testing.T) {
	base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	horizon := 10 * 24 * time.Hour

	// DIMM A: 20 CEs, alarm at the 10th (day ~4.5), DUE on day 7 → TP.
	a := synthRecords(1, 0, base, 20, 12*time.Hour)
	// DIMM B: 20 CEs, no DUE → FP.
	b := synthRecords(2, 0, base, 20, 12*time.Hour)
	// DIMM C: 5 CEs (never alarms), DUE on day 8 → FN.
	c := synthRecords(3, 0, base, 5, 12*time.Hour)
	// DIMM D: 20 CEs, DUE 30 days after the alarm → outside horizon, FP.
	d := synthRecords(4, 0, base, 20, 12*time.Hour)
	// DIMM E: alarm lands after its DUE (day 1) → FN and FP.
	e := synthRecords(5, 0, base, 20, 12*time.Hour)

	records := mergeByTime(a, b, c, d, e)
	dues := []DUE{
		{DIMM: DIMMKey{Node: 1, Slot: 0}, Time: base.Add(7 * 24 * time.Hour)},
		{DIMM: DIMMKey{Node: 3, Slot: 0}, Time: base.Add(8 * 24 * time.Hour)},
		{DIMM: DIMMKey{Node: 4, Slot: 0}, Time: base.Add(40 * 24 * time.Hour)},
		{DIMM: DIMMKey{Node: 5, Slot: 0}, Time: base.Add(24 * time.Hour)},
	}

	ev, err := Evaluate(records, dues, &ceThreshold{n: 10}, EvalConfig{
		Horizon:    horizon,
		Thresholds: []float64{0.5},
		TotalDIMMs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := ev.Points[0]
	if pt.TP != 1 || pt.FP != 3 || pt.FN != 2 {
		t.Fatalf("classification: tp=%d fp=%d fn=%d want 1/3/2", pt.TP, pt.FP, pt.FN)
	}
	if pt.TN != 100-1-3-2 {
		t.Fatalf("TN = %d", pt.TN)
	}
	if pt.Precision != 0.25 {
		t.Fatalf("precision = %v", pt.Precision)
	}
	if want := 1.0 / 3; pt.Recall != want {
		t.Fatalf("recall = %v want %v", pt.Recall, want)
	}
	// Lead: alarm at the 10th CE of DIMM A = base+4.5d; DUE at day 7.
	if want := 2*24*time.Hour + 12*time.Hour; pt.LeadP50 != want {
		t.Fatalf("lead = %v want %v", pt.LeadP50, want)
	}
	if ev.DIMMsDUE != 4 || ev.Banks != 5 {
		t.Fatalf("DIMMsDUE=%d Banks=%d", ev.DIMMsDUE, ev.Banks)
	}
}

func TestEvaluateRejectsUnsorted(t *testing.T) {
	base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	records := []mce.CERecord{
		{Time: base.Add(time.Hour), Node: 1},
		{Time: base, Node: 1},
	}
	if _, err := Evaluate(records, nil, &ceThreshold{n: 1}, EvalConfig{}); err == nil {
		t.Fatal("unsorted records accepted")
	}
	if _, err := Evaluate(nil, nil, nil, EvalConfig{}); err == nil {
		t.Fatal("nil predictor accepted")
	}
}

func TestEvaluationBestAt(t *testing.T) {
	ev := &Evaluation{Points: []SweepPoint{
		{Threshold: 0.2, Precision: 0.5, Recall: 0.9, F1: 0.64},
		{Threshold: 0.5, Precision: 0.85, Recall: 0.6, F1: 0.70},
		{Threshold: 0.8, Precision: 1.0, Recall: 0.3, F1: 0.46},
	}}
	if pt := ev.BestAt(0.8); pt == nil || pt.Threshold != 0.5 {
		t.Fatalf("BestAt(0.8) = %+v", pt)
	}
	if pt := ev.Best(); pt == nil || pt.Threshold != 0.5 {
		t.Fatalf("Best() = %+v", pt)
	}
	if pt := ev.BestAt(1.1); pt != nil {
		t.Fatalf("BestAt(1.1) = %+v", pt)
	}
}
