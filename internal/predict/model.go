package predict

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/atomicio"
)

// ModelFileName is the model artifact's name inside a model directory.
const ModelFileName = "model.json"

// SaveModel persists a trained model into dir as a fingerprinted
// dataset directory: the model JSON is written atomically and a
// MANIFEST.json records its SHA-256 plus the training fingerprint
// (seed and sample counts), so a truncated or hand-edited model is
// detected at load time rather than silently scoring garbage.
func SaveModel(ctx context.Context, fsys atomicio.FS, dir string, m *LogRegModel) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if fsys == nil {
		fsys = atomicio.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("predict: save model: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("predict: save model: %w", err)
	}
	data = append(data, '\n')
	info, err := atomicio.WriteFile(ctx, fsys, filepath.Join(dir, ModelFileName), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return fmt.Errorf("predict: save model: %w", err)
	}
	man := atomicio.NewManifest(m.Seed, map[string]string{
		"kind":      "predict-logreg",
		"features":  fmt.Sprint(len(m.Names)),
		"samples":   fmt.Sprint(m.Samples),
		"positives": fmt.Sprint(m.Positives),
		"iters":     fmt.Sprint(m.Iters),
	})
	man.SetFile(ModelFileName, info, int64(m.Samples))
	if err := man.Save(ctx, fsys, dir); err != nil {
		return fmt.Errorf("predict: save model manifest: %w", err)
	}
	return nil
}

// LoadModel reads a model directory written by SaveModel, verifying the
// artifact against its manifest digest before trusting a single byte.
func LoadModel(fsys atomicio.FS, dir string) (*LogRegModel, error) {
	if fsys == nil {
		fsys = atomicio.OS
	}
	man, err := atomicio.LoadManifest(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("predict: load model manifest: %w", err)
	}
	if err := man.VerifyFile(fsys, dir, ModelFileName); err != nil {
		return nil, fmt.Errorf("predict: load model: %w", err)
	}
	data, err := fsys.ReadFile(filepath.Join(dir, ModelFileName))
	if err != nil {
		return nil, fmt.Errorf("predict: load model: %w", err)
	}
	var m LogRegModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("predict: load model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
