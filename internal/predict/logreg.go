package predict

import (
	"fmt"
	"math"
)

// Sample is one labeled training example: a feature vector (in
// Features.Vector order) and whether a DUE materialized within the
// training horizon after the moment the vector was snapshot.
type Sample struct {
	X     []float64
	Label bool
}

// TrainConfig parameterizes the logistic-regression trainer. Training
// is full-batch gradient descent with a fixed iteration count and no
// shuffling, so a given (samples, config) pair always produces the
// same model bit-for-bit — the seed is recorded in the model manifest
// to tie it back to the generating fleet, not to drive randomness.
type TrainConfig struct {
	Iters     int
	LearnRate float64
	L2        float64
	Seed      uint64
}

// DefaultTrainConfig returns the stock trainer settings.
func DefaultTrainConfig(seed uint64) TrainConfig {
	return TrainConfig{Iters: 400, LearnRate: 0.5, L2: 1e-4, Seed: seed}
}

// LogRegModel is a trained logistic-regression predictor over the
// standardized feature vector. All parameters are exported so the
// model serializes as plain JSON (see model.go).
type LogRegModel struct {
	// Names are the feature names the model was trained on; Score
	// refuses vectors of a different arity.
	Names []string `json:"names"`
	// Mean and Std are the z-score standardization parameters fit on
	// the training set (Std entries are never zero; constant features
	// get Std 1 so they contribute nothing).
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	// W and B are the weights and bias in standardized space.
	W []float64 `json:"weights"`
	B float64   `json:"bias"`
	// Training provenance.
	Iters     int     `json:"iters"`
	LearnRate float64 `json:"learn_rate"`
	L2        float64 `json:"l2"`
	Seed      uint64  `json:"seed"`
	Samples   int     `json:"samples"`
	Positives int     `json:"positives"`
	// FinalLoss is the regularized mean log-loss after the last
	// iteration — a training-sanity value, not an evaluation metric.
	FinalLoss float64 `json:"final_loss"`
}

// Name implements Predictor.
func (m *LogRegModel) Name() string { return "logreg" }

func sigmoid(z float64) float64 {
	// Clamp to keep exp finite under hostile weights.
	if z > 40 {
		return 1
	}
	if z < -40 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// Score implements Predictor: sigmoid over the standardized vector.
func (m *LogRegModel) Score(f *Features) float64 {
	var buf [NumFeatures]float64
	x := f.Vector(buf[:0])
	if len(x) != len(m.W) || len(x) != len(m.Mean) {
		return 0
	}
	z := m.B
	for i, v := range x {
		z += m.W[i] * (v - m.Mean[i]) / m.Std[i]
	}
	return sigmoid(z)
}

// Validate checks structural invariants after deserialization.
func (m *LogRegModel) Validate() error {
	n := len(m.Names)
	if n == 0 || len(m.Mean) != n || len(m.Std) != n || len(m.W) != n {
		return fmt.Errorf("predict: model arity mismatch: names=%d mean=%d std=%d w=%d",
			n, len(m.Mean), len(m.Std), len(m.W))
	}
	for i, s := range m.Std {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("predict: model std[%d]=%v invalid", i, s)
		}
	}
	for i, w := range m.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("predict: model weight[%d]=%v invalid", i, w)
		}
	}
	if math.IsNaN(m.B) || math.IsInf(m.B, 0) {
		return fmt.Errorf("predict: model bias %v invalid", m.B)
	}
	return nil
}

// TrainLogReg fits a logistic regression to the samples with
// deterministic full-batch gradient descent. Samples must share one
// arity (Features.Vector order); at least one positive and one
// negative example are required.
func TrainLogReg(samples []Sample, cfg TrainConfig) (*LogRegModel, error) {
	if cfg.Iters <= 0 || cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("predict: train config iters=%d lr=%v invalid", cfg.Iters, cfg.LearnRate)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: no training samples")
	}
	n := len(samples[0].X)
	pos := 0
	for i := range samples {
		if len(samples[i].X) != n {
			return nil, fmt.Errorf("predict: sample %d arity %d != %d", i, len(samples[i].X), n)
		}
		if samples[i].Label {
			pos++
		}
	}
	if pos == 0 || pos == len(samples) {
		return nil, fmt.Errorf("predict: training needs both classes (%d/%d positive)", pos, len(samples))
	}

	m := &LogRegModel{
		Names:     append([]string(nil), FeatureNames...),
		Mean:      make([]float64, n),
		Std:       make([]float64, n),
		W:         make([]float64, n),
		Iters:     cfg.Iters,
		LearnRate: cfg.LearnRate,
		L2:        cfg.L2,
		Seed:      cfg.Seed,
		Samples:   len(samples),
		Positives: pos,
	}
	if n != NumFeatures {
		// Callers may train on a custom vector; keep names honest.
		m.Names = make([]string, n)
		for i := range m.Names {
			m.Names[i] = fmt.Sprintf("x%d", i)
		}
	}

	// Standardization parameters from the training set.
	inv := 1 / float64(len(samples))
	for _, s := range samples {
		for j, v := range s.X {
			m.Mean[j] += v * inv
		}
	}
	for _, s := range samples {
		for j, v := range s.X {
			d := v - m.Mean[j]
			m.Std[j] += d * d * inv
		}
	}
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j])
		if m.Std[j] < 1e-12 {
			m.Std[j] = 1 // constant feature: contributes nothing
		}
	}

	// Standardize once up front.
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		row := make([]float64, n)
		for j, v := range s.X {
			row[j] = (v - m.Mean[j]) / m.Std[j]
		}
		xs[i] = row
		if s.Label {
			ys[i] = 1
		}
	}

	// Class weighting: DUEs are rare, so upweight positives to balance
	// the gradient (w+ = neg/pos). Deterministic, no resampling.
	wPos := float64(len(samples)-pos) / float64(pos)

	grad := make([]float64, n)
	for it := 0; it < cfg.Iters; it++ {
		for j := range grad {
			grad[j] = 0
		}
		gradB := 0.0
		loss := 0.0
		totalW := 0.0
		for i, row := range xs {
			z := m.B
			for j, v := range row {
				z += m.W[j] * v
			}
			p := sigmoid(z)
			sw := 1.0
			if ys[i] == 1 {
				sw = wPos
			}
			totalW += sw
			err := (p - ys[i]) * sw
			for j, v := range row {
				grad[j] += err * v
			}
			gradB += err
			// Log-loss with the same clamp as sigmoid.
			pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
			if ys[i] == 1 {
				loss -= sw * math.Log(pc)
			} else {
				loss -= sw * math.Log(1-pc)
			}
		}
		for j := range m.W {
			m.W[j] -= cfg.LearnRate * (grad[j]/totalW + cfg.L2*m.W[j])
		}
		m.B -= cfg.LearnRate * gradB / totalW
		m.FinalLoss = loss / totalW
	}
	return m, nil
}
