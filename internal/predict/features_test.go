package predict

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestFeatureStateBasics(t *testing.T) {
	var fs FeatureState
	fs.Init(24*time.Hour, 48)

	base := time.Date(2020, 3, 1, 12, 0, 0, 0, time.UTC)
	// Three CEs: +0s, +60s, +1 day+120s.
	fs.Observe(base.UnixNano())
	fs.Observe(base.Add(60 * time.Second).UnixNano())
	fs.Observe(base.Add(24*time.Hour + 120*time.Second).UnixNano())

	at := base.Add(47 * time.Hour)
	f := fs.Snapshot(core.BankSpatial{Words: 1, DistinctBits: 1, DQLanes: 1, DistinctRows: 1, DistinctCols: 1}, at)

	if f.CEs != 3 {
		t.Fatalf("CEs = %v", f.CEs)
	}
	if want := 47 * 3600.0; f.AgeSeconds != want {
		t.Fatalf("AgeSeconds = %v want %v", f.AgeSeconds, want)
	}
	if want := (24*3600.0 + 120) / 3600; f.SpanHours != want {
		t.Fatalf("SpanHours = %v want %v", f.SpanHours, want)
	}
	if f.ActiveDays != 2 {
		t.Fatalf("ActiveDays = %v", f.ActiveDays)
	}
	// Gaps: 60s and 86460s → mean 43260.
	if want := (60.0 + 86460.0) / 2; f.GapMeanSeconds != want {
		t.Fatalf("GapMeanSeconds = %v want %v", f.GapMeanSeconds, want)
	}
	if f.MinGapSeconds != 60 {
		t.Fatalf("MinGapSeconds = %v", f.MinGapSeconds)
	}
	// Window ends at +47h: only the +24h02m event is within 24h (at
	// +48h even that one falls into the expired boundary bucket).
	if f.WindowCEs != 1 {
		t.Fatalf("WindowCEs = %v", f.WindowCEs)
	}
	if f.Words != 1 {
		t.Fatalf("Words = %v", f.Words)
	}
}

func TestFeatureStateEmptySnapshot(t *testing.T) {
	var fs FeatureState
	fs.Init(time.Hour, 4)
	f := fs.Snapshot(core.BankSpatial{}, time.Unix(100, 0))
	if f != (Features{}) {
		t.Fatalf("empty snapshot = %+v", f)
	}
}

func TestFeatureVectorArity(t *testing.T) {
	var f Features
	v := f.Vector(nil)
	if len(v) != NumFeatures || len(FeatureNames) != NumFeatures {
		t.Fatalf("vector arity %d, names %d, const %d", len(v), len(FeatureNames), NumFeatures)
	}
}

// TestFeatureStateDeterministic: identical Observe sequences yield
// bit-identical state — the foundation of the stream==batch feature
// differential.
func TestFeatureStateDeterministic(t *testing.T) {
	run := func() Features {
		var fs FeatureState
		fs.Init(24*time.Hour, 48)
		base := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC).UnixNano()
		nano := base
		for i := 0; i < 5000; i++ {
			// Deterministic pseudo-gaps, including zero and out-of-order.
			gap := int64(i%7) * int64(time.Minute)
			if i%11 == 0 {
				gap = -int64(time.Second)
			}
			nano += gap
			fs.Observe(nano)
		}
		return fs.Snapshot(core.BankSpatial{}, time.Unix(0, nano).Add(time.Hour))
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("feature snapshots diverged:\n%+v\n%+v", a, b)
	}
}
