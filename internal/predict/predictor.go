package predict

// Predictor maps a bank's feature vector to a risk score in [0, 1].
// Implementations must be pure functions of the features (no hidden
// state, no randomness) so scores are reproducible and safe to call
// concurrently from the serving layer.
type Predictor interface {
	Name() string
	Score(f *Features) float64
}

// Rung is one threshold indicator in the rule ladder.
type Rung struct {
	Name string
	Test func(f *Features) bool
}

// RuleLadder scores a bank as the longest satisfied rung prefix over
// the total rung count — a true ladder, not a k-of-n vote: a bank
// climbs one rung at a time and its score is the height reached.
// Sweeping a threshold over the score walks the rungs from cheapest
// to strictest, tracing a precision/recall curve whose points have a
// direct operational reading ("alarm at rung 5").
type RuleLadder struct {
	Rungs []Rung
}

// DefaultRuleLadder returns the stock indicator set, drawn from the
// field-study precursors. Cumulative CE volume is the spine (one-shot
// events are overwhelmingly transient, and escalation probability
// grows with error count — the fault model's own DUE mechanism), with
// the error-bits accelerators OR'd in at the middle rungs: a
// multi-bit word already defeats SEC-DED on its own, and bit/row/
// column fan-out marks shared-circuitry faults that reach
// uncorrectability at lower volumes. Rung 5 adds the First-CE paper's
// persistence requirement so a single truncated burst cannot climb
// past it.
func DefaultRuleLadder() *RuleLadder {
	return &RuleLadder{Rungs: []Rung{
		{"ces>=2", func(f *Features) bool { return f.CEs >= 2 }},
		{"ces>=16", func(f *Features) bool { return f.CEs >= 16 }},
		{"ces>=64|multibit", func(f *Features) bool { return f.CEs >= 64 || f.MultiBitWords >= 1 }},
		{"ces>=128|fanout", func(f *Features) bool {
			return f.CEs >= 128 ||
				(f.CEs >= 32 && (f.DistinctBits >= 4 || f.DistinctRows >= 4 || f.DistinctCols >= 4))
		}},
		{"ces>=256&span>=48h", func(f *Features) bool { return f.CEs >= 256 && f.SpanHours >= 48 }},
		{"ces>=1024|multibit256", func(f *Features) bool {
			return f.CEs >= 1024 || (f.CEs >= 256 && f.MultiBitWords >= 1)
		}},
		{"ces>=4096", func(f *Features) bool { return f.CEs >= 4096 }},
		{"ces>=16384", func(f *Features) bool { return f.CEs >= 16384 }},
	}}
}

// Name implements Predictor.
func (r *RuleLadder) Name() string { return "rule-ladder" }

// Score returns the satisfied-prefix height in (0, 1]: rungs are
// evaluated in order and the climb stops at the first miss.
func (r *RuleLadder) Score(f *Features) float64 {
	if len(r.Rungs) == 0 {
		return 0
	}
	hit := 0
	for i := range r.Rungs {
		if !r.Rungs[i].Test(f) {
			break
		}
		hit++
	}
	return float64(hit) / float64(len(r.Rungs))
}
