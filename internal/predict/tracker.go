package predict

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mce"
)

// TrackerConfig sizes the per-bank rate windows; it must match the
// stream engine's window config for stream and batch features to
// agree (both default to the engine's 24h/48-bucket window).
type TrackerConfig struct {
	Window      time.Duration
	RateBuckets int
}

// DefaultTrackerConfig mirrors stream.Config's defaults.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{Window: 24 * time.Hour, RateBuckets: 48}
}

func (c *TrackerConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 24 * time.Hour
	}
	if c.RateBuckets <= 0 {
		c.RateBuckets = 48
	}
}

// BankTrack is one bank's accumulated state in a batch Tracker: the
// clustering accumulator (spatial features) plus the temporal feature
// state.
type BankTrack struct {
	Key      core.BankKey
	FirstIdx int
	State    *core.BankState
	FS       FeatureState
}

// Snapshot derives the bank's feature vector at time `at`.
func (bt *BankTrack) Snapshot(at time.Time) Features {
	return bt.FS.Snapshot(bt.State.Spatial(), at)
}

// Tracker is the batch-side feature engine: it replays a CE record
// stream in order and accumulates per-bank state, exactly as the
// stream engine does internally. The evaluation harness and the
// stream==batch differential both use it; the benchstage feature
// hot-path stage drives ObserveFeatures on a warmed tracker.
type Tracker struct {
	cfg   TrackerConfig
	banks map[core.BankKey]*BankTrack
	order []*BankTrack // first-arrival order
	n     int          // records observed (arrival index source)
	last  time.Time    // newest event time seen
}

// NewTracker builds an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	cfg.defaults()
	return &Tracker{cfg: cfg, banks: map[core.BankKey]*BankTrack{}}
}

func (t *Tracker) ensure(rec *mce.CERecord) *BankTrack {
	key := core.RecordBankKey(rec)
	bt, ok := t.banks[key]
	if !ok {
		bt = &BankTrack{Key: key, FirstIdx: t.n, State: core.NewBankState()}
		bt.FS.Init(t.cfg.Window, t.cfg.RateBuckets)
		t.banks[key] = bt
		t.order = append(t.order, bt)
	}
	return bt
}

// Observe folds one record into its bank (clustering state + feature
// state) and returns the bank. Records must arrive in stream order.
func (t *Tracker) Observe(rec *mce.CERecord) *BankTrack {
	bt := t.ensure(rec)
	bt.State.Add(t.n, rec)
	bt.FS.Observe(rec.Time.UnixNano())
	t.n++
	if rec.Time.After(t.last) {
		t.last = rec.Time
	}
	return bt
}

// ObserveFeatures updates only the temporal feature state — the exact
// per-record work the stream engine's ingest hot path adds. After a
// warm-up pass has created the banks, it allocates nothing; the
// predict-features benchstage stage measures this path.
func (t *Tracker) ObserveFeatures(rec *mce.CERecord) {
	bt := t.ensure(rec)
	bt.FS.Observe(rec.Time.UnixNano())
	t.n++
}

// Records returns the number of records observed.
func (t *Tracker) Records() int { return t.n }

// Last returns the newest event time observed.
func (t *Tracker) Last() time.Time { return t.last }

// Banks returns the per-bank state in first-arrival order.
func (t *Tracker) Banks() []*BankTrack { return t.order }

// Features snapshots every bank at time `at`, in first-arrival order.
func (t *Tracker) Features(at time.Time) []BankFeatures {
	out := make([]BankFeatures, 0, len(t.order))
	for _, bt := range t.order {
		out = append(out, BankFeatures{Key: bt.Key, FirstIdx: bt.FirstIdx, F: bt.Snapshot(at)})
	}
	return out
}

// SortByRisk orders bank features by descending score under p, with a
// deterministic tie-break on first-arrival order. It returns the
// scores aligned with the sorted slice.
func SortByRisk(bf []BankFeatures, p Predictor) []float64 {
	scores := make([]float64, len(bf))
	for i := range bf {
		scores[i] = p.Score(&bf[i].F)
	}
	// Sort an index permutation so the scores stay aligned with bf.
	idx := make([]int, len(bf))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return bf[idx[a]].FirstIdx < bf[idx[b]].FirstIdx
	})
	outB := make([]BankFeatures, len(bf))
	outS := make([]float64, len(bf))
	for i, j := range idx {
		outB[i] = bf[j]
		outS[i] = scores[j]
	}
	copy(bf, outB)
	copy(scores, outS)
	return scores
}
