package predict

import (
	"time"

	"repro/internal/mce"
)

// SampleConfig parameterizes training-set construction.
type SampleConfig struct {
	// Horizon labels a snapshot positive when the bank's DIMM has a DUE
	// within (t, t+Horizon]; 0 means 180 days (the default scenario's
	// evaluation horizon).
	Horizon time.Duration
	// Tracker sizes the feature windows.
	Tracker TrackerConfig
}

func (c *SampleConfig) defaults() {
	if c.Horizon <= 0 {
		c.Horizon = 180 * 24 * time.Hour
	}
	c.Tracker.defaults()
}

// BuildSamples replays the record stream and snapshots each bank's
// feature vector at exponentially spaced moments (every CE while the
// bank has ≤ 8, then at each power-of-two count), labeling each
// snapshot by whether the bank's DIMM suffers a DUE within the horizon
// after it. Exponential spacing keeps the set balanced across bank
// lifetimes instead of drowning it in near-duplicate snapshots of the
// heaviest banks; labeling snapshots (not banks) teaches the model
// lead-time structure — an early snapshot of an eventually-bad bank is
// only positive if the DUE falls inside the horizon.
func BuildSamples(records []mce.CERecord, dues []DUE, cfg SampleConfig) []Sample {
	cfg.defaults()
	dueTimes := map[DIMMKey][]time.Time{}
	for _, d := range dues {
		dueTimes[d.DIMM] = append(dueTimes[d.DIMM], d.Time) // labels are time-sorted
	}
	tr := NewTracker(cfg.Tracker)
	var out []Sample
	for ri := range records {
		rec := &records[ri]
		bt := tr.Observe(rec)
		n := bt.FS.CEs()
		if n > 8 && n&(n-1) != 0 {
			continue
		}
		f := bt.Snapshot(rec.Time)
		label := false
		for _, dt := range dueTimes[DIMMKey{Node: rec.Node, Slot: rec.Slot}] {
			if dt.After(rec.Time) && dt.Sub(rec.Time) <= cfg.Horizon {
				label = true
				break
			}
		}
		out = append(out, Sample{X: f.Vector(nil), Label: label})
	}
	return out
}
