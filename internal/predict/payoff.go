package predict

import (
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/retire"
	"repro/internal/topology"
)

// BankBytes is the capacity sacrificed when a predicted-bad bank is
// mapped out (rows × word-columns × word size = 256 MiB): the paper's
// §3.2 point that single-bank faults force large retirement footprints
// while cell/row faults are cheap.
const BankBytes = int64(topology.RowsPerBank) * topology.ColsPerRow * topology.WordBytes

// PayoffConfig parameterizes the predict-then-retire vs reactive
// comparison.
type PayoffConfig struct {
	// Threshold is the alarm threshold for the predictive arm.
	Threshold float64
	// ReactionDelay is the operational lag between an alarm and the
	// bank actually being mapped out (maintenance window).
	ReactionDelay time.Duration
	// Tracker sizes the feature windows; ScoreEvery as in EvalConfig.
	Tracker    TrackerConfig
	Page       retire.Policy // reactive arm's page-retirement policy
	ScoreEvery int
	Seed       uint64 // reactive arm's retirement-success randomness
}

func (c *PayoffConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.ReactionDelay <= 0 {
		c.ReactionDelay = 24 * time.Hour
	}
	c.Tracker.defaults()
	if c.ScoreEvery <= 0 {
		c.ScoreEvery = 64
	}
	if c.Page == (retire.Policy{}) {
		c.Page = retire.DefaultPolicy()
	}
}

// PayoffArm is one policy's outcome.
type PayoffArm struct {
	Policy        string  `json:"policy"`
	DUEsTotal     int     `json:"dues_total"`
	DUEsAvoided   int     `json:"dues_avoided"`
	ECCConfirmed  int     `json:"ecc_confirmed_avoided"`
	UnitsRetired  int     `json:"units_retired"` // banks (predictive) or pages (reactive)
	CapacityBytes int64   `json:"capacity_bytes"`
	AvoidedFrac   float64 `json:"avoided_frac"`
	CEsSuppressed int     `json:"ces_suppressed,omitempty"` // reactive arm only

}

// Payoff compares predict-then-retire against the paper's reactive
// page-retirement policy on one generated fleet.
type Payoff struct {
	Threshold  float64   `json:"threshold"`
	Predictive PayoffArm `json:"predictive"`
	Reactive   PayoffArm `json:"reactive"`
}

// eccConfirmsUncorrectable replays a DUE's flipped codeword bits
// through the SEC-DED decoder to confirm the pattern actually defeats
// correction (2 flips are detected-uncorrectable; ≥3 may alias to a
// miscorrection, which is still a data-integrity loss the retirement
// avoided).
func eccConfirmsUncorrectable(bits []uint8) bool {
	w := ecc.Encode(0)
	for _, b := range bits {
		if int(b) >= topology.CodeBitsPerWord {
			return false
		}
		w = ecc.FlipBit(w, int(b))
	}
	res, _, _ := ecc.DecodeVsTruth(w, 0)
	return res == ecc.Uncorrectable || res == ecc.Miscorrected
}

// SimulatePayoff runs both arms over one generated fleet: records are
// the observable telemetry (the predictive tracker's input), pop holds
// the ground truth (the reactive arm consumes pop.CEs — page
// retirement sees true addresses — and both arms are graded against
// pop.DUEs).
func SimulatePayoff(records []mce.CERecord, pop *faultmodel.Population, p Predictor, cfg PayoffConfig) (*Payoff, error) {
	cfg.defaults()
	if p == nil {
		return nil, fmt.Errorf("predict: nil predictor")
	}
	dues := Labels(pop)
	out := &Payoff{Threshold: cfg.Threshold}
	out.Predictive.Policy = "predict-then-retire-bank"
	out.Reactive.Policy = "reactive-page-retirement"
	out.Predictive.DUEsTotal = len(dues)
	out.Reactive.DUEsTotal = len(dues)

	// Predictive arm: first alarm time per bank; the bank is mapped out
	// ReactionDelay later, and any of its subsequent DUEs are avoided.
	tr := NewTracker(cfg.Tracker)
	alarmAt := map[bankID]time.Time{}
	for ri := range records {
		rec := &records[ri]
		bt := tr.Observe(rec)
		n := bt.FS.CEs()
		if n > 64 && n%int64(cfg.ScoreEvery) != 0 {
			continue
		}
		id := bankID{DIMMKey{Node: rec.Node, Slot: rec.Slot}, int8(rec.Rank), int8(rec.Bank)}
		if _, done := alarmAt[id]; done {
			continue
		}
		f := bt.Snapshot(rec.Time)
		if p.Score(&f) >= cfg.Threshold {
			alarmAt[id] = rec.Time
		}
	}
	out.Predictive.UnitsRetired = len(alarmAt)
	out.Predictive.CapacityBytes = int64(len(alarmAt)) * BankBytes
	for _, d := range dues {
		id := bankID{d.DIMM, d.Rank, d.Bank}
		if at, ok := alarmAt[id]; ok && !d.Time.Before(at.Add(cfg.ReactionDelay)) {
			out.Predictive.DUEsAvoided++
			if eccConfirmsUncorrectable(dueBits(pop, d)) {
				out.Predictive.ECCConfirmed++
			}
		}
	}

	// Reactive arm: the paper's page-retirement model over the
	// ground-truth CE stream, interleaved with the DUE stream in time
	// order; a DUE is avoided iff its page was already retired.
	eng := retire.NewEngine(cfg.Seed, cfg.Page)
	ci, di := 0, 0
	for di < len(pop.DUEs) || ci < len(pop.CEs) {
		if ci < len(pop.CEs) && (di >= len(pop.DUEs) || pop.CEs[ci].Minute <= pop.DUEs[di].Minute) {
			eng.Observe(pop.CEs[ci])
			ci++
			continue
		}
		ev := &pop.DUEs[di]
		if eng.PageRetired(ev.Node, ev.Addr) {
			out.Reactive.DUEsAvoided++
			if eccConfirmsUncorrectable(ev.Bits) {
				out.Reactive.ECCConfirmed++
			}
		}
		di++
	}
	st := eng.Stats()
	out.Reactive.UnitsRetired = st.Retired
	out.Reactive.CapacityBytes = st.MemoryRetiredBytes()
	out.Reactive.CEsSuppressed = st.Suppressed

	if len(dues) > 0 {
		out.Predictive.AvoidedFrac = float64(out.Predictive.DUEsAvoided) / float64(len(dues))
		out.Reactive.AvoidedFrac = float64(out.Reactive.DUEsAvoided) / float64(len(dues))
	}
	return out, nil
}

// bankID is a bank at DIMM granularity plus rank/bank coordinates.
type bankID struct {
	DIMM DIMMKey
	Rank int8
	Bank int8
}

// dueBits finds the flipped-bit pattern for a labeled DUE by matching
// it back to the population's event list (labels are sorted, events
// are not necessarily; linear scan is fine at evaluation scale).
func dueBits(pop *faultmodel.Population, d DUE) []uint8 {
	for i := range pop.DUEs {
		ev := &pop.DUEs[i]
		if ev.Node == d.DIMM.Node && ev.Minute.Time().Equal(d.Time) {
			return ev.Bits
		}
	}
	return nil
}
