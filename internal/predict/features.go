// Package predict is the failure-prediction subsystem: online feature
// extraction over per-bank CE history, pluggable predictors (a
// rule-ladder over DDR4 field-study indicators and a trained logistic
// regression), ground-truth evaluation against the fault model's known
// injections (precision/recall/F1 and lead-time distributions over a
// horizon), and a retirement-policy payoff simulator composing
// predictions with internal/retire and internal/ecc.
//
// The paper's operators could only describe memory failures after the
// fact; the prediction literature ("Investigating Memory Failure
// Prediction Across CPU Architectures", "First CE Matters") predicts
// uncorrectable errors from CE history. Unlike those field studies,
// this repo generates the underlying faults, so it has perfect ground
// truth: every DUE's cause, time, and location are known.
//
// Determinism contract: FeatureState is a pure function of the
// sequence of Observe calls. The stream engine applies feature updates
// strictly in arrival order on every path (serial ingest, parallel
// batches, sharded partitions), so stream-computed features are
// bit-identical to a batch recomputation — the same stream==batch
// property the fault pipeline has, extended to floating-point
// accumulators by never merging them.
package predict

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

func log1p(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log1p(x)
}

const nanosPerDay = int64(24 * time.Hour)

// floorDay converts unix nanoseconds to a day ordinal (floor division,
// robust to pre-epoch timestamps from hostile inputs).
func floorDay(nano int64) int64 {
	d := nano / nanosPerDay
	if nano%nanosPerDay < 0 {
		d--
	}
	return d
}

// FeatureState incrementally accumulates the temporal features of one
// bank's CE stream: burst dynamics (inter-arrival mean/std/median,
// minimum gap, windowed rate) and long-term properties (first-CE age,
// cumulative count, days active). Spatial features come from the
// bank's core.BankState at snapshot time, not from this struct.
//
// The update path (Observe) allocates nothing; all state is fixed-size
// except the rate window's ring, which Init allocates once. Not safe
// for concurrent use — the owner (stream engine bank entry, batch
// tracker) serializes access.
type FeatureState struct {
	ces        int64
	firstNano  int64
	lastNano   int64
	prevNano   int64 // previous observation in arrival order
	lastDay    int64
	activeDays int32
	minGapNano int64 // smallest positive arrival gap; 0 = none yet
	gaps       stats.Welford
	gapQ       stats.P2Quantile
	rw         stats.RateWindow
}

// Init prepares the state with a rate window of the given width and
// bucket count (the stream engine passes its own window config so
// stream and batch features agree). It must be called before Observe.
func (s *FeatureState) Init(window time.Duration, buckets int) {
	*s = FeatureState{}
	s.gapQ.Init(0.5)
	s.rw.Init(window, buckets)
}

// Observe folds one CE at the given unix-nano timestamp into the
// state. Calls must be made in arrival order; gaps are measured
// between consecutive arrivals (the telemetry stream is near-sorted,
// so arrival order ≈ event order, and using it keeps every ingest
// path's arithmetic identical).
func (s *FeatureState) Observe(nano int64) {
	if s.ces == 0 {
		s.firstNano, s.lastNano = nano, nano
		s.lastDay = floorDay(nano)
		s.activeDays = 1
	} else {
		gap := nano - s.prevNano
		if gap < 0 {
			gap = 0
		}
		gsec := float64(gap) / float64(time.Second)
		s.gaps.Add(gsec)
		s.gapQ.Add(gsec)
		if gap > 0 && (s.minGapNano == 0 || gap < s.minGapNano) {
			s.minGapNano = gap
		}
		if nano < s.firstNano {
			s.firstNano = nano
		}
		if nano > s.lastNano {
			s.lastNano = nano
		}
		if d := floorDay(nano); d != s.lastDay {
			s.activeDays++
			s.lastDay = d
		}
	}
	s.prevNano = nano
	s.ces++
	s.rw.AddNano(nano)
}

// CEs returns the number of observations folded in.
func (s *FeatureState) CEs() int64 { return s.ces }

// Features is one bank's feature vector at a moment in time, combining
// the temporal accumulator with the bank's spatial structure. All
// fields are float64 so the vector form is a direct copy; the rule
// ladder reads named fields, the logistic regression reads Vector.
type Features struct {
	// Long-term properties (the First-CE paper's indicators).
	CEs        float64 // cumulative CE count
	AgeSeconds float64 // now − first CE
	SpanHours  float64 // last CE − first CE
	ActiveDays float64 // distinct day transitions observed + 1

	// Burst dynamics.
	GapMeanSeconds float64 // mean inter-arrival gap
	GapStdSeconds  float64 // population std of gaps
	GapP50Seconds  float64 // online median gap (P² estimate)
	MinGapSeconds  float64 // smallest positive gap
	WindowCEs      float64 // CEs inside the rate window ending now

	// Spatial structure (the error-bits paper's indicators).
	Words          float64
	MultiBitWords  float64
	MaxBitsPerWord float64
	DistinctBits   float64
	DQLanes        float64
	DistinctRows   float64
	DistinctCols   float64
}

// FeatureNames names the Vector positions, in order.
var FeatureNames = []string{
	"log1p_ces",
	"log1p_age_seconds",
	"log1p_span_hours",
	"log1p_active_days",
	"log1p_gap_mean_seconds",
	"log1p_gap_std_seconds",
	"log1p_gap_p50_seconds",
	"log1p_min_gap_seconds",
	"log1p_window_ces",
	"log1p_words",
	"log1p_multibit_words",
	"log1p_max_bits_per_word",
	"log1p_distinct_bits",
	"log1p_dq_lanes",
	"log1p_distinct_rows",
	"log1p_distinct_cols",
}

// NumFeatures is the Vector length.
const NumFeatures = 16

// Vector appends the log1p-compressed feature vector to dst and
// returns it. Every raw feature is a non-negative count or duration
// with a heavy tail (one fault emitted ~91,000 errors in the paper),
// so log1p is applied uniformly; the regression's standardization
// handles the remaining scale differences.
func (f *Features) Vector(dst []float64) []float64 {
	return append(dst,
		log1p(f.CEs),
		log1p(f.AgeSeconds),
		log1p(f.SpanHours),
		log1p(f.ActiveDays),
		log1p(f.GapMeanSeconds),
		log1p(f.GapStdSeconds),
		log1p(f.GapP50Seconds),
		log1p(f.MinGapSeconds),
		log1p(f.WindowCEs),
		log1p(f.Words),
		log1p(f.MultiBitWords),
		log1p(f.MaxBitsPerWord),
		log1p(f.DistinctBits),
		log1p(f.DQLanes),
		log1p(f.DistinctRows),
		log1p(f.DistinctCols),
	)
}

// Snapshot derives the feature vector at time `at` from the temporal
// accumulator plus the bank's spatial summary. It advances the rate
// window's head to `at` (mutating, like the engine's per-node windows),
// so callers hold the owner's lock. `at` should be ≥ the newest event
// (the engine passes the fleet-wide newest timestamp).
func (s *FeatureState) Snapshot(sp core.BankSpatial, at time.Time) Features {
	var f Features
	if s.ces == 0 {
		return f
	}
	f.CEs = float64(s.ces)
	f.AgeSeconds = float64(at.UnixNano()-s.firstNano) / float64(time.Second)
	if f.AgeSeconds < 0 {
		f.AgeSeconds = 0
	}
	f.SpanHours = float64(s.lastNano-s.firstNano) / float64(time.Hour)
	f.ActiveDays = float64(s.activeDays)
	f.GapMeanSeconds = s.gaps.Mean()
	f.GapStdSeconds = s.gaps.Std()
	f.GapP50Seconds = s.gapQ.Value()
	f.MinGapSeconds = float64(s.minGapNano) / float64(time.Second)
	f.WindowCEs = float64(s.rw.Count(at))
	f.Words = float64(sp.Words)
	f.MultiBitWords = float64(sp.MultiBitWords)
	f.MaxBitsPerWord = float64(sp.MaxBitsPerWord)
	f.DistinctBits = float64(sp.DistinctBits)
	f.DQLanes = float64(sp.DQLanes)
	f.DistinctRows = float64(sp.DistinctRows)
	f.DistinctCols = float64(sp.DistinctCols)
	return f
}

// BankFeatures pairs a bank's identity with its feature snapshot; the
// stream engine's views and the batch tracker both produce these, in
// first-arrival order (FirstIdx is the arrival index of the bank's
// first record — the stable sort key the sharded merge uses).
type BankFeatures struct {
	Key      core.BankKey
	FirstIdx int
	F        Features
}
