package predict

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mce"
	"repro/internal/stats"
)

// EvalConfig parameterizes the ground-truth evaluation.
type EvalConfig struct {
	// Horizon is the prediction validity window H: an alarm at time T
	// is credited only if the DIMM's first subsequent DUE falls in
	// (T, T+H].
	Horizon time.Duration
	// Thresholds is the sweep grid over predictor scores; empty means
	// DefaultThresholds.
	Thresholds []float64
	// Tracker sizes the feature rate windows.
	Tracker TrackerConfig
	// TotalDIMMs is the fleet's DIMM population, used for the TN count;
	// 0 leaves TN at 0 (precision/recall don't need it).
	TotalDIMMs int
	// ScoreEvery throttles re-scoring of hot banks: a bank is scored on
	// every CE while it has ≤ 64 of them, then on every ScoreEvery-th.
	// Alarm times therefore have a small quantization (bounded by the
	// gap between scored CEs), which is also how a production poller
	// would behave. 0 means 64.
	ScoreEvery int
}

// DefaultThresholds spans the rule ladder's k-of-8 grid and the
// regression's probability range.
func DefaultThresholds() []float64 {
	out := make([]float64, 0, 19)
	for t := 0.05; t < 0.975; t += 0.05 {
		out = append(out, t)
	}
	return out
}

func (c *EvalConfig) defaults() {
	if c.Horizon <= 0 {
		c.Horizon = 30 * 24 * time.Hour
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = DefaultThresholds()
	}
	c.Tracker.defaults()
	if c.ScoreEvery <= 0 {
		c.ScoreEvery = 64
	}
}

// SweepPoint is the confusion matrix and lead-time summary at one
// score threshold. Classification is per DIMM against its first DUE:
//
//   - alarmed before the first DUE, gap ≤ H      → TP (lead = gap)
//   - alarmed, no DUE within (alarm, alarm+H]    → FP
//   - first DUE with no alarm before it          → FN
//   - neither alarm nor DUE                      → TN
type SweepPoint struct {
	Threshold float64 `json:"threshold"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	TN        int     `json:"tn"`
	Alarmed   int     `json:"alarmed"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// Lead-time distribution over the TPs (zero when TP == 0).
	LeadMean time.Duration `json:"lead_mean"`
	LeadP50  time.Duration `json:"lead_p50"`
	LeadP90  time.Duration `json:"lead_p90"`
}

// Evaluation is the full threshold sweep for one predictor on one
// generated fleet.
type Evaluation struct {
	Predictor  string        `json:"predictor"`
	Horizon    time.Duration `json:"horizon"`
	Records    int           `json:"records"`
	Banks      int           `json:"banks"`
	DIMMsDUE   int           `json:"dimms_with_due"`
	TotalDIMMs int           `json:"total_dimms"`
	Points     []SweepPoint  `json:"points"`
}

// Best returns the sweep point with the highest F1 (ties: lowest
// threshold), or nil for an empty sweep.
func (e *Evaluation) Best() *SweepPoint {
	var best *SweepPoint
	for i := range e.Points {
		if best == nil || e.Points[i].F1 > best.F1 {
			best = &e.Points[i]
		}
	}
	return best
}

// BestAt returns the point with the highest recall among those with
// precision ≥ minPrecision, or nil if none qualifies.
func (e *Evaluation) BestAt(minPrecision float64) *SweepPoint {
	var best *SweepPoint
	for i := range e.Points {
		p := &e.Points[i]
		if p.Precision < minPrecision {
			continue
		}
		if best == nil || p.Recall > best.Recall {
			best = p
		}
	}
	return best
}

// Evaluate replays a time-ordered CE record stream through the feature
// tracker, scores each bank with the predictor as its history grows,
// records per-DIMM first-alarm times for every threshold, and grades
// the alarms against the ground-truth DUE stream. A DIMM's risk is the
// max over its banks, taken implicitly: any bank crossing a threshold
// alarms the DIMM.
func Evaluate(records []mce.CERecord, dues []DUE, p Predictor, cfg EvalConfig) (*Evaluation, error) {
	cfg.defaults()
	if p == nil {
		return nil, fmt.Errorf("predict: nil predictor")
	}
	for i := 1; i < len(records); i++ {
		if records[i].Time.Before(records[i-1].Time) {
			return nil, fmt.Errorf("predict: records not time-ordered at %d", i)
		}
	}
	nth := len(cfg.Thresholds)
	tr := NewTracker(cfg.Tracker)

	// firstCross[dimm][i] is the first time any of the DIMM's banks
	// scored ≥ Thresholds[i]; zero time = never.
	firstCross := map[DIMMKey][]time.Time{}
	for ri := range records {
		rec := &records[ri]
		bt := tr.Observe(rec)
		n := bt.FS.CEs()
		if n > 64 && n%int64(cfg.ScoreEvery) != 0 {
			continue
		}
		f := bt.Snapshot(rec.Time)
		score := p.Score(&f)
		if score <= 0 {
			continue
		}
		dimm := DIMMKey{Node: rec.Node, Slot: rec.Slot}
		cross := firstCross[dimm]
		if cross == nil {
			cross = make([]time.Time, nth)
			firstCross[dimm] = cross
		}
		for i, th := range cfg.Thresholds {
			if score >= th && cross[i].IsZero() {
				cross[i] = rec.Time
			}
		}
	}

	// First DUE per DIMM.
	firstDUE := map[DIMMKey]time.Time{}
	for _, d := range dues {
		if t, ok := firstDUE[d.DIMM]; !ok || d.Time.Before(t) {
			firstDUE[d.DIMM] = d.Time
		}
	}

	ev := &Evaluation{
		Predictor:  p.Name(),
		Horizon:    cfg.Horizon,
		Records:    len(records),
		Banks:      len(tr.Banks()),
		DIMMsDUE:   len(firstDUE),
		TotalDIMMs: cfg.TotalDIMMs,
		Points:     make([]SweepPoint, nth),
	}

	// Deterministic DIMM iteration order for reproducible float sums.
	dimms := make([]DIMMKey, 0, len(firstCross)+len(firstDUE))
	seen := map[DIMMKey]bool{}
	for d := range firstCross {
		dimms = append(dimms, d)
		seen[d] = true
	}
	for d := range firstDUE {
		if !seen[d] {
			dimms = append(dimms, d)
		}
	}
	sort.Slice(dimms, func(i, j int) bool {
		if dimms[i].Node != dimms[j].Node {
			return dimms[i].Node < dimms[j].Node
		}
		return dimms[i].Slot < dimms[j].Slot
	})

	leads := make([]float64, 0, len(dimms)) // hours, reused per threshold
	for i, th := range cfg.Thresholds {
		pt := &ev.Points[i]
		pt.Threshold = th
		leads = leads[:0]
		for _, dimm := range dimms {
			var alarm time.Time
			if cross := firstCross[dimm]; cross != nil {
				alarm = cross[i]
			}
			due, hasDUE := firstDUE[dimm]
			switch {
			case alarm.IsZero() && !hasDUE:
				// Quiet DIMM with CE history but no alarm: true negative
				// (counted via TotalDIMMs below).
			case alarm.IsZero() && hasDUE:
				pt.FN++
			case !hasDUE:
				pt.Alarmed++
				pt.FP++
			default:
				pt.Alarmed++
				lead := due.Sub(alarm)
				switch {
				case lead <= 0:
					// Alarm after the DUE: the prediction missed.
					pt.FN++
					pt.FP++
				case lead <= cfg.Horizon:
					pt.TP++
					leads = append(leads, lead.Hours())
				default:
					// Alarm fired but nothing materialized in horizon.
					pt.FP++
				}
			}
		}
		if cfg.TotalDIMMs > 0 {
			pt.TN = cfg.TotalDIMMs - pt.TP - pt.FP - pt.FN
			if pt.TN < 0 {
				pt.TN = 0
			}
		}
		if pt.TP+pt.FP > 0 {
			pt.Precision = float64(pt.TP) / float64(pt.TP+pt.FP)
		}
		if pt.TP+pt.FN > 0 {
			pt.Recall = float64(pt.TP) / float64(pt.TP+pt.FN)
		}
		if pt.Precision+pt.Recall > 0 {
			pt.F1 = 2 * pt.Precision * pt.Recall / (pt.Precision + pt.Recall)
		}
		if len(leads) > 0 {
			sort.Float64s(leads)
			sum := 0.0
			for _, l := range leads {
				sum += l
			}
			pt.LeadMean = time.Duration(sum / float64(len(leads)) * float64(time.Hour))
			if q, ok := stats.Quantile(leads, 0.5); ok {
				pt.LeadP50 = time.Duration(q * float64(time.Hour))
			}
			if q, ok := stats.Quantile(leads, 0.9); ok {
				pt.LeadP90 = time.Duration(q * float64(time.Hour))
			}
		}
	}
	return ev, nil
}
