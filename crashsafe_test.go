package astra

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// TestAnalyzePanicIsolated is the acceptance check for panic isolation:
// a panic on an analysis worker goroutine (here provoked by analyzing a
// zero Study, whose nil population dereferences inside the fan-out) must
// come back from Analyze as a *parallel.PanicError carrying the worker's
// stack — the process must not crash.
func TestAnalyzePanicIsolated(t *testing.T) {
	s := &Study{}
	res, err := s.Analyze(testCtx)
	if res != nil {
		t.Error("Analyze returned results alongside a panic")
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *parallel.PanicError", err)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("captured stack missing or empty:\n%s", pe.Stack)
	}
}

// TestRunCancelled: a pre-cancelled context stops the pipeline before it
// builds anything.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Seed: 1, Nodes: 48}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAnalyzeCancelled: cancellation surfaces from Analyze as an error,
// not a partial result.
func TestAnalyzeCancelled(t *testing.T) {
	study, err := Run(testCtx, Options{Seed: 1, Nodes: 48})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := study.Analyze(ctx); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and context.Canceled", res != nil, err)
	}
}
