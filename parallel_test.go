package astra

import (
	"bytes"
	"os"
	"strconv"
	"testing"
)

// parallelTestNodes returns the node count for the differential
// determinism tests: ASTRA_BENCH_NODES when set (make verify pins 64),
// otherwise a reduced default that keeps the -race run fast.
func parallelTestNodes(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("ASTRA_BENCH_NODES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 && n <= FullScale {
			return n
		}
	}
	return 96
}

// TestParallelReportByteIdentical is the end-to-end determinism contract:
// the full pipeline (Run + Analyze + WriteReport) at Parallelism=1 and
// Parallelism=8 must render byte-identical reports for the same seed.
func TestParallelReportByteIdentical(t *testing.T) {
	nodes := parallelTestNodes(t)
	render := func(par int) []byte {
		study, err := Run(testCtx, Options{Seed: 1, Nodes: nodes, Parallelism: par})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		var buf bytes.Buffer
		if err := study.WriteReport(&buf, mustAnalyze(study)); err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	par := render(8)
	if !bytes.Equal(serial, par) {
		line := 1
		for i := 0; i < len(serial) && i < len(par); i++ {
			if serial[i] != par[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("reports diverge at byte %d (line %d):\nserial:   %q\nparallel: %q",
					i, line, serial[lo:min(i+80, len(serial))], par[lo:min(i+80, len(par))])
			}
			if serial[i] == '\n' {
				line++
			}
		}
		t.Fatalf("report lengths differ: serial %d bytes, parallel %d bytes", len(serial), len(par))
	}
}

// TestParallelAnalyzeDeterministic asserts Analyze at the same parallelism
// gives identical rendered output run to run (guards against map-order
// float accumulation sneaking back into an analysis).
func TestParallelAnalyzeDeterministic(t *testing.T) {
	nodes := parallelTestNodes(t)
	study, err := Run(testCtx, Options{Seed: 2, Nodes: nodes, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		var buf bytes.Buffer
		if err := study.WriteReport(&buf, mustAnalyze(study)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("repeated Analyze renders differ at fixed parallelism")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
