GO ?= go

# Pinned system size for benchmarks and the parallel determinism gate, so
# numbers (and test cost) are comparable across runs.
ASTRA_BENCH_NODES ?= 256

.PHONY: build test verify bench bench-serve bench-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the robustness gate: static checks, the full suite including
# the differential dirty-telemetry harness (robustness_test.go), the race
# detector over the concurrent ingest/poller paths, the parallel
# determinism contract (serial vs sharded pipelines must be bit-identical)
# under the race detector at a pinned scale, and a short fuzz smoke over
# the hostile-input parsers (syslog lines, the block-parallel scanner's
# serial-differential, the columnar decoder, dataset manifests).
# ASTRA_CRASH_TESTS=1 additionally sweeps the kill/resume differential
# test over every I/O operation instead of its default 24-point sample.
# The online subsystem gets an explicit race-enabled pass: the stream
# engine's batch-equivalence property tests, the tail/checkpoint resume
# differentials, and the astrad kill/restart test are the contracts most
# exposed to concurrency bugs, so they run under the race detector even
# when the blanket -race sweep is trimmed locally. The pinned-scale line
# also sweeps the sharded-engine differentials (partition-parallel
# ingest must stay bit-identical to the serial engine).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -timeout 30m ./...
	$(GO) test -race -timeout 30m -count 1 ./internal/stream ./internal/serve ./internal/overload ./internal/syslog ./internal/colfmt ./internal/supervise ./internal/predict ./cmd/astrad ./cmd/astraload
	ASTRA_BENCH_NODES=64 $(GO) test -race -timeout 30m -run 'Parallel|Determinism|Sharded' ./...
	$(GO) test -run '^$$' -fuzz '^FuzzParseLine$$' -fuzztime 5s ./internal/syslog
	$(GO) test -run '^$$' -fuzz '^FuzzBlockScan$$' -fuzztime 5s ./internal/syslog
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 5s ./internal/colfmt
	$(GO) test -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime 5s ./internal/atomicio
	$(GO) test -run '^$$' -fuzz '^FuzzLoadStateLadder$$' -fuzztime 5s ./cmd/astrad
	$(GO) test -run '^$$' -fuzz '^FuzzRiskEndpoint$$' -fuzztime 5s ./internal/serve
	@if [ -n "$$ASTRA_CRASH_TESTS" ]; then ASTRA_CRASH_TESTS=1 $(GO) test -run 'TestExportCrashResumeDifferential' ./internal/dataset; fi
	@if [ -n "$$ASTRA_BENCH_GUARD" ]; then $(MAKE) bench-guard; fi

# bench runs the analysis micro-benchmarks (bench_test.go), the
# pipeline-stage benchmarks (bench_pipeline_test.go), and writes the
# BENCH_pipeline.json regression baseline via cmd/astrabench. The
# worker sweep covers the sharded stream-ingest and fanin-merge stages
# at 1, 4, and 8 partitions alongside the existing parallel stages.
bench:
	ASTRA_BENCH_NODES=$(ASTRA_BENCH_NODES) $(GO) test -run '^$$' -bench . -benchmem .
	ASTRA_BENCH_NODES=$(ASTRA_BENCH_NODES) $(GO) run ./cmd/astrabench -workers 1,4,8 -out BENCH_pipeline.json

# bench-serve runs the overload/chaos harness (cmd/astraload) at a
# pinned small scale and writes BENCH_serve.json: the serving-path
# baseline (API p50/p99 on the rendered and ETag/304 paths, per-site
# ingest/shed rows, recovery time) under sustained ingest + bursts +
# slow clients + a stalling checkpoint disk. Two federated sites with
# partitioned engines exercise the fan-in rollup under load. The
# scenario is deliberately drain-throttled so the shed rate is overload
# arithmetic, not machine speed. The -recovery phase then runs the
# kill + corrupt-newest-generation + rotate-mid-tail chaos sequence and
# pins crash-recovery convergence (and its time) in the same baseline.
bench-serve:
	$(GO) run ./cmd/astraload -seed 1 -nodes 64 -sites 2 -partitions 4 \
		-duration 3 -ingest-rate 100000 \
		-burst-factor 3 -burst-at 1 -burst-for 0.5 \
		-api-clients 4 -api-qps 400 -slow-clients 2 \
		-queue-depth 32768 -drain-batch 128 -drain-interval 5 \
		-disk-stall 0.5 -disk-stall-for 100 -checkpoint-every 100 -checkpoint-timeout 50 \
		-recovery -recovery-nodes 48 -recovery-partitions 2 -recovery-keep 3 -recovery-bound 30000 \
		-out BENCH_serve.json

# bench-guard fails when the budgeted stages (dataset-build, parse,
# parse-parallel, colfmt-replay, stream-ingest serial and sharded, and
# predict-features at its zero-alloc floor)
# regress more than 10% allocs/op or 15% records/s against the
# checked-in BENCH_pipeline.json, or when the serving path regresses
# against BENCH_serve.json (p99 latency beyond 10% + slack, a shed rate
# beyond what the scenario's configured rates imply, a crash-recovery
# time beyond the baseline + slack, a recovery that fails to converge,
# or any overload-contract violation). Opt into
# it during verify with ASTRA_BENCH_GUARD=1 (both re-run their fixtures,
# so it is not free).
bench-guard:
	ASTRA_BENCH_NODES=$(ASTRA_BENCH_NODES) $(GO) run ./cmd/astrabench -guard -against BENCH_pipeline.json
	$(GO) run ./cmd/astraload -guard -against BENCH_serve.json
