// Quickstart: build a reduced-scale synthetic Astra, cluster its logged
// correctable errors into faults, and print the headline numbers the paper
// reports — total CEs, the fault/error distinction, node concentration,
// and the DUE/FIT rate.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	astra "repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	// 432 nodes = 6 racks: big enough for every distribution to take
	// shape, small enough to run in a couple of seconds.
	ctx := context.Background()
	study, err := astra.Run(ctx, astra.Options{Seed: 1, Nodes: 432})
	if err != nil {
		log.Fatal(err)
	}
	r, err := study.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Astra memory-failure study (synthetic, 432 nodes) ===")
	fmt.Printf("correctable errors logged:   %s (plus %s lost to CE log space)\n",
		report.FormatCount(float64(r.Breakdown.Total)),
		report.FormatCount(float64(study.Dataset.EdacStats.Dropped)))
	fmt.Printf("distinct faults:             %s\n", report.FormatCount(float64(len(study.Faults))))
	fmt.Printf("errors per fault:            median %.0f, mean %.0f, max %s\n",
		r.ErrorsPerFault.Median, r.ErrorsPerFault.Mean,
		report.FormatCount(float64(r.ErrorsPerFault.Max)))
	fmt.Printf("nodes with >= 1 CE:          %d of %d (%s)\n",
		r.PerNode.NodesWithErrors, study.Options.Nodes,
		report.FormatPct(float64(r.PerNode.NodesWithErrors)/float64(study.Options.Nodes)))
	fmt.Printf("CE share of top 8 nodes:     %s\n", report.FormatPct(r.PerNode.TopShare8))
	fmt.Printf("DUEs: %d -> %.5f per DIMM-year (FIT %.0f)\n\n",
		r.Uncorrectable.DUEs, r.Uncorrectable.DUEsPerDIMMYear, r.Uncorrectable.FITPerDIMM)

	// The paper's core move: the same structure looks wildly non-uniform
	// in errors and uniform in faults.
	fmt.Println(report.Figure7(r.Structures))

	fmt.Println("full report: go run ./cmd/astrareport -nodes 432")
}
