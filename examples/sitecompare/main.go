// Sitecompare reproduces the §3.4 cross-site positional comparison: Astra
// (front-to-back cooling, no vertical gradient) against a Cielo/Jaguar-
// style system (Sridharan et al., SC'13: bottom-to-top airflow, ~20% more
// faults in top chassis). The same per-region fault analysis separates the
// two regimes, and the temperature profile explains why.
//
//	go run ./examples/sitecompare
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	const nodes = topology.Nodes // positional analyses need all 36 racks
	ctx := context.Background()
	for _, kind := range []baseline.Kind{baseline.Astra, baseline.Sridharan} {
		world, err := baseline.NewScenario(kind, 13, nodes).Generate(ctx)
		if err != nil {
			log.Fatal(err)
		}
		records, err := encode(world)
		if err != nil {
			log.Fatal(err)
		}
		faults, err := core.Cluster(ctx, records, core.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		pos := core.AnalyzePositional(records, faults)

		fmt.Printf("=== world: %v ===\n", kind)
		fmt.Print(report.Figure10(pos))

		// Region thermal profile (the paper's candidate explanation).
		month := simtime.MonthKey(simtime.EnvStart)
		var sums [topology.NumRegions]float64
		var counts [topology.NumRegions]int
		for n := 0; n < nodes; n += 9 {
			node := topology.NodeID(n)
			sums[node.Region()] += world.Env.MonthlyMean(node, topology.SensorDIMMACEG, month)
			counts[node.Region()]++
		}
		fmt.Printf("mean DIMM temperature by region: bottom %.1f °C, middle %.1f °C, top %.1f °C\n",
			sums[0]/float64(counts[0]), sums[1]/float64(counts[1]), sums[2]/float64(counts[2]))

		topBottom := ratio(pos.RegionFaults[topology.RegionTop], pos.RegionFaults[topology.RegionBottom])
		fmt.Printf("top/bottom fault ratio: %.2f (Sridharan et al. observed ~1.2 on Cielo)\n", topBottom)
		if cs, err := stats.ChiSquareUniform(pos.RegionFaults[:]); err == nil {
			verdict := "uniform (χ² does not reject)"
			if cs.PValue < 0.01 {
				verdict = "non-uniform (χ² rejects at 1%)"
			}
			fmt.Printf("fault distribution across regions: %s (p = %.3g)\n", verdict, cs.PValue)
		}
		fmt.Println()
	}
}

func encode(world *baseline.World) ([]mce.CERecord, error) {
	enc := mce.NewEncoder(world.Pop.Config.Seed)
	out := make([]mce.CERecord, len(world.Pop.CEs))
	for i, ev := range world.Pop.CEs {
		rec, err := enc.EncodeCE(ev, i)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
