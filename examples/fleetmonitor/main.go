// Fleetmonitor demonstrates the operational mitigations §3.2 recommends:
// page retirement for small-footprint faults and a fault-count-triggered
// node exclude list for the handful of machines that dominate the error
// counts. It clusters the logged error stream (as an online monitor
// would), evaluates both policies, and contrasts the paper-aligned
// fault-count trigger with the naive error-count trigger. It then feeds
// the stream into the live serving layer and polls /v1/atrisk — the
// predict-then-retire view an operator's dashboard would tail.
//
//	go run ./examples/fleetmonitor
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exclusion"
	"repro/internal/report"
	"repro/internal/retire"
	"repro/internal/serve"
	"repro/internal/simtime"
	"repro/internal/stream"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	cfg := dataset.DefaultConfig(7)
	cfg.Nodes = 432
	ctx := context.Background()
	ds, err := dataset.Build(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	faults, err := core.Cluster(ctx, ds.CERecords, core.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	end := simtime.MinuteOf(cfg.Fault.End)

	fmt.Println("=== fleet monitor: mitigations over the logged CE stream ===")
	fmt.Printf("input: %s CE records, %d clustered faults on %d nodes\n\n",
		report.FormatCount(float64(len(ds.CERecords))), len(faults), cfg.Nodes)

	// Page retirement over the raw event stream (the kernel sees events
	// before the log, so use ground-truth events for the engine).
	engine := retire.NewEngine(7, retire.DefaultPolicy())
	engine.Filter(ds.Pop.CEs)
	rs := engine.Stats()
	fmt.Printf("page retirement: %d pages retired (%s of memory), suppressing %s errors (%s)\n",
		rs.Retired, report.FormatCount(float64(rs.MemoryRetiredBytes())),
		report.FormatCount(float64(rs.Suppressed)),
		report.FormatPct(float64(rs.Suppressed)/float64(rs.Seen)))

	// Exclude-list policies: the paper-aligned fault trigger vs the naive
	// error trigger, at the same exclusion budget.
	for _, policy := range []exclusion.Policy{
		{Trigger: exclusion.ByFaults, FaultThreshold: 6, MaxExcluded: 12},
		{Trigger: exclusion.ByErrors, ErrorThreshold: 50, MaxExcluded: 12},
	} {
		out, err := exclusion.Evaluate(ds.CERecords, faults, policy, end)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nexclude list (%v, budget %d):\n", policy.Trigger, policy.MaxExcluded)
		fmt.Printf("  drained %d nodes, avoided %s errors at %.1f node-days lost (%.0f errors/node-day)\n",
			len(out.Excluded), report.FormatCount(float64(out.ErrorsAvoided)),
			out.NodeDaysLost, out.AvoidedPerNodeDay)
		var nodes []topology.NodeID
		for n := range out.Excluded {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		faultsPerNode := map[topology.NodeID]int{}
		for _, f := range faults {
			faultsPerNode[f.Node]++
		}
		for _, n := range nodes {
			fmt.Printf("  %s drained %s (%d clustered faults)\n",
				n, out.Excluded[n].Time().Format("2006-01-02"), faultsPerNode[n])
		}
	}
	fmt.Println("\nthe error trigger drains earlier but also flags single-fault nodes that")
	fmt.Println("page retirement already handles — count faults, not errors (§3.2).")

	atRisk(ds)
}

// atRisk feeds the logged stream into the live serving layer and polls
// /v1/atrisk over real HTTP — the same endpoint astrad serves — then
// prints the fleet's top banks by predicted failure risk.
func atRisk(ds *dataset.Dataset) {
	eng := stream.New(stream.Config{})
	eng.IngestBatch(ds.CERecords)
	srv := serve.New(serve.Config{Engine: eng})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/atrisk?limit=10")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var ar struct {
		Predictor string `json:"predictor"`
		Banks     int    `json:"banks"`
		AtRisk    []struct {
			Node      string  `json:"node"`
			Slot      string  `json:"slot"`
			Rank      int     `json:"rank"`
			Bank      int     `json:"bank"`
			Score     float64 `json:"score"`
			CEs       int     `json:"ces"`
			SpanHours float64 `json:"spanHours"`
			Words     int     `json:"words"`
		} `json:"atRisk"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n=== /v1/atrisk: top banks by predicted failure risk (%s, %d banks tracked) ===\n",
		ar.Predictor, ar.Banks)
	fmt.Println("rank  node            slot    rk bank  score   CEs     span    words")
	for i, e := range ar.AtRisk {
		fmt.Printf("%4d  %-15s %-7s %2d %4d  %.3f  %-6s %5.0fh  %5d\n",
			i+1, e.Node, e.Slot, e.Rank, e.Bank, e.Score,
			report.FormatCount(float64(e.CEs)), e.SpanHours, e.Words)
	}
	fmt.Println("\nbanks climbing the ladder here are the predict-then-retire candidates:")
	fmt.Println("retiring them before the DUE beats reacting after it (see astrapredict -mode payoff).")
}
