// Tempstudy reruns the paper's §3.3 temperature analysis over two worlds:
// the Astra-truth model (no temperature coupling, tight thermal control)
// and a Schroeder-style world where correctable-error rates double per
// 20 °C on a thermally loose fleet. The same decile analysis yields
// opposite verdicts, demonstrating that the paper's negative result is a
// property of the machine, not a blind spot of the method.
//
//	go run ./examples/tempstudy
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/report"
	"repro/internal/simtime"
)

const nodes = 432

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	for _, kind := range []baseline.Kind{baseline.Astra, baseline.Schroeder} {
		world, err := baseline.NewScenario(kind, 11, nodes).Generate(ctx)
		if err != nil {
			log.Fatal(err)
		}
		records, err := envWindowRecords(world)
		if err != nil {
			log.Fatal(err)
		}
		panels := core.AnalyzeTempDeciles(records, world.Env, nodes)
		fmt.Printf("=== world: %v (%d CEs in env window) ===\n", kind, len(records))
		fmt.Print(report.Figure13(panels))

		windows := core.AnalyzeTempWindows(records, world.Env, core.Fig9Windows)
		fmt.Print(report.Figure9(windows))
		fmt.Println()
	}
	fmt.Println("Astra-truth: no discernible trend across deciles (paper §3.3).")
	fmt.Println("Schroeder world: the identical analysis finds the injected doubling.")
}

func envWindowRecords(world *baseline.World) ([]mce.CERecord, error) {
	enc := mce.NewEncoder(world.Pop.Config.Seed)
	var out []mce.CERecord
	start := simtime.MinuteOf(simtime.EnvStart)
	end := simtime.MinuteOf(simtime.EnvEnd)
	for i, ev := range world.Pop.CEs {
		if ev.Minute < start || ev.Minute >= end {
			continue
		}
		rec, err := enc.EncodeCE(ev, i)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
