// Openrelease exercises the §2.4 open-data path end to end, entirely
// through files on disk: generate the release (syslog, sensor CSV,
// inventory scans), then — as an outside researcher would — parse the text
// artifacts back, re-derive Table 1 by diffing the scan files, re-run the
// fault clustering on the parsed records, and check the results agree with
// the in-memory pipeline. This is the workflow the paper's public dataset
// enables.
//
//	go run ./examples/openrelease
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/inventory"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "astra-release-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Publish ---
	ctx := context.Background()
	cfg := dataset.DefaultConfig(19)
	cfg.Nodes = 216 // three racks
	ds, err := dataset.Build(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Verify(); err != nil {
		log.Fatalf("release self-check: %v", err)
	}
	syslogPath := filepath.Join(dir, "astra-syslog.log")
	f, err := os.Create(syslogPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteSyslog(f, 250); err != nil {
		log.Fatal(err)
	}
	f.Close()

	scanDir := filepath.Join(dir, "scans")
	if err := os.MkdirAll(scanDir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := ds.Inventory.WriteScanSeries(cfg.Nodes, 1, func(day simtime.Day) (io.WriteCloser, error) {
		return os.Create(filepath.Join(scanDir, "scan-"+day.Time().Format("2006-01-02")+".txt"))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published release to %s\n", dir)

	// --- Consume, as an outsider ---
	lf, err := os.Open(syslogPath)
	if err != nil {
		log.Fatal(err)
	}
	ces, dues, hets, stats, err := dataset.ReadSyslog(lf)
	lf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed syslog: %d CE, %d DUE, %d HET records (%d malformed lines)\n",
		stats.CEs, len(dues), len(hets), stats.Malformed)

	faults, err := core.Cluster(ctx, ces, core.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %s errors into %d faults (median errors/fault %.0f)\n",
		report.FormatCount(float64(len(ces))), len(faults),
		core.ErrorsPerFaultDist(faults).Median)

	// Table 1 from the scan files alone.
	names, err := filepath.Glob(filepath.Join(scanDir, "scan-*.txt"))
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(names)
	readers := make([]io.Reader, len(names))
	closers := make([]*os.File, len(names))
	for i, name := range names {
		sf, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		readers[i] = sf
		closers[i] = sf
	}
	detected, err := inventory.DiffScanSeries(readers)
	for _, c := range closers {
		c.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
	truth := ds.Inventory.Totals()
	fmt.Println("\nTable 1 re-derived from the scan files:")
	for k := inventory.Kind(0); k < inventory.NumKinds; k++ {
		fmt.Printf("  %-12s scan-diff %4d vs ground truth %4d\n", k, detected[k], truth[k])
	}

	// Cross-check against the in-memory pipeline.
	memFaults, err := core.Cluster(ctx, ds.CERecords, core.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-check: text-path faults %d vs memory-path faults %d (equal: %v)\n",
		len(faults), len(memFaults), len(faults) == len(memFaults))
}
