package astra_test

// Pipeline-stage benchmarks: each stage at the serial (workers=1) and
// auto (workers=GOMAXPROCS) settings, sharing one fixture. This file is
// an external test package because it imports internal/benchstage, which
// itself imports the root package.
//
//	ASTRA_BENCH_NODES=256 go test -run '^$' -bench 'Stage' -benchmem .

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/benchstage"
)

var (
	stageOnce sync.Once
	stageSet  *benchstage.Set
	stageErr  error
)

func stageSetup(b *testing.B) *benchstage.Set {
	b.Helper()
	stageOnce.Do(func() {
		stageSet, stageErr = benchstage.New(context.Background(), 1, benchstage.Nodes())
	})
	if stageErr != nil {
		b.Fatal(stageErr)
	}
	return stageSet
}

func findStage(b *testing.B, name string) *benchstage.Stage {
	b.Helper()
	set := stageSetup(b)
	for i := range set.Stages {
		if set.Stages[i].Name == name {
			return &set.Stages[i]
		}
	}
	b.Fatalf("unknown stage %q", name)
	return nil
}

func runStage(b *testing.B, stage *benchstage.Stage, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stage.Op(workers)
	}
	b.ReportMetric(float64(stage.Records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	if stage.Bytes > 0 {
		b.ReportMetric(float64(stage.Bytes)/1e6*float64(b.N)/b.Elapsed().Seconds(), "MB/s")
	}
}

func benchStage(b *testing.B, name string) {
	stage := findStage(b, name)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"auto", 0}} {
		b.Run(bench.name, func(b *testing.B) { runStage(b, stage, bench.workers) })
	}
}

// benchStageSweep runs a stage across an explicit worker-count ladder so
// the scaling curve of a parallelized layer is visible release to
// release, not just its serial/auto endpoints.
func benchStageSweep(b *testing.B, name string, workerCounts []int) {
	stage := findStage(b, name)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { runStage(b, stage, w) })
	}
}

func BenchmarkStageGenerate(b *testing.B)     { benchStage(b, "generate") }
func BenchmarkStageDatasetBuild(b *testing.B) { benchStage(b, "dataset-build") }
func BenchmarkStageParse(b *testing.B)        { benchStage(b, "parse") }
func BenchmarkStageCluster(b *testing.B)      { benchStage(b, "cluster") }
func BenchmarkStageReport(b *testing.B)       { benchStage(b, "report") }

// The sharded online path: stream-ingest sweeps the partition ladder
// (workers = partitions; 1 is the serial engine), and fanin-merge tracks
// the fleet-view aggregation cost against the same ladder.
func BenchmarkStageStreamIngest(b *testing.B) {
	benchStageSweep(b, "stream-ingest", []int{1, 4, 8})
}
func BenchmarkStageFaninMerge(b *testing.B) {
	benchStageSweep(b, "fanin-merge", []int{1, 4, 8})
}
func BenchmarkStageAdmission(b *testing.B) { benchStage(b, "admission") }

// The prediction layer's ingest-path overhead: per-record feature
// updates on a warm tracker. Serial only — feature extraction is
// arrival-ordered by design. Expected 0 allocs/op.
func BenchmarkStagePredictFeatures(b *testing.B) {
	stage := findStage(b, "predict-features")
	b.Run("serial", func(b *testing.B) { runStage(b, stage, 1) })
}

// The block-parallel scanner and the columnar replay: the two ingest
// paths the text parse stage above is the baseline for.
func BenchmarkStageParseParallel(b *testing.B) {
	benchStageSweep(b, "parse-parallel", []int{1, 2, 4, 8})
}
func BenchmarkStageColfmtReplay(b *testing.B) { benchStage(b, "colfmt-replay") }

// Analyze sweeps a worker ladder: its per-node and bit/address layers
// are parallelized, so the curve matters, not just the endpoints.
func BenchmarkStageAnalyze(b *testing.B) {
	benchStageSweep(b, "analyze", []int{1, 2, 4, 8})
}
