package astra_test

// Pipeline-stage benchmarks: each stage at the serial (workers=1) and
// auto (workers=GOMAXPROCS) settings, sharing one fixture. This file is
// an external test package because it imports internal/benchstage, which
// itself imports the root package.
//
//	ASTRA_BENCH_NODES=256 go test -run '^$' -bench 'Stage' -benchmem .

import (
	"context"
	"sync"
	"testing"

	"repro/internal/benchstage"
)

var (
	stageOnce sync.Once
	stageSet  *benchstage.Set
	stageErr  error
)

func stageSetup(b *testing.B) *benchstage.Set {
	b.Helper()
	stageOnce.Do(func() {
		stageSet, stageErr = benchstage.New(context.Background(), 1, benchstage.Nodes())
	})
	if stageErr != nil {
		b.Fatal(stageErr)
	}
	return stageSet
}

func benchStage(b *testing.B, name string) {
	set := stageSetup(b)
	var stage *benchstage.Stage
	for i := range set.Stages {
		if set.Stages[i].Name == name {
			stage = &set.Stages[i]
			break
		}
	}
	if stage == nil {
		b.Fatalf("unknown stage %q", name)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"auto", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stage.Op(bench.workers)
			}
			b.ReportMetric(float64(stage.Records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func BenchmarkStageGenerate(b *testing.B)     { benchStage(b, "generate") }
func BenchmarkStageDatasetBuild(b *testing.B) { benchStage(b, "dataset-build") }
func BenchmarkStageParse(b *testing.B)        { benchStage(b, "parse") }
func BenchmarkStageCluster(b *testing.B)      { benchStage(b, "cluster") }
func BenchmarkStageStreamIngest(b *testing.B) { benchStage(b, "stream-ingest") }
func BenchmarkStageAdmission(b *testing.B)    { benchStage(b, "admission") }
func BenchmarkStageAnalyze(b *testing.B)      { benchStage(b, "analyze") }
func BenchmarkStageReport(b *testing.B)       { benchStage(b, "report") }
