package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
)

// tinyScenario is a sub-second overloaded run: throttled drain forces
// shedding, a fully stalling disk forces the checkpoint breaker open,
// slow clients probe the server timeouts.
func tinyScenario() Scenario {
	return Scenario{
		Seed: 5, Nodes: 24, Sites: 1, Partitions: 1,
		DurationSec: 0.4, IngestRate: 30000,
		BurstFactor: 2, BurstAtSec: 0.1, BurstForSec: 0.1,
		APIClients: 2, APIQPS: 100, SlowClients: 1,
		QueueDepth: 1024, QueueHigh: 512, QueueLow: 128,
		ShedPolicy: "reject", DrainBatch: 64, DrainIntervalMS: 3,
		DiskStallP: 1, DiskStallMS: 60,
		CheckpointEveryMS: 30, CheckpointTimeoutMS: 10,
	}
}

// TestHarnessOverloadContract runs the full chaos stack once and checks
// every acceptance property the harness exists to prove.
func TestHarnessOverloadContract(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	res, err := tinyScenario().Run(context.Background(), logger)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InvariantOK {
		t.Fatalf("offered %d != ingested %d + shed %d", res.Offered, res.Ingested, res.Shed)
	}
	if !res.DifferentialOK {
		t.Fatal("stream answer diverged from batch clustering under overload")
	}
	if res.Shed == 0 || res.Saturations == 0 {
		t.Fatalf("throttled drain never saturated: shed=%d saturations=%d depth=%d",
			res.Shed, res.Saturations, res.Scenario.QueueDepth)
	}
	if res.API.Requests == 0 {
		t.Fatal("API herd made no requests")
	}
	if res.API.Errors != 0 {
		t.Fatalf("API herd saw %d hard errors", res.API.Errors)
	}
	if res.API.P99Ms <= 0 || res.API.P50Ms > res.API.P99Ms {
		t.Fatalf("latency distribution nonsense: p50=%v p99=%v", res.API.P50Ms, res.API.P99Ms)
	}
	if res.SlowKilled == 0 {
		t.Fatal("server timeouts never cut a slow client")
	}
	// Every stall exceeds the checkpoint timeout, so the breaker must
	// engage: failures counted, and once open, checkpoints skipped.
	if res.Checkpoints.BreakerOpens == 0 {
		t.Fatalf("stalling disk never opened the breaker: %+v", res.Checkpoints)
	}
	if res.RecoveryMs < 0 {
		t.Fatalf("negative recovery: %v", res.RecoveryMs)
	}
}

// TestHarnessCalmRun: with ample drain capacity nothing sheds and the
// differential still holds — the harness can tell a healthy stack from
// an overloaded one.
func TestHarnessCalmRun(t *testing.T) {
	sc := tinyScenario()
	sc.IngestRate = 5000
	sc.DrainBatch = 1024
	sc.DrainIntervalMS = 0
	sc.DiskStallP = 0
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	res, err := sc.Run(context.Background(), logger)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InvariantOK || !res.DifferentialOK {
		t.Fatalf("calm run broke the contract: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("calm run shed %d records", res.Shed)
	}
	if res.Checkpoints.Written == 0 {
		t.Fatal("healthy disk wrote no checkpoints")
	}
}

// TestHarnessMultiSiteFederation runs the federated topology: two sites
// with distinct seeds, partitioned engines, per-site accounting rows,
// and the conditional-GET fast path measured.
func TestHarnessMultiSiteFederation(t *testing.T) {
	sc := tinyScenario()
	sc.Sites = 2
	sc.Partitions = 2
	sc.IngestRate = 5000
	sc.DrainBatch = 1024
	sc.DrainIntervalMS = 0
	sc.DiskStallP = 0
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	res, err := sc.Run(context.Background(), logger)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InvariantOK || !res.DifferentialOK {
		t.Fatalf("federated run broke the contract: %+v", res)
	}
	if len(res.Sites) != 2 {
		t.Fatalf("got %d site rows, want 2", len(res.Sites))
	}
	var offered, ingested, shed uint64
	for _, site := range res.Sites {
		if site.Offered == 0 || site.Ingested == 0 {
			t.Fatalf("site %s saw no traffic: %+v", site.ID, site)
		}
		offered += site.Offered
		ingested += site.Ingested
		shed += site.Shed
	}
	if offered != res.Offered || ingested != res.Ingested || shed != res.Shed {
		t.Fatalf("site rows don't sum to totals: %+v vs offered=%d ingested=%d shed=%d",
			res.Sites, res.Offered, res.Ingested, res.Shed)
	}
	if res.API.NotModified == 0 {
		t.Fatal("conditional GETs never hit the 304 fast path")
	}
	if res.API.CachedP99Ms <= 0 {
		t.Fatalf("cached p99 not measured: %+v", res.API)
	}
	if res.API.Errors != 0 {
		t.Fatalf("API herd saw %d hard errors", res.API.Errors)
	}
}

// TestExpectedShedRate pins the configured-rate derivation the guard
// compares against: an unthrottled drain expects zero shed; a throttled
// one expects the oversupply fraction; capacity absorbs its share.
func TestExpectedShedRate(t *testing.T) {
	sc := tinyScenario()
	sc.DrainIntervalMS = 0
	if got := sc.expectedShedRate(); got != 0 {
		t.Fatalf("unthrottled expectedShedRate = %v, want 0", got)
	}
	sc = tinyScenario()
	got := sc.expectedShedRate()
	// offered = 30000*0.4 + 1*30000*0.1 = 15000; drain = 64/0.003*0.4 ≈
	// 8533; absorbed ≈ 8533+1024 = 9557 → expect ≈ 0.36 shed.
	if got <= 0.2 || got >= 0.6 {
		t.Fatalf("throttled expectedShedRate = %v, want ~0.36", got)
	}
	// Doubling the sites doubles drain+queue capacity: expectation drops.
	sc.Sites = 2
	if got2 := sc.expectedShedRate(); got2 >= got {
		t.Fatalf("two-site expectedShedRate %v not below single-site %v", got2, got)
	}
}

// TestCLIWriteAndGuard drives the binary's entry point: write a
// baseline, then guard against it — the same machine moments later must
// pass its own baseline.
func TestCLIWriteAndGuard(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	sc := tinyScenario()
	args := []string{
		"-seed", "5", "-nodes", "24", "-duration", "0.4", "-ingest-rate", "30000",
		"-burst-factor", "2", "-burst-at", "0.1", "-burst-for", "0.1",
		"-api-clients", "2", "-api-qps", "100", "-slow-clients", "1",
		"-queue-depth", "1024", "-queue-high", "512", "-queue-low", "128",
		"-drain-batch", "64", "-drain-interval", "3",
		"-disk-stall", "1", "-disk-stall-for", "60",
		"-checkpoint-every", "30", "-checkpoint-timeout", "10",
		"-out", out,
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("write run exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var base Result
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("baseline not valid JSON: %v", err)
	}
	if base.Scenario != sc {
		t.Fatalf("baseline scenario echo = %+v, want %+v", base.Scenario, sc)
	}

	stdout.Reset()
	stderr.Reset()
	// Generous tolerances: the guard test proves plumbing, not the
	// machine's run-to-run timing stability.
	if code := run([]string{"-guard", "-against", out, "-tolerance", "5", "-p99-slack", "100", "-shed-slack", "0.5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("guard exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	// A corrupt baseline must fail loudly, not pass silently.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-guard", "-against", bad}, &stdout, &stderr); code == 0 {
		t.Fatal("guard accepted a corrupt baseline")
	}
}
