package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/iofault"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Scenario pins one load/chaos run. Every field lands in the result so
// a baseline is self-describing and `-guard` can re-run it exactly.
type Scenario struct {
	Seed  uint64 `json:"seed"`
	Nodes int    `json:"nodes"`
	// DurationSec is the load phase length; IngestRate is the sustained
	// offer rate in records/s, multiplied by BurstFactor inside the
	// burst window [BurstAtSec, BurstAtSec+BurstForSec).
	DurationSec float64 `json:"durationSec"`
	IngestRate  int     `json:"ingestRate"`
	BurstFactor float64 `json:"burstFactor"`
	BurstAtSec  float64 `json:"burstAtSec"`
	BurstForSec float64 `json:"burstForSec"`
	// API load: APIClients goroutines sharing APIQPS requests/s across
	// the read endpoints, plus SlowClients that trickle bytes to prove
	// the server's timeouts cut them off.
	APIClients  int `json:"apiClients"`
	APIQPS      int `json:"apiQPS"`
	SlowClients int `json:"slowClients"`
	// Admission queue shape.
	QueueDepth      int     `json:"queueDepth"`
	QueueHigh       int     `json:"queueHigh"`
	QueueLow        int     `json:"queueLow"`
	ShedPolicy      string  `json:"shedPolicy"`
	DrainBatch      int     `json:"drainBatch"`
	DrainIntervalMS float64 `json:"drainIntervalMS"`
	// Disk chaos: checkpoint writes stall with probability DiskStallP
	// for DiskStallMS; writes slower than CheckpointTimeoutMS count as
	// breaker failures.
	DiskStallP          float64 `json:"diskStallP"`
	DiskStallMS         float64 `json:"diskStallMS"`
	CheckpointEveryMS   float64 `json:"checkpointEveryMS"`
	CheckpointTimeoutMS float64 `json:"checkpointTimeoutMS"`
}

// APIStats aggregates the read-side experience under load.
type APIStats struct {
	Requests uint64  `json:"requests"`
	Rejected uint64  `json:"rejected"` // 503s: explicit shed, not failure
	Errors   uint64  `json:"errors"`   // transport errors and 5xx
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
}

// CheckpointStats aggregates the breaker-guarded checkpoint path.
type CheckpointStats struct {
	Written      uint64 `json:"written"`
	Skipped      uint64 `json:"skipped"`
	BreakerOpens uint64 `json:"breakerOpens"`
}

// Result is one astraload run: the scenario echoed, the accounting, and
// the verdicts. BENCH_serve.json is exactly this document.
type Result struct {
	Scenario Scenario `json:"scenario"`

	Offered  uint64  `json:"offered"`
	Ingested uint64  `json:"ingested"`
	Shed     uint64  `json:"shed"`
	ShedRate float64 `json:"shedRate"`
	// InvariantOK: offered == ingested + shed, exactly, and the engine's
	// own shed ledger agrees with the queue's.
	InvariantOK bool `json:"invariantOK"`
	// DifferentialOK: the engine's final fault population equals a batch
	// clustering of exactly the records it ingested.
	DifferentialOK bool `json:"differentialOK"`
	Faults         int  `json:"faults"`

	Saturations uint64 `json:"saturations"`
	// RecoveryMs is how long after the load stopped the backlog took to
	// drain to empty.
	RecoveryMs float64 `json:"recoveryMs"`

	API         APIStats        `json:"api"`
	SlowKilled  uint64          `json:"slowKilled"`
	Checkpoints CheckpointStats `json:"checkpoints"`
}

// Run executes the scenario end to end against a real HTTP server on a
// loopback listener.
func (sc Scenario) Run(ctx context.Context, logger *slog.Logger) (Result, error) {
	var res Result
	res.Scenario = sc
	policy, err := overload.ParsePolicy(sc.ShedPolicy)
	if err != nil {
		return res, err
	}
	ds, err := dataset.Build(ctx, func() dataset.Config {
		cfg := dataset.DefaultConfig(sc.Seed)
		cfg.Nodes = sc.Nodes
		return cfg
	}())
	if err != nil {
		return res, err
	}
	if len(ds.CERecords) == 0 {
		return res, fmt.Errorf("astraload: dataset produced no CE records")
	}

	engine := stream.New(stream.Config{DIMMs: sc.Nodes * topology.SlotsPerNode})
	queue := overload.NewQueue[mce.CERecord](overload.Config{
		Capacity: sc.QueueDepth,
		High:     sc.QueueHigh,
		Low:      sc.QueueLow,
		Policy:   policy,
		OnShed:   func(n int) { engine.NoteShed(n) },
	})
	breaker := overload.NewBreaker(overload.BreakerConfig{
		Failures: 2,
		Cooldown: 250 * time.Millisecond,
	})

	srv := serve.New(serve.Config{
		Engine: engine,
		Logger: logger,
		Overload: func() overload.Status {
			return overload.Status{Queue: queue.Stats(), Breaker: breaker.Stats()}
		},
		MaxConcurrent:  32,
		RequestTimeout: 2 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 500 * time.Millisecond,
		ReadTimeout:       2 * time.Second,
		WriteTimeout:      2 * time.Second,
		IdleTimeout:       10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	addr := ln.Addr().String()

	// Drainer: queue -> engine, pausing after Done so Freeze and the
	// checkpoint path never wait out the throttle.
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for {
			batch, ok := queue.Take(sc.DrainBatch)
			if len(batch) > 0 {
				engine.IngestBatch(batch)
				queue.Done()
				if sc.DrainIntervalMS > 0 {
					time.Sleep(time.Duration(sc.DrainIntervalMS * float64(time.Millisecond)))
				}
			}
			if !ok {
				return
			}
		}
	}()

	// Chaos-checkpoint loop: periodic snapshots through a stalling disk,
	// gated by the breaker so the stalls degrade cadence, never ingest.
	stateDir, err := os.MkdirTemp("", "astraload")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(stateDir)
	fsys := iofault.New(atomicio.OS, iofault.Config{
		Seed:       sc.Seed,
		StallWrite: sc.DiskStallP,
		Stall:      time.Duration(sc.DiskStallMS * float64(time.Millisecond)),
	})
	cpCtx, cpStop := context.WithCancel(ctx)
	cpDone := make(chan struct{})
	var cpWritten, cpSkipped atomic.Uint64
	go func() {
		defer close(cpDone)
		path := filepath.Join(stateDir, "astraload.state")
		timeout := time.Duration(sc.CheckpointTimeoutMS * float64(time.Millisecond))
		tick := time.NewTicker(time.Duration(sc.CheckpointEveryMS * float64(time.Millisecond)))
		defer tick.Stop()
		for {
			select {
			case <-cpCtx.Done():
				return
			case <-tick.C:
			}
			if !breaker.Allow() {
				cpSkipped.Add(1)
				continue
			}
			var payload []byte
			queue.Freeze(func(queued []mce.CERecord, st overload.QueueStats) {
				payload, _ = json.Marshal(struct {
					Records int                 `json:"records"`
					Queued  int                 `json:"queued"`
					Stats   overload.QueueStats `json:"stats"`
				}{engine.Summary().Records, len(queued), st})
			})
			start := time.Now()
			_, werr := atomicio.WriteFile(context.Background(), fsys, path, func(w io.Writer) error {
				_, e := w.Write(payload)
				return e
			})
			if werr != nil || (timeout > 0 && time.Since(start) > timeout) {
				breaker.Failure()
			} else {
				breaker.Success()
				cpWritten.Add(1)
			}
		}
	}()

	// API herd.
	apiCtx, apiStop := context.WithCancel(ctx)
	var apiWG sync.WaitGroup
	var apiRejected, apiErrors, slowKilled atomic.Uint64
	latencies := make([][]float64, sc.APIClients)
	endpoints := []string{"/v1/breakdown", "/v1/faults", "/v1/fit", "/healthz"}
	client := &http.Client{Timeout: 5 * time.Second}
	for c := 0; c < sc.APIClients; c++ {
		c := c
		perClient := sc.APIQPS / max(sc.APIClients, 1)
		if perClient <= 0 {
			perClient = 1
		}
		apiWG.Add(1)
		go func() {
			defer apiWG.Done()
			tick := time.NewTicker(time.Second / time.Duration(perClient))
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-apiCtx.Done():
					return
				case <-tick.C:
				}
				start := time.Now()
				resp, err := client.Get("http://" + addr + endpoints[i%len(endpoints)])
				if err != nil {
					apiErrors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[c] = append(latencies[c], float64(time.Since(start).Microseconds())/1000)
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					apiRejected.Add(1)
				case resp.StatusCode >= 500:
					apiErrors.Add(1)
				}
			}
		}()
	}

	// Slow clients: trickle half a request and hold; the server's
	// header timeout must cut the connection, not a human.
	for s := 0; s < sc.SlowClients; s++ {
		apiWG.Add(1)
		go func() {
			defer apiWG.Done()
			for apiCtx.Err() == nil {
				conn, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					continue
				}
				fmt.Fprintf(conn, "GET /v1/faults HTTP/1.1\r\nHost: astraload\r\n")
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				buf := make([]byte, 1)
				if _, err := conn.Read(buf); err != nil {
					// Connection cut without a response: the timeout won.
					slowKilled.Add(1)
				}
				conn.Close()
			}
		}()
	}

	// Producer: paced offers with the burst window, record times shifted
	// forward on every pool wrap so event time stays monotonic.
	duration := time.Duration(sc.DurationSec * float64(time.Second))
	burstAt := time.Duration(sc.BurstAtSec * float64(time.Second))
	burstEnd := burstAt + time.Duration(sc.BurstForSec*float64(time.Second))
	pool := ds.CERecords
	var minT, maxT time.Time
	for _, r := range pool {
		if minT.IsZero() || r.Time.Before(minT) {
			minT = r.Time
		}
		if r.Time.After(maxT) {
			maxT = r.Time
		}
	}
	span := maxT.Sub(minT) + time.Minute
	idx, wrap := 0, 0
	next := func() mce.CERecord {
		r := pool[idx]
		if wrap > 0 {
			r.Time = r.Time.Add(time.Duration(wrap) * span)
		}
		idx++
		if idx == len(pool) {
			idx = 0
			wrap++
		}
		return r
	}
	var sent float64
	start := time.Now()
	tick := time.NewTicker(2 * time.Millisecond)
	for ctx.Err() == nil {
		<-tick.C
		elapsed := time.Since(start)
		if elapsed > duration {
			elapsed = duration
		}
		target := float64(sc.IngestRate) * elapsed.Seconds()
		if sc.BurstFactor > 1 && elapsed > burstAt {
			be := elapsed
			if be > burstEnd {
				be = burstEnd
			}
			target += (sc.BurstFactor - 1) * float64(sc.IngestRate) * (be - burstAt).Seconds()
		}
		for sent < target {
			queue.Offer(next())
			sent++
		}
		if elapsed >= duration {
			break
		}
	}
	tick.Stop()
	loadEnd := time.Now()
	if err := ctx.Err(); err != nil {
		apiStop()
		cpStop()
		queue.Close()
		<-drainDone
		return res, err
	}

	// Load is off: measure recovery (backlog drain to empty), then stop
	// everything in dependency order.
	queue.Close()
	<-drainDone
	res.RecoveryMs = float64(time.Since(loadEnd).Microseconds()) / 1000
	apiStop()
	cpStop()
	apiWG.Wait()
	<-cpDone

	// Books.
	qs := queue.Stats()
	sum := engine.Summary()
	res.Offered = qs.Offered
	res.Ingested = uint64(sum.Records)
	res.Shed = qs.Shed
	if qs.Offered > 0 {
		res.ShedRate = float64(qs.Shed) / float64(qs.Offered)
	}
	res.Saturations = qs.Saturations
	res.InvariantOK = qs.Offered == res.Ingested+qs.Shed && engine.Shed() == qs.Shed
	res.Faults = sum.Faults

	// Differential: batch-cluster exactly what the engine ingested.
	batch, err := core.Cluster(ctx, engine.Records(), core.DefaultClusterConfig())
	if err != nil {
		return res, err
	}
	wantBreak := core.BreakdownByMode(engine.Records(), batch)
	res.DifferentialOK = sum.Faults == len(batch) &&
		sum.FaultsByMode == wantBreak.FaultsByMode &&
		sum.ErrorsByMode == wantBreak.ErrorsByMode

	// Latency distribution.
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	res.API = APIStats{
		Requests: uint64(len(all)),
		Rejected: apiRejected.Load(),
		Errors:   apiErrors.Load(),
		P50Ms:    percentile(all, 0.50),
		P99Ms:    percentile(all, 0.99),
	}
	res.SlowKilled = slowKilled.Load()
	res.Checkpoints = CheckpointStats{
		Written:      cpWritten.Load(),
		Skipped:      cpSkipped.Load(),
		BreakerOpens: breaker.Stats().Opens,
	}
	return res, nil
}

// percentile reads q from an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
