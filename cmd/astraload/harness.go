package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/iofault"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Scenario pins one load/chaos run. Every field lands in the result so
// a baseline is self-describing and `-guard` can re-run it exactly.
type Scenario struct {
	Seed  uint64 `json:"seed"`
	Nodes int    `json:"nodes"`
	// Sites is the number of federated sites served from one stack (1 =
	// the classic single-fleet arrangement). Site i's dataset uses seed
	// Seed+i, so the fleets are distinct populations. Partitions shards
	// each site's engine by node hash.
	Sites      int `json:"sites"`
	Partitions int `json:"partitions"`
	// DurationSec is the load phase length; IngestRate is the sustained
	// offer rate in records/s across all sites, multiplied by BurstFactor
	// inside the burst window [BurstAtSec, BurstAtSec+BurstForSec).
	DurationSec float64 `json:"durationSec"`
	IngestRate  int     `json:"ingestRate"`
	BurstFactor float64 `json:"burstFactor"`
	BurstAtSec  float64 `json:"burstAtSec"`
	BurstForSec float64 `json:"burstForSec"`
	// API load: APIClients goroutines sharing APIQPS requests/s across
	// the read endpoints, plus SlowClients that trickle bytes to prove
	// the server's timeouts cut them off. Every other request is
	// conditional (If-None-Match with the last seen ETag), measuring the
	// 304 fast path alongside the rendered path.
	APIClients  int `json:"apiClients"`
	APIQPS      int `json:"apiQPS"`
	SlowClients int `json:"slowClients"`
	// Admission queue shape (per site).
	QueueDepth      int     `json:"queueDepth"`
	QueueHigh       int     `json:"queueHigh"`
	QueueLow        int     `json:"queueLow"`
	ShedPolicy      string  `json:"shedPolicy"`
	DrainBatch      int     `json:"drainBatch"`
	DrainIntervalMS float64 `json:"drainIntervalMS"`
	// Disk chaos: checkpoint writes stall with probability DiskStallP
	// for DiskStallMS; writes slower than CheckpointTimeoutMS count as
	// breaker failures.
	DiskStallP          float64 `json:"diskStallP"`
	DiskStallMS         float64 `json:"diskStallMS"`
	CheckpointEveryMS   float64 `json:"checkpointEveryMS"`
	CheckpointTimeoutMS float64 `json:"checkpointTimeoutMS"`
	// Recovery, when set, runs the kill+corrupt+rotate recovery scenario
	// after the load phase (see recovery.go) and lands its verdict in
	// Result.Recovery, so the baseline also pins crash-recovery
	// convergence.
	Recovery *RecoverySpec `json:"recovery,omitempty"`
}

// sites returns the effective site count (min 1).
func (sc Scenario) sites() int {
	if sc.Sites < 1 {
		return 1
	}
	return sc.Sites
}

// expectedShedRate derives the shed fraction the scenario's own
// parameters force, independent of any measured baseline: offered load
// beyond what the throttled drainers can absorb plus the queues'
// capacity must shed. The guard compares against this configured rate,
// so editing the scenario moves the limit with it instead of tripping
// on a stale absolute value.
func (sc Scenario) expectedShedRate() float64 {
	offered := float64(sc.IngestRate) * sc.DurationSec
	if sc.BurstFactor > 1 {
		offered += (sc.BurstFactor - 1) * float64(sc.IngestRate) * sc.BurstForSec
	}
	if offered <= 0 {
		return 0
	}
	if sc.DrainIntervalMS <= 0 {
		return 0 // unthrottled drainers: nothing should shed
	}
	drainPerSec := float64(sc.DrainBatch) / (sc.DrainIntervalMS / 1000)
	absorbed := drainPerSec*sc.DurationSec*float64(sc.sites()) + float64(sc.QueueDepth*sc.sites())
	if absorbed >= offered {
		return 0
	}
	return (offered - absorbed) / offered
}

// APIStats aggregates the read-side experience under load. The herd
// interleaves plain GETs (the rendered/cached-200 path) with
// conditional GETs replaying the last ETag; P50/P99 cover the former,
// CachedP50/CachedP99 the 304 fast path.
type APIStats struct {
	Requests    uint64  `json:"requests"`
	Rejected    uint64  `json:"rejected"` // 503s: explicit shed, not failure
	Errors      uint64  `json:"errors"`   // transport errors and 5xx
	NotModified uint64  `json:"notModified"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
	CachedP50Ms float64 `json:"cachedP50Ms"`
	CachedP99Ms float64 `json:"cachedP99Ms"`
}

// CheckpointStats aggregates the breaker-guarded checkpoint path.
type CheckpointStats struct {
	Written      uint64 `json:"written"`
	Skipped      uint64 `json:"skipped"`
	BreakerOpens uint64 `json:"breakerOpens"`
}

// SiteResult is one site's ingest/shed accounting row.
type SiteResult struct {
	ID       string  `json:"id"`
	Offered  uint64  `json:"offered"`
	Ingested uint64  `json:"ingested"`
	Shed     uint64  `json:"shed"`
	ShedRate float64 `json:"shedRate"`
	Faults   int     `json:"faults"`
}

// Result is one astraload run: the scenario echoed, the accounting, and
// the verdicts. BENCH_serve.json is exactly this document.
type Result struct {
	Scenario Scenario `json:"scenario"`

	Offered  uint64  `json:"offered"`
	Ingested uint64  `json:"ingested"`
	Shed     uint64  `json:"shed"`
	ShedRate float64 `json:"shedRate"`
	// InvariantOK: offered == ingested + shed, exactly and per site, and
	// every engine's own shed ledger agrees with its queue's.
	InvariantOK bool `json:"invariantOK"`
	// DifferentialOK: each engine's final fault population equals a batch
	// clustering of exactly the records it ingested.
	DifferentialOK bool `json:"differentialOK"`
	Faults         int  `json:"faults"`

	Saturations uint64 `json:"saturations"`
	// RecoveryMs is how long after the load stopped the backlog took to
	// drain to empty.
	RecoveryMs float64 `json:"recoveryMs"`

	API         APIStats        `json:"api"`
	SlowKilled  uint64          `json:"slowKilled"`
	Checkpoints CheckpointStats `json:"checkpoints"`
	Sites       []SiteResult    `json:"sites,omitempty"`
	// Recovery is the kill+corrupt+rotate scenario's verdict, present
	// exactly when Scenario.Recovery is set.
	Recovery *RecoveryResult `json:"recovery,omitempty"`
}

// siteStack is one site's serving stack inside the harness: dataset
// pool, partitioned engine, admission queue, and producer cursor.
type siteStack struct {
	id     string
	engine *stream.Sharded
	queue  *overload.Queue[mce.CERecord]

	pool      []mce.CERecord
	span      time.Duration
	idx, wrap int
}

// next returns the site's next paced record, shifting event time forward
// on every pool wrap so it stays monotonic.
func (st *siteStack) next() mce.CERecord {
	r := st.pool[st.idx]
	if st.wrap > 0 {
		r.Time = r.Time.Add(time.Duration(st.wrap) * st.span)
	}
	st.idx++
	if st.idx == len(st.pool) {
		st.idx = 0
		st.wrap++
	}
	return r
}

// Run executes the scenario end to end against a real HTTP server on a
// loopback listener.
func (sc Scenario) Run(ctx context.Context, logger *slog.Logger) (Result, error) {
	var res Result
	res.Scenario = sc
	policy, err := overload.ParsePolicy(sc.ShedPolicy)
	if err != nil {
		return res, err
	}

	nSites := sc.sites()
	stacks := make([]*siteStack, nSites)
	for i := range stacks {
		ds, err := dataset.Build(ctx, func() dataset.Config {
			cfg := dataset.DefaultConfig(sc.Seed + uint64(i))
			cfg.Nodes = sc.Nodes
			return cfg
		}())
		if err != nil {
			return res, err
		}
		if len(ds.CERecords) == 0 {
			return res, fmt.Errorf("astraload: site %d dataset produced no CE records", i)
		}
		st := &siteStack{
			id: fmt.Sprintf("site-%d", i),
			engine: stream.NewSharded(stream.ShardedConfig{
				Partitions: sc.Partitions,
				Engine:     stream.Config{DIMMs: sc.Nodes * topology.SlotsPerNode},
			}),
			pool: ds.CERecords,
		}
		st.queue = overload.NewQueue[mce.CERecord](overload.Config{
			Capacity: sc.QueueDepth,
			High:     sc.QueueHigh,
			Low:      sc.QueueLow,
			Policy:   policy,
			OnShed:   func(n int) { st.engine.NoteShed(n) },
		})
		var minT, maxT time.Time
		for _, r := range st.pool {
			if minT.IsZero() || r.Time.Before(minT) {
				minT = r.Time
			}
			if r.Time.After(maxT) {
				maxT = r.Time
			}
		}
		st.span = maxT.Sub(minT) + time.Minute
		stacks[i] = st
	}

	breaker := overload.NewBreaker(overload.BreakerConfig{
		Failures: 2,
		Cooldown: 250 * time.Millisecond,
	})

	srvSites := make([]serve.Site, nSites)
	for i, st := range stacks {
		srvSites[i] = serve.Site{ID: st.id, Source: st.engine}
	}
	srv := serve.New(serve.Config{
		Sites:  srvSites,
		Logger: logger,
		Overload: func() overload.Status {
			var q overload.QueueStats
			for _, st := range stacks {
				qs := st.queue.Stats()
				q.Offered += qs.Offered
				q.Admitted += qs.Admitted
				q.Drained += qs.Drained
				q.Rejected += qs.Rejected
				q.Evicted += qs.Evicted
				q.Shed += qs.Shed
				q.Depth += qs.Depth
				q.Capacity += qs.Capacity
				q.Saturated = q.Saturated || qs.Saturated
				q.Saturations += qs.Saturations
			}
			return overload.Status{Queue: q, Breaker: breaker.Stats()}
		},
		MaxConcurrent:  32,
		RequestTimeout: 2 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 500 * time.Millisecond,
		ReadTimeout:       2 * time.Second,
		WriteTimeout:      2 * time.Second,
		IdleTimeout:       10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	addr := ln.Addr().String()

	// Drainers: one per site, queue -> engine, pausing after Done so
	// Freeze and the checkpoint path never wait out the throttle.
	var drainWG sync.WaitGroup
	for _, st := range stacks {
		st := st
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for {
				batch, ok := st.queue.Take(sc.DrainBatch)
				if len(batch) > 0 {
					st.engine.IngestBatch(batch)
					st.queue.Done()
					if sc.DrainIntervalMS > 0 {
						time.Sleep(time.Duration(sc.DrainIntervalMS * float64(time.Millisecond)))
					}
				}
				if !ok {
					return
				}
			}
		}()
	}
	drainDone := make(chan struct{})
	go func() { drainWG.Wait(); close(drainDone) }()

	// Chaos-checkpoint loop: periodic snapshots through a stalling disk,
	// gated by the breaker so the stalls degrade cadence, never ingest.
	stateDir, err := os.MkdirTemp("", "astraload")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(stateDir)
	fsys := iofault.New(atomicio.OS, iofault.Config{
		Seed:       sc.Seed,
		StallWrite: sc.DiskStallP,
		Stall:      time.Duration(sc.DiskStallMS * float64(time.Millisecond)),
	})
	cpCtx, cpStop := context.WithCancel(ctx)
	cpDone := make(chan struct{})
	var cpWritten, cpSkipped atomic.Uint64
	go func() {
		defer close(cpDone)
		path := filepath.Join(stateDir, "astraload.state")
		timeout := time.Duration(sc.CheckpointTimeoutMS * float64(time.Millisecond))
		tick := time.NewTicker(time.Duration(sc.CheckpointEveryMS * float64(time.Millisecond)))
		defer tick.Stop()
		for {
			select {
			case <-cpCtx.Done():
				return
			case <-tick.C:
			}
			if !breaker.Allow() {
				cpSkipped.Add(1)
				continue
			}
			type siteCP struct {
				Site    string              `json:"site"`
				Records int                 `json:"records"`
				Queued  int                 `json:"queued"`
				Stats   overload.QueueStats `json:"stats"`
			}
			cps := make([]siteCP, 0, len(stacks))
			for _, st := range stacks {
				st.queue.Freeze(func(queued []mce.CERecord, qs overload.QueueStats) {
					cps = append(cps, siteCP{st.id, st.engine.Summary().Records, len(queued), qs})
				})
			}
			payload, _ := json.Marshal(cps)
			start := time.Now()
			_, werr := atomicio.WriteFile(context.Background(), fsys, path, func(w io.Writer) error {
				_, e := w.Write(payload)
				return e
			})
			if werr != nil || (timeout > 0 && time.Since(start) > timeout) {
				breaker.Failure()
			} else {
				breaker.Success()
				cpWritten.Add(1)
			}
		}
	}()

	// API herd: every odd request replays the endpoint's last ETag via
	// If-None-Match, so the run measures the 304 fast path next to the
	// rendered one.
	apiCtx, apiStop := context.WithCancel(ctx)
	var apiWG sync.WaitGroup
	var apiRejected, apiErrors, apiNotMod, slowKilled atomic.Uint64
	latencies := make([][]float64, sc.APIClients)
	cachedLat := make([][]float64, sc.APIClients)
	endpoints := []string{"/v1/breakdown", "/v1/faults", "/v1/fit", "/v1/sites", "/healthz"}
	client := &http.Client{Timeout: 5 * time.Second}
	for c := 0; c < sc.APIClients; c++ {
		c := c
		perClient := sc.APIQPS / max(sc.APIClients, 1)
		if perClient <= 0 {
			perClient = 1
		}
		apiWG.Add(1)
		go func() {
			defer apiWG.Done()
			// get performs one GET (optionally conditional) and files the
			// latency: 304s into the cached distribution, 200s into the
			// rendered one. Returns the response ETag, if any.
			get := func(path, inm string) string {
				req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
				if err != nil {
					apiErrors.Add(1)
					return ""
				}
				if inm != "" {
					req.Header.Set("If-None-Match", inm)
				}
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					apiErrors.Add(1)
					return ""
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(start).Microseconds()) / 1000
				switch {
				case resp.StatusCode == http.StatusNotModified:
					apiNotMod.Add(1)
					cachedLat[c] = append(cachedLat[c], ms)
				case resp.StatusCode == http.StatusServiceUnavailable:
					apiRejected.Add(1)
				case resp.StatusCode >= 500:
					apiErrors.Add(1)
				default:
					latencies[c] = append(latencies[c], ms)
				}
				return resp.Header.Get("ETag")
			}
			tick := time.NewTicker(time.Second / time.Duration(perClient))
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-apiCtx.Done():
					return
				case <-tick.C:
				}
				path := endpoints[i%len(endpoints)]
				// Plain GET, then immediately replay its ETag: at the same
				// epoch the replay must 304, measuring the fast path
				// side by side with the rendered one.
				if tag := get(path, ""); tag != "" && i%2 == 1 {
					get(path, tag)
				}
			}
		}()
	}

	// Slow clients: trickle half a request and hold; the server's
	// header timeout must cut the connection, not a human.
	for s := 0; s < sc.SlowClients; s++ {
		apiWG.Add(1)
		go func() {
			defer apiWG.Done()
			for apiCtx.Err() == nil {
				conn, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					continue
				}
				fmt.Fprintf(conn, "GET /v1/faults HTTP/1.1\r\nHost: astraload\r\n")
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				buf := make([]byte, 1)
				if _, err := conn.Read(buf); err != nil {
					// Connection cut without a response: the timeout won.
					slowKilled.Add(1)
				}
				conn.Close()
			}
		}()
	}

	// Producer: paced offers with the burst window, round-robin across
	// sites so every federation member sees its share of the rate.
	duration := time.Duration(sc.DurationSec * float64(time.Second))
	burstAt := time.Duration(sc.BurstAtSec * float64(time.Second))
	burstEnd := burstAt + time.Duration(sc.BurstForSec*float64(time.Second))
	var sent float64
	start := time.Now()
	tick := time.NewTicker(2 * time.Millisecond)
	for ctx.Err() == nil {
		<-tick.C
		elapsed := time.Since(start)
		if elapsed > duration {
			elapsed = duration
		}
		target := float64(sc.IngestRate) * elapsed.Seconds()
		if sc.BurstFactor > 1 && elapsed > burstAt {
			be := elapsed
			if be > burstEnd {
				be = burstEnd
			}
			target += (sc.BurstFactor - 1) * float64(sc.IngestRate) * (be - burstAt).Seconds()
		}
		for sent < target {
			st := stacks[int(sent)%nSites]
			st.queue.Offer(st.next())
			sent++
		}
		if elapsed >= duration {
			break
		}
	}
	tick.Stop()
	loadEnd := time.Now()
	closeQueues := func() {
		for _, st := range stacks {
			st.queue.Close()
		}
	}
	if err := ctx.Err(); err != nil {
		apiStop()
		cpStop()
		closeQueues()
		<-drainDone
		return res, err
	}

	// Load is off: measure recovery (backlog drain to empty), then stop
	// everything in dependency order.
	closeQueues()
	<-drainDone
	res.RecoveryMs = float64(time.Since(loadEnd).Microseconds()) / 1000
	apiStop()
	cpStop()
	apiWG.Wait()
	<-cpDone

	// Books, per site and total.
	res.InvariantOK = true
	res.DifferentialOK = true
	for _, st := range stacks {
		qs := st.queue.Stats()
		sum := st.engine.Summary()
		row := SiteResult{
			ID:       st.id,
			Offered:  qs.Offered,
			Ingested: uint64(sum.Records),
			Shed:     qs.Shed,
			Faults:   sum.Faults,
		}
		if qs.Offered > 0 {
			row.ShedRate = float64(qs.Shed) / float64(qs.Offered)
		}
		res.Sites = append(res.Sites, row)
		res.Offered += row.Offered
		res.Ingested += row.Ingested
		res.Shed += row.Shed
		res.Faults += row.Faults
		res.Saturations += qs.Saturations
		if qs.Offered != row.Ingested+qs.Shed || st.engine.Shed() != qs.Shed {
			res.InvariantOK = false
		}

		// Differential: batch-cluster exactly what this engine ingested.
		batch, err := core.Cluster(ctx, st.engine.Records(), core.DefaultClusterConfig())
		if err != nil {
			return res, err
		}
		wantBreak := core.BreakdownByMode(st.engine.Records(), batch)
		if sum.Faults != len(batch) ||
			sum.FaultsByMode != wantBreak.FaultsByMode ||
			sum.ErrorsByMode != wantBreak.ErrorsByMode {
			res.DifferentialOK = false
		}
	}
	if res.Offered > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Offered)
	}

	// Latency distributions: rendered path and 304 fast path.
	var all, cached []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	for _, l := range cachedLat {
		cached = append(cached, l...)
	}
	sort.Float64s(all)
	sort.Float64s(cached)
	res.API = APIStats{
		Requests:    uint64(len(all) + len(cached)),
		Rejected:    apiRejected.Load(),
		Errors:      apiErrors.Load(),
		NotModified: apiNotMod.Load(),
		P50Ms:       percentile(all, 0.50),
		P99Ms:       percentile(all, 0.99),
		CachedP50Ms: percentile(cached, 0.50),
		CachedP99Ms: percentile(cached, 0.99),
	}
	res.SlowKilled = slowKilled.Load()
	res.Checkpoints = CheckpointStats{
		Written:      cpWritten.Load(),
		Skipped:      cpSkipped.Load(),
		BreakerOpens: breaker.Stats().Opens,
	}

	// Recovery scenario: deterministic kill+corrupt+rotate chaos against
	// a checkpointing tail pipeline, after the load phase so the two
	// measurements never contend.
	if sc.Recovery != nil {
		rr, err := sc.Recovery.run(ctx, logger)
		if err != nil {
			return res, err
		}
		res.Recovery = &rr
	}
	return res, nil
}

// percentile reads q from an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
