// The recovery scenario is the self-healing proof: a real tail -> scan
// -> ingest pipeline with generational sealed checkpoints is killed
// mid-tail right after its log rotated, its newest state generation is
// bit-flipped, and a restarted incarnation must walk the checkpoint
// ladder to the surviving generation, re-ingest the offset delta, and
// converge to the exact batch answer within a bounded time. It is the
// same contract cmd/astrad lives by, exercised here with deterministic
// chaos so BENCH_serve.json can pin "crash recovery converges" next to
// the latency and shed-rate numbers.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/colfmt"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/het"
	"repro/internal/iofault"
	"repro/internal/mce"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// Recovery-pipeline ingest policy, matching the astrad defaults the
// daemon tests converge under.
const (
	recoveryDedup   = 64
	recoveryReorder = 5 * time.Minute
	recoveryNoise   = 50
	recoveryPoll    = 2 * time.Millisecond
)

// RecoverySpec pins the kill+corrupt+rotate recovery scenario. Like the
// load Scenario, every field is echoed into the baseline so -guard
// re-runs it exactly.
type RecoverySpec struct {
	Seed       uint64 `json:"seed"`
	Nodes      int    `json:"nodes"`
	Partitions int    `json:"partitions"`
	// Keep is the checkpoint ladder depth (atomicio.Generations).
	Keep int `json:"keep"`
	// BoundMS is the hard cap on recovery: the restarted pipeline must
	// converge to the batch answer within this long or the scenario
	// fails outright.
	BoundMS float64 `json:"boundMS"`
}

// RecoveryResult is the recovery scenario's verdict and accounting.
type RecoveryResult struct {
	// ConvergedOK means the restarted pipeline reached the exact batch
	// answer (records, faults, per-mode breakdowns) within BoundMS, and
	// every structural expectation held (exactly one generation
	// discarded, one rotation absorbed, survivor resumable). Detail
	// says what went wrong when it is false.
	ConvergedOK bool   `json:"convergedOK"`
	Detail      string `json:"detail,omitempty"`
	// RecoveryMs is restart-to-convergence: ladder walk, state restore,
	// and re-ingest of the offset delta.
	RecoveryMs float64 `json:"recoveryMs"`
	// GenerationsDiscarded counts ladder rungs rejected at restart (the
	// bit-flipped newest generation: exactly 1).
	GenerationsDiscarded int `json:"generationsDiscarded"`
	// SurvivorGeneration is the rung the restart resumed from (>= 1).
	SurvivorGeneration int `json:"survivorGeneration"`
	// Rotations is how many log rotations the first incarnation's
	// follower absorbed mid-tail (the scenario performs 1).
	Rotations int64 `json:"rotations"`
	// Checkpoints counts ladder writes before the kill.
	Checkpoints int `json:"checkpoints"`
	// RecordsRestored came from the surviving generation's state;
	// RecordsReplayed were re-ingested from the log past its offset.
	RecordsRestored int `json:"recordsRestored"`
	RecordsReplayed int `json:"recordsReplayed"`
	Records         int `json:"records"`
	Faults          int `json:"faults"`
}

// recoveryState is the sealed checkpoint payload: a header line, the
// scanner checkpoint (binary), the engine's records (colfmt), and a
// fixed-width crc32 trailer so a single flipped bit anywhere is caught.
const (
	recoveryMagic     = "astraload-recovery v1"
	recoveryCkPrefix  = "checksum crc32 "
	recoveryCkTrailer = len(recoveryCkPrefix) + 8 + 1
)

func marshalRecoveryState(cp syslog.Checkpoint, recs []mce.CERecord) ([]byte, error) {
	cpb, err := cp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s checkpoint %d\n", recoveryMagic, len(cpb))
	buf.Write(cpb)
	if err := colfmt.Write(&buf, colfmt.Records{CEs: recs}); err != nil {
		return nil, err
	}
	fmt.Fprintf(&buf, "%s%08x\n", recoveryCkPrefix, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

func unmarshalRecoveryState(data []byte) (syslog.Checkpoint, []mce.CERecord, error) {
	var cp syslog.Checkpoint
	if len(data) < recoveryCkTrailer {
		return cp, nil, fmt.Errorf("astraload: recovery state: %d bytes, too short for a checksum trailer", len(data))
	}
	body, trailer := data[:len(data)-recoveryCkTrailer], data[len(data)-recoveryCkTrailer:]
	if !bytes.HasPrefix(trailer, []byte(recoveryCkPrefix)) || trailer[len(trailer)-1] != '\n' {
		return cp, nil, fmt.Errorf("astraload: recovery state: malformed checksum trailer")
	}
	want, err := strconv.ParseUint(string(trailer[len(recoveryCkPrefix):len(trailer)-1]), 16, 32)
	if err != nil {
		return cp, nil, fmt.Errorf("astraload: recovery state: checksum trailer: %v", err)
	}
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return cp, nil, fmt.Errorf("astraload: recovery state: checksum mismatch: stored %08x computed %08x", want, got)
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return cp, nil, fmt.Errorf("astraload: recovery state: missing header line")
	}
	var cpLen int
	if _, err := fmt.Sscanf(string(body[:nl]), recoveryMagic+" checkpoint %d", &cpLen); err != nil {
		return cp, nil, fmt.Errorf("astraload: recovery state: bad header %q", body[:nl])
	}
	rest := body[nl+1:]
	if cpLen < 0 || cpLen > len(rest) {
		return cp, nil, fmt.Errorf("astraload: recovery state: checkpoint length %d exceeds %d payload bytes", cpLen, len(rest))
	}
	if err := cp.UnmarshalBinary(rest[:cpLen]); err != nil {
		return cp, nil, fmt.Errorf("astraload: recovery state: checkpoint: %w", err)
	}
	recs, err := colfmt.Decode(rest[cpLen:])
	if err != nil {
		return cp, nil, fmt.Errorf("astraload: recovery state: records: %w", err)
	}
	return cp, recs.CEs, nil
}

// recoveryCounters is the one-way telemetry from a pipeline incarnation
// to the orchestrator: how far the tail has read, how many ladder writes
// happened, how many rotations the follower absorbed, and how many CEs
// the engine holds. The orchestrator paces the chaos off these.
type recoveryCounters struct {
	checkpoints atomic.Int64
	rotations   atomic.Int64
	ingested    atomic.Int64
}

// runRecoveryTail is one pipeline incarnation: tail logPath from cp,
// ingest every CE, and write a sealed generation every cpEvery CEs. It
// does NOT checkpoint on the way out — a cancelled incarnation dies as
// abruptly as a crash, which is the point. stopAt > 0 ends the run
// cleanly once the engine holds that many records (the restarted
// incarnation's convergence condition).
func runRecoveryTail(ctx context.Context, logPath string, gens atomicio.Generations, eng *stream.Sharded,
	cp syslog.Checkpoint, base int, cpEvery int, stopAt int, ctr *recoveryCounters) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(cp.Offset, io.SeekStart); err != nil {
		return err
	}
	follower := syslog.NewFollower(ctx, f, syslog.TailConfig{Poll: recoveryPoll, Path: logPath})
	sc := syslog.NewScannerConfig(follower, syslog.ScanConfig{
		DedupWindow:   recoveryDedup,
		ReorderWindow: recoveryReorder,
	})
	if err := sc.Restore(cp); err != nil {
		return err
	}
	count, sinceCP := base, 0
	for sc.Scan() {
		ctr.rotations.Store(follower.Stats().Rotations)
		if rec := sc.Record(); rec.Kind == syslog.KindCE {
			eng.IngestBatch([]mce.CERecord{rec.CE})
			count++
			sinceCP++
			ctr.ingested.Store(int64(count))
		}
		if stopAt > 0 && count >= stopAt {
			return nil
		}
		if sinceCP >= cpEvery {
			sinceCP = 0
			ccp := sc.Checkpoint()
			off, ok := follower.FileOffset(ccp.Offset)
			if !ok {
				continue // offset predates the rotation; nothing resumable
			}
			ccp.Offset = off
			data, merr := marshalRecoveryState(ccp, eng.Records())
			if merr != nil {
				return merr
			}
			if _, werr := gens.Write(context.Background(), func(w io.Writer) error {
				_, e := w.Write(data)
				return e
			}); werr != nil {
				return werr
			}
			ctr.checkpoints.Add(1)
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, syslog.ErrTailStopped) {
		return err
	}
	return nil
}

// waitUntil polls cond once a millisecond until it holds or the deadline
// passes.
func waitUntil(deadline time.Time, cond func() bool) bool {
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// run executes the recovery scenario. Orchestration errors (dataset
// build, filesystem) surface as err; broken recovery semantics surface
// as ConvergedOK=false with Detail, so -guard and the baseline gate
// treat them as contract violations.
func (rs RecoverySpec) run(ctx context.Context, logger *slog.Logger) (RecoveryResult, error) {
	var rr RecoveryResult
	fail := func(format string, args ...any) (RecoveryResult, error) {
		rr.Detail = fmt.Sprintf(format, args...)
		logger.Error("recovery scenario failed", "detail", rr.Detail)
		return rr, nil
	}

	// The truth: the full dataset's syslog with a far-future HET sentinel
	// so the reorder window releases every CE, and the batch answer over
	// exactly the records the hardened read admits.
	cfg := dataset.DefaultConfig(rs.Seed)
	cfg.Nodes = rs.Nodes
	ds, err := dataset.Build(ctx, cfg)
	if err != nil {
		return rr, err
	}
	var full bytes.Buffer
	if err := ds.WriteSyslog(&full, recoveryNoise); err != nil {
		return rr, err
	}
	var maxT time.Time
	for _, r := range ds.CERecords {
		if r.Time.After(maxT) {
			maxT = r.Time
		}
	}
	full.WriteString(syslog.FormatHET(het.Record{
		Time:     maxT.Add(recoveryReorder + time.Minute),
		Node:     ds.CERecords[0].Node,
		Type:     het.UncorrectableECC,
		Severity: het.SeverityNonRecoverable,
	}))
	full.WriteByte('\n')
	log := full.Bytes()
	pol := dataset.IngestPolicy{DedupWindow: recoveryDedup, ReorderWindow: recoveryReorder, MaxMalformedFrac: -1}
	want, _, _, _, err := dataset.ReadSyslogPolicy(bytes.NewReader(log), pol)
	if err != nil {
		return rr, err
	}
	if len(want) == 0 {
		return rr, fmt.Errorf("astraload: recovery: dataset produced no CE records")
	}
	wantBatch, err := core.Cluster(ctx, want, core.DefaultClusterConfig())
	if err != nil {
		return rr, err
	}
	wantBreak := core.BreakdownByMode(want, wantBatch)

	// Split at a line boundary: s1 is the pre-rotation log, s2 the
	// successor file the rotation installs.
	cut := bytes.LastIndexByte(log[:len(log)/2], '\n') + 1
	if cut <= 0 {
		return rr, fmt.Errorf("astraload: recovery: no line boundary in first half of log")
	}
	s1, s2 := log[:cut], log[cut:]

	dir, err := os.MkdirTemp("", "astraload-recovery")
	if err != nil {
		return rr, err
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "astra.log")
	statePath := filepath.Join(dir, "astraload-state")
	if err := os.WriteFile(logPath, s1, 0o644); err != nil {
		return rr, err
	}
	gens := atomicio.Generations{Path: statePath, Keep: rs.Keep}
	mkEngine := func() *stream.Sharded {
		return stream.NewSharded(stream.ShardedConfig{
			Partitions: rs.Partitions,
			Engine:     stream.Config{DIMMs: rs.Nodes * topology.SlotsPerNode},
		})
	}
	bound := time.Duration(rs.BoundMS * float64(time.Millisecond))
	deadline := time.Now().Add(bound)
	cpEvery := len(want) / 12
	if cpEvery < 1 {
		cpEvery = 1
	}

	// Incarnation A: tail from offset 0, checkpointing to the ladder.
	ctxA, cancelA := context.WithCancel(ctx)
	defer cancelA()
	engA := mkEngine()
	var ctr recoveryCounters
	aDone := make(chan error, 1)
	go func() {
		aDone <- runRecoveryTail(ctxA, logPath, gens, engA, syslog.Checkpoint{}, 0, cpEvery, 0, &ctr)
	}()
	fatalA := func() (RecoveryResult, error, bool) {
		select {
		case aerr := <-aDone:
			return rr, fmt.Errorf("astraload: recovery: pipeline died during chaos: %v", aerr), true
		default:
			return rr, nil, false
		}
	}
	if !waitUntil(deadline, func() bool { return ctr.checkpoints.Load() >= 1 }) {
		if r, e, died := fatalA(); died {
			return r, e
		}
		return fail("no checkpoint written within %v", bound)
	}

	// Rotate mid-tail: classic rename-and-recreate. The follower drains
	// the renamed inode, then reopens the successor at offset 0.
	if err := os.Rename(logPath, logPath+".old"); err != nil {
		return rr, err
	}
	if err := os.WriteFile(logPath, s2, 0o644); err != nil {
		return rr, err
	}
	if !waitUntil(deadline, func() bool { return ctr.rotations.Load() >= 1 }) {
		if r, e, died := fatalA(); died {
			return r, e
		}
		return fail("follower never absorbed the rotation within %v", bound)
	}
	// At least two ladder writes after the rotation was absorbed: with
	// the newest generation corrupted, the survivor must still carry a
	// successor-file offset.
	cpAtRotate := ctr.checkpoints.Load()
	if !waitUntil(deadline, func() bool { return ctr.checkpoints.Load() >= cpAtRotate+2 }) {
		if r, e, died := fatalA(); died {
			return r, e
		}
		return fail("fewer than 2 post-rotation checkpoints within %v", bound)
	}

	// Kill: cancel with no farewell checkpoint, then flip one bit in the
	// newest generation — the crash left a torn/corrupted newest state.
	cancelA()
	if aerr := <-aDone; aerr != nil {
		return rr, fmt.Errorf("astraload: recovery: pipeline error at kill: %v", aerr)
	}
	rr.Checkpoints = int(ctr.checkpoints.Load())
	rr.Rotations = ctr.rotations.Load()
	if _, _, err := iofault.FlipBit(gens.Gen(0), rs.Seed|1); err != nil {
		return rr, err
	}

	// Restart: walk the ladder, restore the survivor, re-ingest the
	// delta, and converge — the clock measures all of it.
	restart := time.Now()
	data, gen, discarded, err := gens.Load(func(b []byte) error {
		_, _, verr := unmarshalRecoveryState(b)
		return verr
	})
	if err != nil {
		return rr, err
	}
	rr.GenerationsDiscarded = len(discarded)
	rr.SurvivorGeneration = gen
	if len(discarded) != 1 {
		return fail("discarded %d generations, want exactly the bit-flipped newest", len(discarded))
	}
	if gen < 1 {
		return fail("survivor generation = %d, want >= 1", gen)
	}
	cp, recs, err := unmarshalRecoveryState(data)
	if err != nil {
		return rr, err
	}
	rr.RecordsRestored = len(recs)
	if fi, err := os.Stat(logPath); err != nil {
		return rr, err
	} else if fi.Size() < cp.Offset {
		return fail("survivor offset %d beyond successor log size %d: resume point not in rotated file", cp.Offset, fi.Size())
	}
	engB := mkEngine()
	engB.IngestBatch(recs)
	ctxB, cancelB := context.WithDeadline(ctx, deadline)
	defer cancelB()
	var ctrB recoveryCounters
	berr := runRecoveryTail(ctxB, logPath, atomicio.Generations{Path: statePath + ".post", Keep: rs.Keep},
		engB, cp, len(recs), cpEvery, len(want), &ctrB)
	rr.RecoveryMs = float64(time.Since(restart).Microseconds()) / 1000
	if berr != nil {
		return rr, fmt.Errorf("astraload: recovery: restarted pipeline: %v", berr)
	}
	rr.RecordsReplayed = int(ctrB.ingested.Load()) - len(recs)

	sum := engB.Summary()
	rr.Records = sum.Records
	rr.Faults = sum.Faults
	if sum.Records != len(want) {
		return fail("recovered %d records within %v, want %d (restored %d, replayed %d)",
			sum.Records, bound, len(want), rr.RecordsRestored, rr.RecordsReplayed)
	}
	if sum.Faults != len(wantBatch) || sum.FaultsByMode != wantBreak.FaultsByMode || sum.ErrorsByMode != wantBreak.ErrorsByMode {
		return fail("recovered population diverged from batch: faults %d want %d, by-mode %v want %v",
			sum.Faults, len(wantBatch), sum.FaultsByMode, wantBreak.FaultsByMode)
	}
	rr.ConvergedOK = true
	logger.Info("recovery converged",
		"ms", rr.RecoveryMs, "survivorGen", gen, "discarded", len(discarded),
		"restored", rr.RecordsRestored, "replayed", rr.RecordsReplayed)
	return rr, nil
}
