package main

import (
	"context"
	"io"
	"log/slog"
	"testing"
	"time"

	"repro/internal/mce"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// TestRecoveryStateSeal pins the sealed checkpoint codec: round trip,
// and detection of a flipped bit anywhere in the image.
func TestRecoveryStateSeal(t *testing.T) {
	cp := syslog.Checkpoint{Offset: 12345}
	recs := []mce.CERecord{{
		Time: time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC),
		Node: topology.NewNodeID(1, 2, 3),
	}}
	data, err := marshalRecoveryState(cp, recs)
	if err != nil {
		t.Fatal(err)
	}
	gcp, grecs, err := unmarshalRecoveryState(data)
	if err != nil {
		t.Fatal(err)
	}
	if gcp.Offset != cp.Offset || len(grecs) != 1 || !grecs[0].Time.Equal(recs[0].Time) {
		t.Fatalf("round trip = offset %d, %d records", gcp.Offset, len(grecs))
	}
	for _, off := range []int{0, len(data) / 2, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x10
		if _, _, err := unmarshalRecoveryState(bad); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", off)
		}
	}
	if _, _, err := unmarshalRecoveryState(data[:10]); err == nil {
		t.Fatal("truncated image went undetected")
	}
}

// TestRecoveryScenarioConverges runs the full kill + corrupt-newest-
// generation + rotate-mid-tail chaos sequence and checks the verdict:
// the restarted pipeline walked the ladder past the flipped generation,
// resumed from a post-rotation offset, and converged to the exact batch
// answer within the bound.
func TestRecoveryScenarioConverges(t *testing.T) {
	rs := RecoverySpec{Seed: 7, Nodes: 32, Partitions: 2, Keep: 3, BoundMS: 60000}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	rr, err := rs.run(context.Background(), logger)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.ConvergedOK {
		t.Fatalf("recovery did not converge: %s (%+v)", rr.Detail, rr)
	}
	if rr.GenerationsDiscarded != 1 || rr.SurvivorGeneration < 1 {
		t.Fatalf("ladder walk: discarded %d, survivor gen %d", rr.GenerationsDiscarded, rr.SurvivorGeneration)
	}
	if rr.Rotations != 1 {
		t.Fatalf("rotations absorbed = %d, want 1", rr.Rotations)
	}
	if rr.RecordsRestored == 0 || rr.RecordsReplayed == 0 {
		t.Fatalf("recovery did no work: restored %d replayed %d", rr.RecordsRestored, rr.RecordsReplayed)
	}
	if rr.RecordsRestored+rr.RecordsReplayed != rr.Records {
		t.Fatalf("restored %d + replayed %d != records %d", rr.RecordsRestored, rr.RecordsReplayed, rr.Records)
	}
	if rr.RecoveryMs <= 0 || rr.RecoveryMs > rs.BoundMS {
		t.Fatalf("recovery time %vms outside (0, %v]", rr.RecoveryMs, rs.BoundMS)
	}
}
