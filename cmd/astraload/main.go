// Command astraload is the overload/chaos harness for the online
// subsystem: it drives a real serve.Server + admission queue + engine
// stack with sustained high-rate ingest, an API request herd, slow
// clients, traffic bursts and a stalling checkpoint disk, then verifies
// the overload contract and measures the experience:
//
//   - offered == ingested + shed, exactly (no record silently lost)
//   - the final fault population equals a batch clustering of exactly
//     the ingested records (overload never corrupts analyses)
//   - p50/p99 API latency on both the rendered path and the ETag/304
//     fast path, shed rate, recovery time after the load stops,
//     checkpoint-breaker behavior under disk stalls
//
// With -sites N the harness builds N federated sites (per-site seeds
// seed+i) behind one server, exercising the fan-in rollup and
// site-scoped endpoints under load; -partitions shards each site's
// engine by node hash. Per-site ingest/shed rows land in the result.
//
// The result document is BENCH_serve.json, the serving-path baseline
// `make bench-serve` writes and `make bench-guard` defends:
//
//	astraload [flags] [-out BENCH_serve.json]
//	astraload -guard [-against BENCH_serve.json] [-tolerance 0.10]
//
// -guard re-runs the baseline's own pinned scenario and fails on p99
// latency regressions beyond the tolerance (plus a small absolute slack
// to absorb scheduler jitter), on a shed rate beyond what the
// scenario's configured rates imply, or on any contract violation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/atomicio"
	"repro/internal/overload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astraload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sc := Scenario{}
	fs.Uint64Var(&sc.Seed, "seed", 1, "dataset seed")
	fs.IntVar(&sc.Nodes, "nodes", 64, "dataset system size, per site")
	fs.IntVar(&sc.Sites, "sites", 1, "federated sites served from one stack (site i seeds with seed+i)")
	fs.IntVar(&sc.Partitions, "partitions", 1, "stream engine partitions per site")
	fs.Float64Var(&sc.DurationSec, "duration", 3, "load phase seconds")
	fs.IntVar(&sc.IngestRate, "ingest-rate", 100000, "sustained offer rate, records/s")
	fs.Float64Var(&sc.BurstFactor, "burst-factor", 3, "rate multiplier inside the burst window")
	fs.Float64Var(&sc.BurstAtSec, "burst-at", 1, "burst start, seconds into the run")
	fs.Float64Var(&sc.BurstForSec, "burst-for", 0.5, "burst length, seconds")
	fs.IntVar(&sc.APIClients, "api-clients", 4, "concurrent API reader goroutines")
	fs.IntVar(&sc.APIQPS, "api-qps", 400, "total API requests/s across clients")
	fs.IntVar(&sc.SlowClients, "slow-clients", 2, "clients that trickle partial requests")
	fs.IntVar(&sc.QueueDepth, "queue-depth", 32768, "admission queue capacity")
	fs.IntVar(&sc.QueueHigh, "queue-high", 0, "high watermark (0 = capacity)")
	fs.IntVar(&sc.QueueLow, "queue-low", 0, "low watermark (0 = capacity/2)")
	fs.StringVar(&sc.ShedPolicy, "shed-policy", overload.PolicyReject.String(), "reject or drop-oldest")
	fs.IntVar(&sc.DrainBatch, "drain-batch", 128, "records per engine ingest batch")
	fs.Float64Var(&sc.DrainIntervalMS, "drain-interval", 5, "pause between drain batches, ms (bounds drain rate)")
	fs.Float64Var(&sc.DiskStallP, "disk-stall", 0.5, "probability a checkpoint write stalls")
	fs.Float64Var(&sc.DiskStallMS, "disk-stall-for", 100, "stall length, ms")
	fs.Float64Var(&sc.CheckpointEveryMS, "checkpoint-every", 100, "checkpoint cadence, ms")
	fs.Float64Var(&sc.CheckpointTimeoutMS, "checkpoint-timeout", 50, "writes slower than this count as breaker failures, ms")
	recovery := fs.Bool("recovery", false, "run the kill+corrupt+rotate recovery scenario after the load phase")
	recNodes := fs.Int("recovery-nodes", 48, "recovery scenario dataset size, nodes")
	recPartitions := fs.Int("recovery-partitions", 2, "recovery scenario engine partitions")
	recKeep := fs.Int("recovery-keep", 3, "recovery scenario checkpoint ladder depth")
	recBound := fs.Float64("recovery-bound", 30000, "hard cap on recovery convergence, ms")
	out := fs.String("out", "BENCH_serve.json", "result/baseline path")
	guard := fs.Bool("guard", false, "re-run the baseline's scenario and fail on regression instead of writing")
	against := fs.String("against", "BENCH_serve.json", "baseline to guard against")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional p99/shed-rate growth before -guard fails")
	p99Slack := fs.Float64("p99-slack", 5, "absolute p99 slack, ms, on top of the tolerance")
	shedSlack := fs.Float64("shed-slack", 0.02, "absolute shed-rate slack on top of the tolerance")
	recSlack := fs.Float64("recovery-slack", 250, "absolute recovery-time slack, ms, on top of the tolerance")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *recovery {
		sc.Recovery = &RecoverySpec{
			Seed:       sc.Seed,
			Nodes:      *recNodes,
			Partitions: *recPartitions,
			Keep:       *recKeep,
			BoundMS:    *recBound,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	if *guard {
		return runGuard(ctx, logger, stdout, stderr, *against, *tolerance, *p99Slack, *shedSlack, *recSlack)
	}

	res, err := sc.Run(ctx, logger)
	if err != nil {
		fmt.Fprintln(stderr, "astraload:", err)
		return 1
	}
	report(stdout, res)
	if !res.InvariantOK || !res.DifferentialOK {
		fmt.Fprintln(stderr, "astraload: overload contract violated; not writing a baseline")
		return 1
	}
	if res.Recovery != nil && !res.Recovery.ConvergedOK {
		fmt.Fprintf(stderr, "astraload: recovery scenario failed (%s); not writing a baseline\n", res.Recovery.Detail)
		return 1
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "astraload:", err)
		return 1
	}
	if _, err := atomicio.WriteFile(context.WithoutCancel(ctx), atomicio.OS, *out, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	}); err != nil {
		fmt.Fprintln(stderr, "astraload:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return 0
}

func report(w io.Writer, res Result) {
	fmt.Fprintf(w, "offered %d  ingested %d  shed %d (%.1f%%)  invariant=%v differential=%v\n",
		res.Offered, res.Ingested, res.Shed, 100*res.ShedRate, res.InvariantOK, res.DifferentialOK)
	fmt.Fprintf(w, "api: %d requests, %d rejected (503), %d errors, p50 %.2fms p99 %.2fms\n",
		res.API.Requests, res.API.Rejected, res.API.Errors, res.API.P50Ms, res.API.P99Ms)
	fmt.Fprintf(w, "api cached: %d not-modified (304), p50 %.2fms p99 %.2fms\n",
		res.API.NotModified, res.API.CachedP50Ms, res.API.CachedP99Ms)
	for _, site := range res.Sites {
		fmt.Fprintf(w, "site %-8s offered %d  ingested %d  shed %d (%.1f%%)  faults %d\n",
			site.ID, site.Offered, site.Ingested, site.Shed, 100*site.ShedRate, site.Faults)
	}
	fmt.Fprintf(w, "recovery %.0fms  saturations %d  slow clients cut %d  checkpoints %d written %d skipped %d breaker opens\n",
		res.RecoveryMs, res.Saturations, res.SlowKilled,
		res.Checkpoints.Written, res.Checkpoints.Skipped, res.Checkpoints.BreakerOpens)
	if rr := res.Recovery; rr != nil {
		fmt.Fprintf(w, "crash recovery: converged=%v in %.1fms  survivor gen %d (%d discarded)  restored %d + replayed %d records, %d faults  rotations %d\n",
			rr.ConvergedOK, rr.RecoveryMs, rr.SurvivorGeneration, rr.GenerationsDiscarded,
			rr.RecordsRestored, rr.RecordsReplayed, rr.Faults, rr.Rotations)
		if !rr.ConvergedOK {
			fmt.Fprintf(w, "crash recovery detail: %s\n", rr.Detail)
		}
	}
}

// runGuard re-runs the baseline's own scenario and compares the
// regression-sensitive numbers: read-path p99, shed rate and — when the
// baseline pins the recovery scenario — crash-recovery time. Contract
// violations (overload invariants or a recovery that fails to converge)
// fail outright.
func runGuard(ctx context.Context, logger *slog.Logger, stdout, stderr io.Writer, path string, tolerance, p99Slack, shedSlack, recSlack float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "astraload: guard: %v\n", err)
		return 1
	}
	var base Result
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "astraload: guard: %s: %v\n", path, err)
		return 1
	}
	res, err := base.Scenario.Run(ctx, logger)
	if err != nil {
		fmt.Fprintln(stderr, "astraload: guard:", err)
		return 1
	}
	report(stdout, res)
	if !res.InvariantOK || !res.DifferentialOK {
		fmt.Fprintln(stderr, "astraload: guard: overload contract violated")
		return 1
	}
	if res.Recovery != nil && !res.Recovery.ConvergedOK {
		fmt.Fprintf(stderr, "astraload: guard: crash recovery failed to converge: %s\n", res.Recovery.Detail)
		return 1
	}
	failed := false
	p99Limit := base.API.P99Ms*(1+tolerance) + p99Slack
	status := "ok"
	if res.API.P99Ms > p99Limit {
		status = "REGRESSION"
		failed = true
	}
	fmt.Fprintf(stdout, "p99       %8.2fms (baseline %8.2fms, limit %8.2fms) %s\n",
		res.API.P99Ms, base.API.P99Ms, p99Limit, status)
	// The shed-rate limit anchors to the scenario's own configured
	// parameters, not the baseline's absolute measurement: the configured
	// component (offered volume beyond drain capacity + queue headroom)
	// is overload arithmetic and gets no tolerance; only the measured
	// excess above it — the machine-speed part, drain cycles running
	// slower than the pure throttle — is toleranced. Editing the pinned
	// scenario moves the expectation with it instead of tripping the
	// guard on a stale absolute value.
	expected := base.Scenario.expectedShedRate()
	excess := base.ShedRate - expected
	if excess < 0 {
		excess = 0
	}
	shedLimit := expected + excess*(1+tolerance) + shedSlack
	status = "ok"
	if res.ShedRate > shedLimit {
		status = "REGRESSION"
		failed = true
	}
	fmt.Fprintf(stdout, "shed rate %8.4f   (configured %8.4f + excess %6.4f, limit %8.4f) %s\n",
		res.ShedRate, expected, excess, shedLimit, status)
	// Crash-recovery time regresses like a latency: toleranced against
	// the baseline's measurement plus absolute slack (ladder walk +
	// restore + delta replay are all machine-speed work).
	if res.Recovery != nil && base.Recovery != nil {
		recLimit := base.Recovery.RecoveryMs*(1+tolerance) + recSlack
		status = "ok"
		if res.Recovery.RecoveryMs > recLimit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(stdout, "recovery  %8.2fms (baseline %8.2fms, limit %8.2fms) %s\n",
			res.Recovery.RecoveryMs, base.Recovery.RecoveryMs, recLimit, status)
	}
	if failed {
		fmt.Fprintln(stderr, "astraload: guard: serving-path regression beyond tolerance; investigate or regenerate the baseline with `make bench-serve`")
		return 1
	}
	return 0
}
