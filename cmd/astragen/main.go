// Command astragen generates a synthetic Astra dataset in the paper's §2.4
// open-data formats: a merged syslog (CE + DUE + HET records plus kernel
// noise), the CE telemetry CSV, a subsampled environmental sensor CSV, and
// the inventory replacement log.
//
// Usage:
//
//	astragen -out ./data -seed 1 -nodes 2592
//
// The output is fully determined by the flags; re-running reproduces
// byte-identical files. Every artifact is written atomically (temp file +
// fsync + rename) and recorded in a checksummed MANIFEST.json, so an
// interrupted run (Ctrl-C, crash, full disk) never leaves a partial file
// at a final path. Re-running with -resume skips artifacts whose
// checksums already verify and produces a tree byte-identical to an
// uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/atomicio"
	"repro/internal/dataset"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("astragen: ")
	var (
		out          = flag.String("out", "astra-data", "output directory")
		seed         = flag.Uint64("seed", 1, "random seed")
		nodes        = flag.Int("nodes", 432, "system size in nodes (full Astra is 2592)")
		noiseEvery   = flag.Int("noise-every", 200, "interleave one kernel-noise line per N records (0 disables)")
		nodeStride   = flag.Int("sensor-node-stride", 16, "export sensor data for every Nth node")
		minuteStride = flag.Int("sensor-minute-stride", 60, "export sensor data every N minutes")
		scanStride   = flag.Int("scan-stride", 7, "write an inventory scan file every N days (0 disables)")
		dirty        = flag.Float64("dirty", 0, "also write astra-syslog-dirty.log and ce-telemetry-dirty.csv corrupted at this combined rate (0 disables)")
		workers      = flag.Int("workers", 0, "pipeline worker count: 0 uses GOMAXPROCS, 1 forces the serial path (output is identical either way)")
		resume       = flag.Bool("resume", false, "skip artifacts already recorded in the output manifest whose checksums verify")
	)
	flag.Parse()
	if *dirty < 0 || *dirty > 1 {
		log.Fatal("-dirty must be in [0, 1]")
	}
	if *nodes < 1 || *nodes > topology.Nodes {
		log.Fatalf("-nodes must be in [1, %d]", topology.Nodes)
	}

	// SIGINT/SIGTERM cancel the pipeline; the exporter checkpoints after
	// every completed artifact, so an interrupted run leaves a valid
	// manifest behind for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := dataset.DefaultConfig(*seed)
	cfg.Nodes = *nodes
	cfg.Parallelism = *workers
	ds, err := dataset.Build(ctx, cfg)
	if err != nil {
		fail(err)
	}
	if err := ds.Verify(); err != nil {
		log.Fatalf("self-check failed, refusing to publish: %v", err)
	}

	rep, err := ds.Export(ctx, atomicio.OS, *out, dataset.ExportOptions{
		NoiseEvery:         *noiseEvery,
		SensorNodeStride:   *nodeStride,
		SensorMinuteStride: *minuteStride,
		ScanStride:         *scanStride,
		Dirty:              *dirty,
		Resume:             *resume,
	})
	scans := 0
	for _, f := range rep.Files {
		verb := "wrote"
		if f.Skipped {
			verb = "kept "
		}
		if len(f.Name) > 5 && f.Name[:6] == "scans/" {
			scans++
			continue
		}
		fmt.Printf("%s %-24s %10d bytes  sha256=%s...\n", verb, f.Name, f.Size, f.SHA256[:12])
	}
	if scans > 0 {
		fmt.Printf("wrote/kept %d inventory scans under %s/scans\n", scans, *out)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("\nseed=%d nodes=%d (%d artifacts written, %d reused)\n", *seed, *nodes, rep.Written, rep.Skipped)
	fmt.Printf("correctable errors: generated %d, logged %d, dropped by CE log space %d (%.2f%%)\n",
		ds.EdacStats.Offered, ds.EdacStats.Logged, ds.EdacStats.Dropped, 100*ds.EdacStats.LossFraction())
	fmt.Printf("uncorrectable errors: %d; HET records: %d; replacements: %d\n",
		len(ds.DUERecords), len(ds.HETRecords), len(ds.Inventory.Replacements))
}

// fail reports a pipeline error; an interrupt exits with the conventional
// 130 and points at -resume, since the partial output is reusable.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		log.Println("interrupted; completed artifacts are recorded in MANIFEST.json — re-run with -resume to continue")
		os.Exit(130)
	}
	log.Fatal(err)
}
