// Command astragen generates a synthetic Astra dataset in the paper's §2.4
// open-data formats: a merged syslog (CE + DUE + HET records plus kernel
// noise), the CE telemetry CSV, a subsampled environmental sensor CSV, and
// the inventory replacement log.
//
// Usage:
//
//	astragen -out ./data -seed 1 -nodes 2592
//
// The output is fully determined by the flags; re-running reproduces
// byte-identical files.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corrupt"
	"repro/internal/dataset"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("astragen: ")
	var (
		out          = flag.String("out", "astra-data", "output directory")
		seed         = flag.Uint64("seed", 1, "random seed")
		nodes        = flag.Int("nodes", 432, "system size in nodes (full Astra is 2592)")
		noiseEvery   = flag.Int("noise-every", 200, "interleave one kernel-noise line per N records (0 disables)")
		nodeStride   = flag.Int("sensor-node-stride", 16, "export sensor data for every Nth node")
		minuteStride = flag.Int("sensor-minute-stride", 60, "export sensor data every N minutes")
		scanStride   = flag.Int("scan-stride", 7, "write an inventory scan file every N days (0 disables)")
		dirty        = flag.Float64("dirty", 0, "also write astra-syslog-dirty.log and ce-telemetry-dirty.csv corrupted at this combined rate (0 disables)")
		workers      = flag.Int("workers", 0, "pipeline worker count: 0 uses GOMAXPROCS, 1 forces the serial path (output is identical either way)")
	)
	flag.Parse()
	if *dirty < 0 || *dirty > 1 {
		log.Fatal("-dirty must be in [0, 1]")
	}
	if *nodes < 1 || *nodes > topology.Nodes {
		log.Fatalf("-nodes must be in [1, %d]", topology.Nodes)
	}

	cfg := dataset.DefaultConfig(*seed)
	cfg.Nodes = *nodes
	cfg.Parallelism = *workers
	ds, err := dataset.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Verify(); err != nil {
		log.Fatalf("self-check failed, refusing to publish: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(name string, fn func(io.Writer) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s: %v", path, err)
		}
		st, _ := os.Stat(path)
		fmt.Printf("wrote %-24s %10d bytes\n", name, st.Size())
	}

	write("astra-syslog.log", func(w io.Writer) error { return ds.WriteSyslog(w, *noiseEvery) })
	write("ce-telemetry.csv", ds.WriteCETelemetryCSV)
	if *dirty > 0 {
		// Re-render the clean streams through the corruptor so the dirty
		// files exercise ingest hardening against a known ground truth
		// (the clean files next to them).
		c := corrupt.New(corrupt.Uniform(*seed, *dirty))
		write("astra-syslog-dirty.log", func(w io.Writer) error {
			pr, pw := io.Pipe()
			go func() { pw.CloseWithError(ds.WriteSyslog(pw, *noiseEvery)) }()
			rep, err := c.Process(pr, w)
			if err != nil {
				return err
			}
			fmt.Printf("  dirty syslog: %d lines in, %d out, %d mutations\n", rep.LinesIn, rep.LinesOut, rep.Mutations())
			return nil
		})
		write("ce-telemetry-dirty.csv", func(w io.Writer) error {
			pr, pw := io.Pipe()
			go func() { pw.CloseWithError(ds.WriteCETelemetryCSV(pw)) }()
			_, err := c.ProcessCSV(pr, w)
			return err
		})
	}
	write("sensors.csv", func(w io.Writer) error {
		return ds.WriteSensorCSV(w, *nodeStride, *minuteStride)
	})
	write("replacements.csv", ds.WriteReplacementsCSV)

	if *scanStride > 0 {
		scanDir := filepath.Join(*out, "scans")
		if err := os.MkdirAll(scanDir, 0o755); err != nil {
			log.Fatal(err)
		}
		scans := 0
		err := ds.Inventory.WriteScanSeries(*nodes, *scanStride, func(day simtime.Day) (io.WriteCloser, error) {
			scans++
			return os.Create(filepath.Join(scanDir, "scan-"+day.Time().Format("2006-01-02")+".txt"))
		})
		if err != nil {
			log.Fatalf("writing scans: %v", err)
		}
		fmt.Printf("wrote %d inventory scans to %s\n", scans, scanDir)
	}

	fmt.Printf("\nseed=%d nodes=%d\n", *seed, *nodes)
	fmt.Printf("correctable errors: generated %d, logged %d, dropped by CE log space %d (%.2f%%)\n",
		ds.EdacStats.Offered, ds.EdacStats.Logged, ds.EdacStats.Dropped, 100*ds.EdacStats.LossFraction())
	fmt.Printf("uncorrectable errors: %d; HET records: %d; replacements: %d\n",
		len(ds.DUERecords), len(ds.HETRecords), len(ds.Inventory.Replacements))
}
