// Command astrabench runs the pipeline-stage benchmarks and writes
// BENCH_pipeline.json, the perf-regression baseline `make bench` tracks:
// for every stage (generation, dataset build, parse, clustering,
// analysis, report) at each requested worker count, ns/op, allocs/op,
// bytes/op and records/sec, plus the parallel-over-serial speedup per
// stage. The serial (workers=1) row is always measured, even when not
// listed in -workers, so every run carries its own baseline and the
// speedup map is never empty: a serial-only run records 1.0 per stage.
//
// Usage:
//
//	astrabench [-seed 1] [-nodes N] [-workers 1,4,8] [-out BENCH_pipeline.json]
//	astrabench -guard [-against BENCH_pipeline.json] [-tolerance 0.10]
//
// -guard re-measures the budgeted (stage, workers) rows — the
// allocation-sensitive stages (dataset-build, parse, parse-parallel,
// colfmt-replay) at workers=1 plus stream-ingest at workers=1 and the
// sharded workers=8 setting — and exits non-zero
// if allocs/op regressed more than -tolerance or records/s fell more
// than -tput-tolerance against the checked-in baseline, instead of
// writing a new one. The node count defaults to ASTRA_BENCH_NODES (then
// 256), pinning the scale so numbers are comparable across runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/benchstage"
)

// StageResult is one (stage, workers) measurement row.
type StageResult struct {
	Stage         string  `json:"stage"`
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	Records       int     `json:"records"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// InputBytes and MBPerSec describe byte-stream stages (parse,
	// parse-parallel, colfmt-replay); both are 0 elsewhere.
	InputBytes int64   `json:"input_bytes,omitempty"`
	MBPerSec   float64 `json:"mb_per_sec,omitempty"`
}

// Baseline is the BENCH_pipeline.json document.
type Baseline struct {
	Seed       uint64        `json:"seed"`
	Nodes      int           `json:"nodes"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Stages     []StageResult `json:"stages"`
	// Speedup maps stage -> serial ns/op over the fastest parallel
	// ns/op measured. A serial-only run records 1.0 for every stage, so
	// the map always describes the run instead of silently vanishing.
	Speedup map[string]float64 `json:"speedup"`
}

// guardStage is one budgeted (stage, workers) row `-guard` re-measures.
type guardStage struct {
	Name    string
	Workers int
}

// guardStages are the budgeted rows `-guard` re-measures: the layers the
// zero-allocation codec and ingest-throughput work target, plus the
// online path at its serial floor and its sharded 8-partition setting
// (the stream-engine scale-out's records/s floor and allocs/op ceiling).
var guardStages = []guardStage{
	{"dataset-build", 1},
	{"parse", 1},
	{"parse-parallel", 1},
	{"colfmt-replay", 1},
	{"stream-ingest", 1},
	{"stream-ingest", 8},
	{"predict-features", 1},
}

func main() {
	seed := flag.Uint64("seed", 1, "pipeline seed")
	nodes := flag.Int("nodes", benchstage.Nodes(), "system size (defaults to ASTRA_BENCH_NODES, then 256)")
	workersFlag := flag.String("workers", "", "comma-separated worker counts to sweep (serial 1 is always included; default: 1 and GOMAXPROCS)")
	out := flag.String("out", "BENCH_pipeline.json", "output path")
	guard := flag.Bool("guard", false, "check allocs/op of the guarded stages against -against instead of writing a baseline")
	against := flag.String("against", "BENCH_pipeline.json", "baseline to guard against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth before -guard fails")
	tputTolerance := flag.Float64("tput-tolerance", 0.15, "allowed fractional records/s drop before -guard fails")
	flag.Parse()

	workerCounts, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astrabench:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM stop the sweep between measurements; nothing partial
	// is ever written (the baseline lands via one atomic rename).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	set, err := benchstage.New(ctx, *seed, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *guard {
		os.Exit(runGuard(set, *against, *tolerance, *tputTolerance))
	}

	doc := Baseline{
		Seed:       set.Seed,
		Nodes:      set.Nodes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Speedup:    map[string]float64{},
	}
	for _, stage := range set.Stages {
		var serialNs int64
		for _, w := range workerCounts {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "astrabench: interrupted; no baseline written")
				os.Exit(130)
			}
			row := measure(stage, w)
			doc.Stages = append(doc.Stages, row)
			if w == 1 {
				serialNs = row.NsPerOp
				// Baseline entry: overwritten below if a sweep beats it.
				doc.Speedup[stage.Name] = 1.0
			} else if serialNs > 0 && row.NsPerOp > 0 {
				if s := float64(serialNs) / float64(row.NsPerOp); s > doc.Speedup[stage.Name] {
					doc.Speedup[stage.Name] = s
				}
			}
			line := fmt.Sprintf("%-14s workers=%-2d %12d ns/op %10d B/op %8d allocs/op %14.0f records/s",
				stage.Name, w, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.RecordsPerSec)
			if row.MBPerSec > 0 {
				line += fmt.Sprintf(" %9.1f MB/s", row.MBPerSec)
			}
			fmt.Println(line)
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := atomicio.WriteFile(context.WithoutCancel(ctx), atomicio.OS, *out, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (seed %d, %d nodes, GOMAXPROCS %d)\n", *out, doc.Seed, doc.Nodes, doc.GOMAXPROCS)
}

// parseWorkers expands the -workers flag into a sorted, deduplicated
// sweep that always starts with the serial baseline.
func parseWorkers(s string) ([]int, error) {
	counts := map[int]bool{1: true}
	if s == "" {
		if n := runtime.GOMAXPROCS(0); n > 1 {
			counts[n] = true
		}
	} else {
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, err := strconv.Atoi(part)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("invalid -workers entry %q", part)
			}
			counts[n] = true
		}
	}
	var out []int
	for n := range counts {
		out = append(out, n)
	}
	sort.Ints(out)
	// 0 means GOMAXPROCS inside the stages; sweep it last, after the
	// explicit counts, rather than sorting it before the serial row.
	if len(out) > 0 && out[0] == 0 {
		out = append(out[1:], 0)
	}
	return out, nil
}

func measure(stage benchstage.Stage, workers int) StageResult {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stage.Op(workers)
		}
	})
	row := StageResult{
		Stage:       stage.Name,
		Workers:     workers,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Records:     stage.Records,
	}
	if row.NsPerOp > 0 {
		row.RecordsPerSec = float64(stage.Records) / (float64(row.NsPerOp) / 1e9)
	}
	if stage.Bytes > 0 {
		row.InputBytes = stage.Bytes
		if row.NsPerOp > 0 {
			row.MBPerSec = float64(stage.Bytes) / 1e6 / (float64(row.NsPerOp) / 1e9)
		}
	}
	return row
}

// runGuard re-measures the guarded stages serially and compares them to
// the baseline, failing on allocs/op growth beyond tolerance or a
// records/s drop beyond tputTolerance. A small absolute slack absorbs
// runtime jitter on near-zero allocation budgets; stages the baseline
// predates are reported and skipped rather than failed, so a freshly
// extended guard list never breaks `make bench-guard` until the
// baseline is regenerated.
func runGuard(set *benchstage.Set, path string, tolerance, tputTolerance float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "astrabench: guard: %v\n", err)
		return 1
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "astrabench: guard: %s: %v\n", path, err)
		return 1
	}
	if base.Nodes != set.Nodes {
		fmt.Fprintf(os.Stderr, "astrabench: guard: baseline is for %d nodes, run is %d; regenerate with `make bench`\n", base.Nodes, set.Nodes)
		return 1
	}
	baseRows := map[guardStage]StageResult{}
	for _, row := range base.Stages {
		baseRows[guardStage{row.Stage, row.Workers}] = row
	}
	failed := false
	for _, gs := range guardStages {
		label := gs.Name
		if gs.Workers != 1 {
			label = fmt.Sprintf("%s@%d", gs.Name, gs.Workers)
		}
		baseRow, ok := baseRows[gs]
		if !ok {
			fmt.Printf("%-16s no workers=%d baseline row in %s; skipping (regenerate with `make bench`)\n", label, gs.Workers, path)
			continue
		}
		var stage *benchstage.Stage
		for i := range set.Stages {
			if set.Stages[i].Name == gs.Name {
				stage = &set.Stages[i]
				break
			}
		}
		if stage == nil {
			fmt.Fprintf(os.Stderr, "astrabench: guard: unknown stage %q\n", gs.Name)
			return 1
		}
		// Best of three: wall-clock noise on a shared box is one-sided
		// (runs are only ever slower than the code allows), so the
		// fastest observation is the honest throughput estimate to hold
		// against the floor. Allocs/op is noise-free; any run serves.
		row := measure(*stage, gs.Workers)
		for i := 0; i < 2; i++ {
			if again := measure(*stage, gs.Workers); again.RecordsPerSec > row.RecordsPerSec {
				again.AllocsPerOp = row.AllocsPerOp
				row = again
			}
		}

		old := baseRow.AllocsPerOp
		limit := old + int64(float64(old)*tolerance)
		if limit < old+16 {
			limit = old + 16
		}
		status := "ok"
		if row.AllocsPerOp > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-16s allocs/op %8d (baseline %8d, limit %8d) %s\n",
			label, row.AllocsPerOp, old, limit, status)

		if baseRow.RecordsPerSec > 0 {
			floor := baseRow.RecordsPerSec * (1 - tputTolerance)
			status = "ok"
			if row.RecordsPerSec < floor {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-16s records/s %8.0f (baseline %8.0f, floor %8.0f) %s\n",
				label, row.RecordsPerSec, baseRow.RecordsPerSec, floor, status)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "astrabench: guard: allocs/op or records/s regressed beyond tolerance; investigate or regenerate the baseline with `make bench`")
		return 1
	}
	return 0
}
