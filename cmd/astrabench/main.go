// Command astrabench runs the pipeline-stage benchmarks and writes
// BENCH_pipeline.json, the perf-regression baseline `make bench` tracks:
// for every stage (generation, dataset build, clustering, analysis,
// report) at the serial and the GOMAXPROCS worker counts, ns/op,
// allocs/op, bytes/op and records/sec, plus the parallel-over-serial
// speedup per stage.
//
// Usage:
//
//	astrabench [-seed 1] [-nodes N] [-out BENCH_pipeline.json]
//
// The node count defaults to ASTRA_BENCH_NODES (then 256), pinning the
// scale so numbers are comparable across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchstage"
)

// StageResult is one (stage, workers) measurement row.
type StageResult struct {
	Stage         string  `json:"stage"`
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	Records       int     `json:"records"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// Baseline is the BENCH_pipeline.json document.
type Baseline struct {
	Seed       uint64        `json:"seed"`
	Nodes      int           `json:"nodes"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Stages     []StageResult `json:"stages"`
	// Speedup maps stage -> serial ns/op over parallel ns/op (only
	// meaningful when GOMAXPROCS > 1).
	Speedup map[string]float64 `json:"speedup"`
}

func main() {
	seed := flag.Uint64("seed", 1, "pipeline seed")
	nodes := flag.Int("nodes", benchstage.Nodes(), "system size (defaults to ASTRA_BENCH_NODES, then 256)")
	out := flag.String("out", "BENCH_pipeline.json", "output path")
	flag.Parse()

	set, err := benchstage.New(*seed, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	maxWorkers := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	if maxWorkers > 1 {
		workerCounts = append(workerCounts, maxWorkers)
	}

	doc := Baseline{
		Seed:       set.Seed,
		Nodes:      set.Nodes,
		GOMAXPROCS: maxWorkers,
		Speedup:    map[string]float64{},
	}
	serialNs := map[string]int64{}
	for _, stage := range set.Stages {
		for _, w := range workerCounts {
			stage, w := stage, w
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					stage.Op(w)
				}
			})
			row := StageResult{
				Stage:       stage.Name,
				Workers:     w,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Records:     stage.Records,
			}
			if row.NsPerOp > 0 {
				row.RecordsPerSec = float64(stage.Records) / (float64(row.NsPerOp) / 1e9)
			}
			doc.Stages = append(doc.Stages, row)
			if w == 1 {
				serialNs[stage.Name] = row.NsPerOp
			} else if s := serialNs[stage.Name]; s > 0 && row.NsPerOp > 0 {
				doc.Speedup[stage.Name] = float64(s) / float64(row.NsPerOp)
			}
			fmt.Printf("%-14s workers=%-2d %12d ns/op %10d B/op %8d allocs/op %14.0f records/s\n",
				stage.Name, w, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.RecordsPerSec)
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (seed %d, %d nodes, GOMAXPROCS %d)\n", *out, doc.Seed, doc.Nodes, doc.GOMAXPROCS)
}
