package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/colfmt"
	"repro/internal/mce"
)

func TestColumnExtraction(t *testing.T) {
	rows := [][]string{
		{"count", "label"},
		{"3", "a"},
		{"1", "b"},
		{"7", "c"},
	}
	ints, err := intColumn(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 3 || ints[0] != 3 || ints[2] != 7 {
		t.Errorf("intColumn = %v", ints)
	}
	// Garbage mid-file is an error, not a skip.
	bad := [][]string{{"count"}, {"3"}, {"x"}}
	if _, err := intColumn(bad, 0); err == nil {
		t.Error("mid-file garbage accepted")
	}
	// Out-of-range column.
	if _, err := intColumn(rows, 5); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestFloatColumnsPairing(t *testing.T) {
	rows := [][]string{
		{"x", "y"},
		{"1", "2"},
		{"3", "4"},
	}
	xs, ys, err := floatColumns(rows, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 2 || len(ys) != 2 || xs[1] != 3 || ys[1] != 4 {
		t.Errorf("floatColumns = %v, %v", xs, ys)
	}
	// A header is skipped for both columns together; pairing never skews.
	if len(xs) != len(ys) {
		t.Error("columns desynchronized")
	}
	bad := [][]string{{"1", "2"}, {"3", "oops"}}
	if _, _, err := floatColumns(bad, 0, 1); err == nil {
		t.Error("unparseable pair accepted")
	}
}

func TestReadInputCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, recs, err := readInput(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if recs != nil {
		t.Error("CSV input sniffed as columnar")
	}
	if len(rows) != 2 || rows[1][1] != "2" {
		t.Errorf("readInput = %v", rows)
	}
	if _, _, err := readInput(context.Background(), filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestReadInputColfmt covers the sniffed columnar path end to end: the
// file decodes to records and -field extraction yields fit-ready values.
func TestReadInputColfmt(t *testing.T) {
	want := colfmt.Records{CEs: []mce.CERecord{
		{Time: time.Unix(100, 0).UTC(), Node: 1, Slot: 2, Bank: 3, BitPos: 7, Syndrome: 9},
		{Time: time.Unix(200, 0).UTC(), Node: 4, Slot: 5, Bank: 6, BitPos: 11, Syndrome: 13},
	}}
	var buf bytes.Buffer
	if err := colfmt.Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "records.col")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := readInput(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if recs == nil {
		t.Fatal("columnar input not sniffed")
	}
	for _, tc := range []struct {
		field string
		want  []int
	}{
		{"bitpos", []int{7, 11}},
		{"bank", []int{3, 6}},
		{"node", []int{1, 4}},
		{"syndrome", []int{9, 13}},
	} {
		xs, err := ceField(recs, tc.field)
		if err != nil {
			t.Fatalf("field %s: %v", tc.field, err)
		}
		if !reflect.DeepEqual(xs, tc.want) {
			t.Errorf("field %s = %v, want %v", tc.field, xs, tc.want)
		}
	}
	if _, err := ceField(recs, "nonsense"); err == nil {
		t.Error("unknown field accepted")
	}
}
