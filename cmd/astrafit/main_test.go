package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestColumnExtraction(t *testing.T) {
	rows := [][]string{
		{"count", "label"},
		{"3", "a"},
		{"1", "b"},
		{"7", "c"},
	}
	ints, err := intColumn(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 3 || ints[0] != 3 || ints[2] != 7 {
		t.Errorf("intColumn = %v", ints)
	}
	// Garbage mid-file is an error, not a skip.
	bad := [][]string{{"count"}, {"3"}, {"x"}}
	if _, err := intColumn(bad, 0); err == nil {
		t.Error("mid-file garbage accepted")
	}
	// Out-of-range column.
	if _, err := intColumn(rows, 5); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestFloatColumnsPairing(t *testing.T) {
	rows := [][]string{
		{"x", "y"},
		{"1", "2"},
		{"3", "4"},
	}
	xs, ys, err := floatColumns(rows, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 2 || len(ys) != 2 || xs[1] != 3 || ys[1] != 4 {
		t.Errorf("floatColumns = %v, %v", xs, ys)
	}
	// A header is skipped for both columns together; pairing never skews.
	if len(xs) != len(ys) {
		t.Error("columns desynchronized")
	}
	bad := [][]string{{"1", "2"}, {"3", "oops"}}
	if _, _, err := floatColumns(bad, 0, 1); err == nil {
		t.Error("unparseable pair accepted")
	}
}

func TestReadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := readCSV(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1] != "2" {
		t.Errorf("readCSV = %v", rows)
	}
	if _, err := readCSV(context.Background(), filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}
