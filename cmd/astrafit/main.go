// Command astrafit is a small statistical utility over CSV columns: the
// discrete power-law MLE (Clauset-Shalizi-Newman) used for the Fig 5/8
// "appears to obey a power law" claims, and the OLS linear fit used for
// the Fig 9 temperature-window analysis.
//
// Usage:
//
//	astrafit -mode powerlaw -in counts.csv -col 2 [-xmin 1 | -auto]
//	astrafit -mode powerlaw -in records.col -field bitpos [-auto]
//	astrafit -mode linear -in data.csv -xcol 0 -ycol 1
//
// Columns are zero-based; the first row is assumed to be a header and
// skipped unless it parses as a number. A columnar records.col replay
// (detected by magic) can feed the power-law fit directly: -field names
// the CE column to fit, skipping CSV rendering and parsing entirely.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"repro/internal/colfmt"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("astrafit: ")
	var (
		mode  = flag.String("mode", "powerlaw", "fit mode: powerlaw, linear or weibull")
		in    = flag.String("in", "", "input CSV path (required)")
		col   = flag.Int("col", 0, "powerlaw: value column")
		xmin  = flag.Int("xmin", 1, "powerlaw: lower cutoff")
		auto  = flag.Bool("auto", false, "powerlaw: scan xmin by KS distance")
		xcol  = flag.Int("xcol", 0, "linear: x column")
		ycol  = flag.Int("ycol", 1, "linear: y column")
		field = flag.String("field", "bitpos", "powerlaw with a records.col input: CE column to fit (bitpos, bank, row, col, rank, socket, slot, node, syndrome)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM abort the input read (the only unbounded stage here).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rows, recs, err := readInput(ctx, *in)
	if err != nil {
		if ctx.Err() != nil {
			os.Exit(130)
		}
		log.Fatal(err)
	}
	if recs != nil && *mode != "powerlaw" {
		log.Fatalf("columnar input supports -mode powerlaw only (got %q)", *mode)
	}
	switch *mode {
	case "powerlaw":
		var xs []int
		if recs != nil {
			xs, err = ceField(recs, *field)
		} else {
			xs, err = intColumn(rows, *col)
		}
		if err != nil {
			log.Fatal(err)
		}
		var fit stats.PowerLawFit
		if *auto {
			fit, err = stats.FitPowerLawAuto(xs)
		} else {
			fit, err = stats.FitPowerLaw(xs, *xmin)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("discrete power law: alpha=%.4f xmin=%d KS=%.4f n_tail=%d\n",
			fit.Alpha, fit.Xmin, fit.KS, fit.NTail)
	case "linear":
		xs, ys, err := floatColumns(rows, *xcol, *ycol)
		if err != nil {
			log.Fatal(err)
		}
		fit, err := stats.FitLinear(xs, ys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("OLS: y = %.6g + %.6g*x  R2=%.4f slope_stderr=%.4g t=%.2f n=%d\n",
			fit.Intercept, fit.Slope, fit.R2, fit.StdErr, fit.SlopeT(), fit.N)
	case "weibull":
		xs, _, err := floatColumns(rows, *col, *col)
		if err != nil {
			log.Fatal(err)
		}
		fit, err := stats.FitWeibull(xs)
		if err != nil {
			log.Fatal(err)
		}
		regime := "memoryless"
		switch {
		case fit.Shape < 0.9:
			regime = "infant mortality (decreasing hazard)"
		case fit.Shape > 1.1:
			regime = "wear-out (increasing hazard)"
		}
		fmt.Printf("Weibull: shape=%.4f scale=%.4f mean=%.4f n=%d — %s\n",
			fit.Shape, fit.Scale, fit.Mean(), fit.N, regime)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// readInput opens path and sniffs its format: a columnar replay decodes
// to records (rows nil), anything else parses as CSV (recs nil).
func readInput(ctx context.Context, path string) ([][]string, *colfmt.Records, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(&ctxReader{ctx: ctx, r: f}, 64*1024)
	prefix, _ := br.Peek(colfmt.MagicLen)
	if colfmt.Sniff(prefix) {
		recs, err := colfmt.Read(br)
		if err != nil {
			return nil, nil, err
		}
		return nil, &recs, nil
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	return rows, nil, err
}

// ceField pulls one integer CE column out of decoded columnar records.
func ceField(recs *colfmt.Records, field string) ([]int, error) {
	get, ok := map[string]func(i int) int{
		"bitpos":   func(i int) int { return recs.CEs[i].BitPos },
		"bank":     func(i int) int { return recs.CEs[i].Bank },
		"row":      func(i int) int { return recs.CEs[i].RowRaw },
		"col":      func(i int) int { return recs.CEs[i].Col },
		"rank":     func(i int) int { return recs.CEs[i].Rank },
		"socket":   func(i int) int { return recs.CEs[i].Socket },
		"slot":     func(i int) int { return int(recs.CEs[i].Slot) },
		"node":     func(i int) int { return int(recs.CEs[i].Node) },
		"syndrome": func(i int) int { return int(recs.CEs[i].Syndrome) },
	}[field]
	if !ok {
		return nil, fmt.Errorf("unknown CE field %q", field)
	}
	out := make([]int, len(recs.CEs))
	for i := range recs.CEs {
		out[i] = get(i)
	}
	return out, nil
}

// ctxReader aborts the streaming read when ctx is cancelled.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// column extracts a column, skipping a leading header row if its cell does
// not parse.
func column(rows [][]string, col int) ([]string, error) {
	var out []string
	for i, row := range rows {
		if col >= len(row) {
			return nil, fmt.Errorf("row %d has only %d columns", i+1, len(row))
		}
		out = append(out, row[col])
	}
	return out, nil
}

func intColumn(rows [][]string, col int) ([]int, error) {
	cells, err := column(rows, col)
	if err != nil {
		return nil, err
	}
	var out []int
	for i, c := range cells {
		v, err := strconv.Atoi(c)
		if err != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("row %d: %v", i+1, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// floatColumns extracts paired columns row-wise so a skipped header never
// desynchronizes x from y.
func floatColumns(rows [][]string, xcol, ycol int) (xs, ys []float64, err error) {
	xc, err := column(rows, xcol)
	if err != nil {
		return nil, nil, err
	}
	yc, err := column(rows, ycol)
	if err != nil {
		return nil, nil, err
	}
	for i := range xc {
		x, errX := strconv.ParseFloat(xc[i], 64)
		y, errY := strconv.ParseFloat(yc[i], 64)
		if errX != nil || errY != nil {
			if i == 0 {
				continue // header
			}
			return nil, nil, fmt.Errorf("row %d: unparseable pair (%q, %q)", i+1, xc[i], yc[i])
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys, nil
}
