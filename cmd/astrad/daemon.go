package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/stream"
	"repro/internal/syslog"
)

// siteSpec names one tailed log: a site id for the /v1/sites URL space
// and the path of the syslog it feeds from.
type siteSpec struct {
	id   string
	path string
}

// daemonConfig is the parsed flag set.
type daemonConfig struct {
	logPath   string
	sites     []siteSpec
	statePath string
	listen    string

	dedupWindow   int
	reorderWindow time.Duration
	poll          time.Duration
	checkpointSec time.Duration

	dimms      int
	window     time.Duration
	workers    int
	partitions int

	// Admission queue between each scanner and its engine.
	queueDepth    int
	queueHigh     int
	queueLow      int
	shedPolicy    overload.Policy
	drainBatch    int
	drainInterval time.Duration

	// Checkpoint circuit breaker.
	cpFailures int
	cpCooldown time.Duration
	cpTimeout  time.Duration

	// HTTP server hardening.
	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	maxHeaderBytes    int
	maxConcurrent     int
	requestTimeout    time.Duration
}

// siteDaemon is one site's ingest pipeline: scanner -> admission queue ->
// drainer -> partitioned engine. The scanner and the checkpoint-section
// capture are owned by the site's ingest goroutine; everything else is
// concurrency-safe.
type siteDaemon struct {
	id      string
	logPath string
	engine  *stream.Sharded

	// queue is the site's admission layer: the scanner Offers, the
	// drainer Takes into the engine, sheds charge engine.NoteShed.
	queue *overload.Queue[mce.CERecord]

	// statsMu guards the published copy of the scanner's accounting; the
	// scanner itself is touched only by the ingest goroutine.
	statsMu sync.Mutex
	stats   syslog.ScanStats

	offset atomic.Int64
	// section holds the site's latest marshaled checkpoint section,
	// captured by the ingest goroutine at a consistent instant (scanner
	// checkpoint + Freeze from the same goroutine). The global writer
	// composes whatever sections are current into one state file.
	section atomic.Pointer[[]byte]
}

// daemon owns the per-site pipelines and the state shared with the HTTP
// layer.
type daemon struct {
	cfg   daemonConfig
	log   *slog.Logger
	sites []*siteDaemon

	breaker *overload.Breaker
	// cpCh carries pre-composed state snapshots to the checkpoint
	// writer; capacity 1 so a stalled disk backs up into skipped
	// checkpoints, never into the ingest loops.
	cpCh chan []byte
	// fs is the filesystem for state writes; tests and the load harness
	// substitute a fault injector.
	fs atomicio.FS

	checkpoints atomic.Uint64
	cpSkipped   atomic.Uint64
}

// publishStats exposes a snapshot of the site's scanner accounting to
// the HTTP layer (the scanner itself is not concurrency-safe).
func (s *siteDaemon) publishStats(st syslog.ScanStats) {
	s.statsMu.Lock()
	s.stats = st
	s.statsMu.Unlock()
}

// snapshotStats aggregates scanner accounting across sites: the legacy
// unlabelled ingest series report the all-sites totals.
func (d *daemon) snapshotStats() syslog.ScanStats {
	var sum syslog.ScanStats
	for _, s := range d.sites {
		s.statsMu.Lock()
		st := s.stats
		s.statsMu.Unlock()
		sum.Lines += st.Lines
		sum.CEs += st.CEs
		sum.DUEs += st.DUEs
		sum.HETs += st.HETs
		sum.Other += st.Other
		sum.Malformed += st.Malformed
		sum.Truncated += st.Truncated
		sum.Garbage += st.Garbage
		sum.Duplicated += st.Duplicated
		sum.Reordered += st.Reordered
		sum.DroppedOutOfOrder += st.DroppedOutOfOrder
	}
	return sum
}

func (d *daemon) scanConfig() syslog.ScanConfig {
	return syslog.ScanConfig{DedupWindow: d.cfg.dedupWindow, ReorderWindow: d.cfg.reorderWindow}
}

// overloadStatus bundles the admission layer's state for /healthz and
// /metrics: queue books summed across sites, saturation if any site is
// shedding, plus the (global) checkpoint breaker.
func (d *daemon) overloadStatus() overload.Status {
	var q overload.QueueStats
	for _, s := range d.sites {
		st := s.queue.Stats()
		q.Offered += st.Offered
		q.Admitted += st.Admitted
		q.Drained += st.Drained
		q.Rejected += st.Rejected
		q.Evicted += st.Evicted
		q.Shed += st.Shed
		q.Depth += st.Depth
		q.Capacity += st.Capacity
		q.High += st.High
		q.Low += st.Low
		q.Saturated = q.Saturated || st.Saturated
		q.Saturations += st.Saturations
	}
	return overload.Status{Queue: q, Breaker: d.breaker.Stats()}
}

// ingest is one site's scan loop: tail the log through the hardened
// scanner and offer every CE to the site's admission queue. The drainer —
// not this goroutine — feeds the engine, so a slow clustering step backs
// up into the queue (visible, bounded, shed by policy) instead of into
// the tail. Checkpoint sections are captured here, between Scan calls,
// and the composed state handed to the async writer. It returns the
// final scanner checkpoint so the shutdown path can persist the exact
// resume point once the queue has drained.
func (d *daemon) ingest(ctx context.Context, s *siteDaemon, f *os.File, cp syslog.Checkpoint) (syslog.Checkpoint, error) {
	follower := syslog.NewFollower(ctx, f, syslog.TailConfig{Poll: d.cfg.poll})
	sc := syslog.NewScannerConfig(follower, d.scanConfig())
	if err := sc.Restore(cp); err != nil {
		return cp, err
	}
	last := time.Now()
	for sc.Scan() {
		if rec := sc.Record(); rec.Kind == syslog.KindCE {
			s.queue.Offer(rec.CE)
		}
		s.publishStats(sc.Stats())
		s.offset.Store(sc.Offset())
		if d.cfg.statePath != "" && time.Since(last) >= d.cfg.checkpointSec {
			if err := d.snapshotSection(s, sc.Checkpoint()); err != nil {
				d.log.Warn("checkpoint snapshot failed", "site", s.id, "err", err)
			} else {
				d.offerCheckpoint()
			}
			last = time.Now()
		}
	}
	s.publishStats(sc.Stats())
	s.offset.Store(sc.Offset())

	err := sc.Err()
	if errors.Is(err, syslog.ErrTailStopped) {
		err = nil
	}
	return sc.Checkpoint(), err
}

// drain is the consumer side of one site's admission queue: batches go
// into the engine, Done releases any Freeze waiting for a consistent
// snapshot. An optional pause between batches exists for the chaos
// harness (and operators throttling a cold restore); it runs after
// Done, so checkpoints never wait out the pause.
func (d *daemon) drain(s *siteDaemon) {
	for {
		batch, ok := s.queue.Take(d.cfg.drainBatch)
		if len(batch) > 0 {
			s.engine.IngestBatch(batch)
			s.queue.Done()
			if d.cfg.drainInterval > 0 {
				time.Sleep(d.cfg.drainInterval)
			}
		}
		if !ok {
			return
		}
	}
}

// snapshotSection captures one site's durable state at a consistent
// instant: Freeze waits out any in-flight drain batch, then the engine's
// records plus the still-queued records are exactly the CEs the scanner
// had emitted at cp — a restart loses nothing and duplicates nothing,
// and the shed count carried alongside keeps the degraded accounting
// honest across the restart. The marshaled section is published for the
// composer; the disk write happens in the checkpoint writer.
func (d *daemon) snapshotSection(s *siteDaemon, cp syslog.Checkpoint) error {
	var data []byte
	var err error
	s.queue.Freeze(func(queued []mce.CERecord, _ overload.QueueStats) {
		recs := s.engine.Records()
		recs = append(recs, queued...)
		data, err = marshalSiteSection(cp, s.engine.Shed(), recs)
	})
	if err != nil {
		return err
	}
	s.section.Store(&data)
	return nil
}

// composeState concatenates the latest per-site sections into one state
// file image: the v2 single-site format when one site is configured
// (byte-compatible with older daemons), the v3 multi-site format
// otherwise. Sections are each internally consistent; sites tail
// independent logs, so a file composed from sections captured moments
// apart is still a correct per-site resume point.
func (d *daemon) composeState() []byte {
	if len(d.sites) == 1 {
		sec := *d.sites[0].section.Load()
		out := make([]byte, 0, len(stateMagic)+1+len(sec))
		out = append(out, stateMagic...)
		out = append(out, '\n')
		return append(out, sec...)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nsites %d\n", stateMagicV3, len(d.sites))
	for _, s := range d.sites {
		fmt.Fprintf(&b, "site %s\n", s.id)
		b.Write(*s.section.Load())
	}
	return b.Bytes()
}

// offerCheckpoint composes the current sections and hands the image to
// the async writer; if the writer is still busy with the previous
// snapshot (stalled disk), the checkpoint is skipped — cadence degrades,
// ingest does not.
func (d *daemon) offerCheckpoint() {
	data := d.composeState()
	select {
	case d.cpCh <- data:
	default:
		d.cpSkipped.Add(1)
		d.log.Warn("checkpoint skipped", "reason", "writer busy")
	}
}

// offsetBytes sums the byte offsets consumed across all tailed logs.
func (d *daemon) offsetBytes() int64 {
	var n int64
	for _, s := range d.sites {
		n += s.offset.Load()
	}
	return n
}

// checkpointWriter drains cpCh through the circuit breaker: writes that
// fail — or stall past -checkpoint-timeout — count against the breaker,
// and an open breaker fast-fails checkpoints for the cooldown instead of
// queueing more I/O behind a sick disk.
func (d *daemon) checkpointWriter() {
	for data := range d.cpCh {
		if !d.breaker.Allow() {
			d.cpSkipped.Add(1)
			continue
		}
		start := time.Now()
		err := d.persist(data)
		elapsed := time.Since(start)
		switch {
		case err != nil:
			d.breaker.Failure()
			d.log.Warn("checkpoint failed", "err", err)
		case d.cfg.cpTimeout > 0 && elapsed > d.cfg.cpTimeout:
			// The write landed but the disk is stalling: trip toward open
			// so the next writes are skipped instead of piling up.
			d.breaker.Failure()
			d.checkpoints.Add(1)
			d.log.Warn("checkpoint slow", "elapsed", elapsed, "breaker", d.breaker.State().String())
		default:
			d.breaker.Success()
			d.checkpoints.Add(1)
			d.log.Info("checkpoint", "bytes", len(data), "offset", d.offsetBytes())
		}
	}
}

// persist writes one marshaled state snapshot atomically.
func (d *daemon) persist(data []byte) error {
	_, err := atomicio.WriteFile(context.Background(), d.fs, d.cfg.statePath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	return err
}

// State file magics; v2 added the shed count, v3 wraps per-site sections
// for multi-site daemons. v1 files (no shed line) and v2 files still
// load, as a single site.
const (
	stateMagic   = "astrad-state v2"
	stateMagicV1 = "astrad-state v1"
	stateMagicV3 = "astrad-state v3"
)

// siteSnapshot is one site's restored durable state.
type siteSnapshot struct {
	id   string
	cp   syslog.Checkpoint
	shed uint64
	recs []mce.CERecord
}

// marshalSiteSection renders one site's durable state section: the
// serialized scanner checkpoint (length-prefixed), the overload shed
// count, and the engine's CE records as canonical syslog lines.
// Replaying those lines into a fresh engine reproduces the fault state
// exactly (the engine's replay contract — at any partition count), the
// shed count restores the degraded accounting, and the scanner
// checkpoint resumes the tail at the matching byte.
func marshalSiteSection(cp syslog.Checkpoint, shed uint64, recs []mce.CERecord) ([]byte, error) {
	cpb, err := cp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "checkpoint %d\n", len(cpb))
	b.Write(cpb)
	fmt.Fprintf(&b, "shed %d\n", shed)
	fmt.Fprintf(&b, "records %d\n", len(recs))
	var line []byte
	for _, r := range recs {
		line = syslog.AppendCE(line[:0], r)
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// marshalState renders the single-site (v2) state file.
func marshalState(cp syslog.Checkpoint, shed uint64, recs []mce.CERecord) ([]byte, error) {
	sec, err := marshalSiteSection(cp, shed, recs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(stateMagic)+1+len(sec))
	out = append(out, stateMagic...)
	out = append(out, '\n')
	return append(out, sec...), nil
}

// marshalStateV3 renders the multi-site state file: a site count, then
// one named section per site.
func marshalStateV3(sites []siteSnapshot) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nsites %d\n", stateMagicV3, len(sites))
	for _, s := range sites {
		sec, err := marshalSiteSection(s.cp, s.shed, s.recs)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "site %s\n", s.id)
		b.Write(sec)
	}
	return b.Bytes(), nil
}

// parseSection parses one checkpoint/shed/records section from the front
// of data and returns the unconsumed remainder. hasShed is false for v1
// files, which predate the shed line.
func parseSection(data []byte, hasShed bool) (cp syslog.Checkpoint, shed uint64, recs []mce.CERecord, rest []byte, err error) {
	rest = data
	var cpLen int
	n, err := fmt.Sscanf(string(firstLine(rest)), "checkpoint %d", &cpLen)
	if err != nil || n != 1 {
		return cp, 0, nil, nil, fmt.Errorf("astrad: state file: bad checkpoint header")
	}
	rest = rest[len(firstLine(rest))+1:]
	if cpLen < 0 || cpLen > len(rest) {
		return cp, 0, nil, nil, fmt.Errorf("astrad: state file: truncated checkpoint")
	}
	if err := cp.UnmarshalBinary(rest[:cpLen]); err != nil {
		return cp, 0, nil, nil, err
	}
	rest = rest[cpLen:]
	if hasShed {
		if n, err := fmt.Sscanf(string(firstLine(rest)), "shed %d", &shed); err != nil || n != 1 {
			return cp, 0, nil, nil, fmt.Errorf("astrad: state file: bad shed header")
		}
		rest = rest[len(firstLine(rest))+1:]
	}
	var count int
	if n, err := fmt.Sscanf(string(firstLine(rest)), "records %d", &count); err != nil || n != 1 {
		return cp, 0, nil, nil, fmt.Errorf("astrad: state file: bad records header")
	}
	rest = rest[len(firstLine(rest))+1:]
	var dec syslog.Decoder
	recs = make([]mce.CERecord, 0, count)
	for i := 0; i < count; i++ {
		line := firstLine(rest)
		if line == nil {
			return cp, 0, nil, nil, fmt.Errorf("astrad: state file: truncated at record %d of %d", i, count)
		}
		rest = rest[len(line)+1:]
		p, err := dec.ParseLineBytes(line)
		if err != nil || p.Kind != syslog.KindCE {
			return cp, 0, nil, nil, fmt.Errorf("astrad: state file: record %d: bad CE line %q: %v", i, line, err)
		}
		recs = append(recs, p.CE)
	}
	return cp, shed, recs, rest, nil
}

// unmarshalState parses a single-site (v1/v2) state file back into its
// checkpoint, shed count, and records.
func unmarshalState(data []byte) (syslog.Checkpoint, uint64, []mce.CERecord, error) {
	hasShed := true
	rest, ok := bytes.CutPrefix(data, []byte(stateMagic+"\n"))
	if !ok {
		rest, ok = bytes.CutPrefix(data, []byte(stateMagicV1+"\n"))
		hasShed = false
		if !ok {
			return syslog.Checkpoint{}, 0, nil, fmt.Errorf("astrad: state file: bad header")
		}
	}
	cp, shed, recs, rest, err := parseSection(rest, hasShed)
	if err != nil {
		return syslog.Checkpoint{}, 0, nil, err
	}
	if len(rest) != 0 {
		return syslog.Checkpoint{}, 0, nil, fmt.Errorf("astrad: state file: %d trailing bytes", len(rest))
	}
	return cp, shed, recs, nil
}

// unmarshalStateV3 parses a multi-site state file into its per-site
// snapshots.
func unmarshalStateV3(data []byte) ([]siteSnapshot, error) {
	rest, ok := bytes.CutPrefix(data, []byte(stateMagicV3+"\n"))
	if !ok {
		return nil, fmt.Errorf("astrad: state file: bad v3 header")
	}
	var count int
	if n, err := fmt.Sscanf(string(firstLine(rest)), "sites %d", &count); err != nil || n != 1 {
		return nil, fmt.Errorf("astrad: state file: bad sites header")
	}
	if count < 0 {
		return nil, fmt.Errorf("astrad: state file: negative site count")
	}
	rest = rest[len(firstLine(rest))+1:]
	snaps := make([]siteSnapshot, 0, count)
	for i := 0; i < count; i++ {
		var id string
		line := firstLine(rest)
		if n, err := fmt.Sscanf(string(line), "site %s", &id); err != nil || n != 1 {
			return nil, fmt.Errorf("astrad: state file: bad site header at section %d", i)
		}
		rest = rest[len(line)+1:]
		cp, shed, recs, r, err := parseSection(rest, true)
		if err != nil {
			return nil, fmt.Errorf("astrad: state file: site %s: %w", id, err)
		}
		rest = r
		for _, prev := range snaps {
			if prev.id == id {
				return nil, fmt.Errorf("astrad: state file: duplicate site %s", id)
			}
		}
		snaps = append(snaps, siteSnapshot{id: id, cp: cp, shed: shed, recs: recs})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("astrad: state file: %d trailing bytes", len(rest))
	}
	return snaps, nil
}

// firstLine returns data up to (excluding) the first newline, or nil if
// data holds no complete line.
func firstLine(data []byte) []byte {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil
	}
	return data[:i]
}

// loadState reads the state file into per-site snapshots; a missing file
// is a fresh start, and v1/v2 single-site files load as one site named
// "default".
func loadState(path string) ([]siteSnapshot, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte(stateMagicV3+"\n")) {
		return unmarshalStateV3(data)
	}
	cp, shed, recs, err := unmarshalState(data)
	if err != nil {
		return nil, err
	}
	return []siteSnapshot{{id: "default", cp: cp, shed: shed, recs: recs}}, nil
}
