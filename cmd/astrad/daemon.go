package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/stream"
	"repro/internal/syslog"
)

// daemonConfig is the parsed flag set.
type daemonConfig struct {
	logPath   string
	statePath string
	listen    string

	dedupWindow   int
	reorderWindow time.Duration
	poll          time.Duration
	checkpointSec time.Duration

	dimms   int
	window  time.Duration
	workers int

	// Admission queue between the scanner and the engine.
	queueDepth    int
	queueHigh     int
	queueLow      int
	shedPolicy    overload.Policy
	drainBatch    int
	drainInterval time.Duration

	// Checkpoint circuit breaker.
	cpFailures int
	cpCooldown time.Duration
	cpTimeout  time.Duration

	// HTTP server hardening.
	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	maxHeaderBytes    int
	maxConcurrent     int
	requestTimeout    time.Duration
}

// daemon owns the ingest loop and the state shared with the HTTP layer.
type daemon struct {
	cfg    daemonConfig
	log    *slog.Logger
	engine *stream.Engine

	// queue is the admission layer: the scanner Offers, the drainer
	// Takes into the engine, sheds charge engine.NoteShed.
	queue   *overload.Queue[mce.CERecord]
	breaker *overload.Breaker
	// cpCh carries pre-marshaled state snapshots to the checkpoint
	// writer; capacity 1 so a stalled disk backs up into skipped
	// checkpoints, never into the ingest loop.
	cpCh chan []byte
	// fs is the filesystem for state writes; tests and the load harness
	// substitute a fault injector.
	fs atomicio.FS

	// statsMu guards the published copy of the scanner's accounting; the
	// scanner itself is touched only by the ingest goroutine.
	statsMu sync.Mutex
	stats   syslog.ScanStats

	offset      atomic.Int64
	checkpoints atomic.Uint64
	cpSkipped   atomic.Uint64
}

// publishStats exposes a snapshot of the scanner accounting to the HTTP
// layer (the scanner itself is not concurrency-safe).
func (d *daemon) publishStats(st syslog.ScanStats) {
	d.statsMu.Lock()
	d.stats = st
	d.statsMu.Unlock()
}

func (d *daemon) snapshotStats() syslog.ScanStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

func (d *daemon) scanConfig() syslog.ScanConfig {
	return syslog.ScanConfig{DedupWindow: d.cfg.dedupWindow, ReorderWindow: d.cfg.reorderWindow}
}

// overloadStatus bundles the admission layer's state for /healthz and
// /metrics.
func (d *daemon) overloadStatus() overload.Status {
	return overload.Status{Queue: d.queue.Stats(), Breaker: d.breaker.Stats()}
}

// ingest is the daemon's heart: tail the log through the hardened
// scanner and offer every CE to the admission queue. The drainer — not
// this goroutine — feeds the engine, so a slow clustering step backs up
// into the queue (visible, bounded, shed by policy) instead of into the
// tail. Checkpoints are snapshotted here, between Scan calls, and handed
// to the async writer. It returns the final scanner checkpoint so the
// shutdown path can persist the exact resume point once the queue has
// drained.
func (d *daemon) ingest(ctx context.Context, f *os.File, cp syslog.Checkpoint) (syslog.Checkpoint, error) {
	follower := syslog.NewFollower(ctx, f, syslog.TailConfig{Poll: d.cfg.poll})
	sc := syslog.NewScannerConfig(follower, d.scanConfig())
	if err := sc.Restore(cp); err != nil {
		return cp, err
	}
	last := time.Now()
	for sc.Scan() {
		if rec := sc.Record(); rec.Kind == syslog.KindCE {
			d.queue.Offer(rec.CE)
		}
		d.publishStats(sc.Stats())
		d.offset.Store(sc.Offset())
		if d.cfg.statePath != "" && time.Since(last) >= d.cfg.checkpointSec {
			d.offerCheckpoint(sc.Checkpoint())
			last = time.Now()
		}
	}
	d.publishStats(sc.Stats())
	d.offset.Store(sc.Offset())

	err := sc.Err()
	if errors.Is(err, syslog.ErrTailStopped) {
		err = nil
	}
	return sc.Checkpoint(), err
}

// drain is the consumer side of the admission queue: batches go into
// the engine, Done releases any Freeze waiting for a consistent
// snapshot. An optional pause between batches exists for the chaos
// harness (and operators throttling a cold restore); it runs after
// Done, so checkpoints never wait out the pause.
func (d *daemon) drain() {
	for {
		batch, ok := d.queue.Take(d.cfg.drainBatch)
		if len(batch) > 0 {
			d.engine.IngestBatch(batch)
			d.queue.Done()
			if d.cfg.drainInterval > 0 {
				time.Sleep(d.cfg.drainInterval)
			}
		}
		if !ok {
			return
		}
	}
}

// snapshotState renders the daemon's durable state at a consistent
// instant: Freeze waits out any in-flight drain batch, then the engine's
// records plus the still-queued records are exactly the CEs the scanner
// had emitted at cp — a restart loses nothing and duplicates nothing,
// and the shed count carried alongside keeps the degraded accounting
// honest across the restart. Memory-only; the disk write happens in the
// checkpoint writer.
func (d *daemon) snapshotState(cp syslog.Checkpoint) (data []byte, err error) {
	d.queue.Freeze(func(queued []mce.CERecord, _ overload.QueueStats) {
		recs := d.engine.Records()
		recs = append(recs, queued...)
		data, err = marshalState(cp, d.engine.Shed(), recs)
	})
	return data, err
}

// offerCheckpoint snapshots state and hands it to the async writer; if
// the writer is still busy with the previous snapshot (stalled disk),
// the checkpoint is skipped — cadence degrades, ingest does not.
func (d *daemon) offerCheckpoint(cp syslog.Checkpoint) {
	data, err := d.snapshotState(cp)
	if err != nil {
		d.log.Warn("checkpoint snapshot failed", "err", err)
		return
	}
	select {
	case d.cpCh <- data:
	default:
		d.cpSkipped.Add(1)
		d.log.Warn("checkpoint skipped", "reason", "writer busy")
	}
}

// checkpointWriter drains cpCh through the circuit breaker: writes that
// fail — or stall past -checkpoint-timeout — count against the breaker,
// and an open breaker fast-fails checkpoints for the cooldown instead of
// queueing more I/O behind a sick disk.
func (d *daemon) checkpointWriter() {
	for data := range d.cpCh {
		if !d.breaker.Allow() {
			d.cpSkipped.Add(1)
			continue
		}
		start := time.Now()
		err := d.persist(data)
		elapsed := time.Since(start)
		switch {
		case err != nil:
			d.breaker.Failure()
			d.log.Warn("checkpoint failed", "err", err)
		case d.cfg.cpTimeout > 0 && elapsed > d.cfg.cpTimeout:
			// The write landed but the disk is stalling: trip toward open
			// so the next writes are skipped instead of piling up.
			d.breaker.Failure()
			d.checkpoints.Add(1)
			d.log.Warn("checkpoint slow", "elapsed", elapsed, "breaker", d.breaker.State().String())
		default:
			d.breaker.Success()
			d.checkpoints.Add(1)
			d.log.Info("checkpoint", "bytes", len(data), "offset", d.offset.Load())
		}
	}
}

// persist writes one marshaled state snapshot atomically.
func (d *daemon) persist(data []byte) error {
	_, err := atomicio.WriteFile(context.Background(), d.fs, d.cfg.statePath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	return err
}

// State file magics; v2 added the shed count. v1 files (no shed line)
// still load, with shed = 0.
const (
	stateMagic   = "astrad-state v2"
	stateMagicV1 = "astrad-state v1"
)

// marshalState renders the daemon's durable state: the serialized scanner
// checkpoint (length-prefixed), the overload shed count, and the engine's
// CE records as canonical syslog lines. Replaying those lines into a
// fresh engine reproduces the fault state exactly (the engine's replay
// contract), the shed count restores the degraded accounting, and the
// scanner checkpoint resumes the tail at the matching byte.
func marshalState(cp syslog.Checkpoint, shed uint64, recs []mce.CERecord) ([]byte, error) {
	cpb, err := cp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\ncheckpoint %d\n", stateMagic, len(cpb))
	b.Write(cpb)
	fmt.Fprintf(&b, "shed %d\n", shed)
	fmt.Fprintf(&b, "records %d\n", len(recs))
	var line []byte
	for _, r := range recs {
		line = syslog.AppendCE(line[:0], r)
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// unmarshalState parses a state file back into its checkpoint, shed
// count, and records.
func unmarshalState(data []byte) (syslog.Checkpoint, uint64, []mce.CERecord, error) {
	var cp syslog.Checkpoint
	hasShed := true
	rest, ok := bytes.CutPrefix(data, []byte(stateMagic+"\n"))
	if !ok {
		rest, ok = bytes.CutPrefix(data, []byte(stateMagicV1+"\n"))
		hasShed = false
		if !ok {
			return cp, 0, nil, fmt.Errorf("astrad: state file: bad header")
		}
	}
	var cpLen int
	n, err := fmt.Sscanf(string(firstLine(rest)), "checkpoint %d", &cpLen)
	if err != nil || n != 1 {
		return cp, 0, nil, fmt.Errorf("astrad: state file: bad checkpoint header")
	}
	rest = rest[len(firstLine(rest))+1:]
	if cpLen < 0 || cpLen > len(rest) {
		return cp, 0, nil, fmt.Errorf("astrad: state file: truncated checkpoint")
	}
	if err := cp.UnmarshalBinary(rest[:cpLen]); err != nil {
		return cp, 0, nil, err
	}
	rest = rest[cpLen:]
	var shed uint64
	if hasShed {
		if n, err := fmt.Sscanf(string(firstLine(rest)), "shed %d", &shed); err != nil || n != 1 {
			return cp, 0, nil, fmt.Errorf("astrad: state file: bad shed header")
		}
		rest = rest[len(firstLine(rest))+1:]
	}
	var count int
	if n, err := fmt.Sscanf(string(firstLine(rest)), "records %d", &count); err != nil || n != 1 {
		return cp, 0, nil, fmt.Errorf("astrad: state file: bad records header")
	}
	rest = rest[len(firstLine(rest))+1:]
	var dec syslog.Decoder
	recs := make([]mce.CERecord, 0, count)
	for i := 0; i < count; i++ {
		line := firstLine(rest)
		if line == nil {
			return cp, 0, nil, fmt.Errorf("astrad: state file: truncated at record %d of %d", i, count)
		}
		rest = rest[len(line)+1:]
		p, err := dec.ParseLineBytes(line)
		if err != nil || p.Kind != syslog.KindCE {
			return cp, 0, nil, fmt.Errorf("astrad: state file: record %d: bad CE line %q: %v", i, line, err)
		}
		recs = append(recs, p.CE)
	}
	if len(rest) != 0 {
		return cp, 0, nil, fmt.Errorf("astrad: state file: %d trailing bytes", len(rest))
	}
	return cp, shed, recs, nil
}

// firstLine returns data up to (excluding) the first newline, or nil if
// data holds no complete line.
func firstLine(data []byte) []byte {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil
	}
	return data[:i]
}

// loadState reads the state file; a missing file is a fresh start.
func loadState(path string) (syslog.Checkpoint, uint64, []mce.CERecord, error) {
	var cp syslog.Checkpoint
	if path == "" {
		return cp, 0, nil, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cp, 0, nil, nil
	}
	if err != nil {
		return cp, 0, nil, err
	}
	return unmarshalState(data)
}
