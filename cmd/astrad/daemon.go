package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/mce"
	"repro/internal/stream"
	"repro/internal/syslog"
)

// daemonConfig is the parsed flag set.
type daemonConfig struct {
	logPath   string
	statePath string
	listen    string

	dedupWindow   int
	reorderWindow time.Duration
	poll          time.Duration
	checkpointSec time.Duration

	dimms   int
	window  time.Duration
	workers int
}

// daemon owns the ingest loop and the state shared with the HTTP layer.
type daemon struct {
	cfg    daemonConfig
	log    *slog.Logger
	engine *stream.Engine

	// statsMu guards the published copy of the scanner's accounting; the
	// scanner itself is touched only by the ingest goroutine.
	statsMu sync.Mutex
	stats   syslog.ScanStats

	offset      atomic.Int64
	checkpoints atomic.Uint64
}

// publishStats exposes a snapshot of the scanner accounting to the HTTP
// layer (the scanner itself is not concurrency-safe).
func (d *daemon) publishStats(st syslog.ScanStats) {
	d.statsMu.Lock()
	d.stats = st
	d.statsMu.Unlock()
}

func (d *daemon) snapshotStats() syslog.ScanStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

func (d *daemon) scanConfig() syslog.ScanConfig {
	return syslog.ScanConfig{DedupWindow: d.cfg.dedupWindow, ReorderWindow: d.cfg.reorderWindow}
}

// ingest is the daemon's heart: tail the log through the hardened scanner,
// feed every CE into the engine, and checkpoint periodically. It returns
// nil on a clean stop (context cancelled), after writing a final
// checkpoint so the restart resumes exactly where this process left off.
func (d *daemon) ingest(ctx context.Context, f *os.File, cp syslog.Checkpoint) error {
	follower := syslog.NewFollower(ctx, f, syslog.TailConfig{Poll: d.cfg.poll})
	sc := syslog.NewScannerConfig(follower, d.scanConfig())
	if err := sc.Restore(cp); err != nil {
		return err
	}
	last := time.Now()
	for sc.Scan() {
		if rec := sc.Record(); rec.Kind == syslog.KindCE {
			d.engine.Ingest(rec.CE)
		}
		d.publishStats(sc.Stats())
		d.offset.Store(sc.Offset())
		if d.cfg.statePath != "" && time.Since(last) >= d.cfg.checkpointSec {
			if err := d.writeState(sc.Checkpoint()); err != nil {
				d.log.Warn("checkpoint failed", "err", err)
			}
			last = time.Now()
		}
	}
	d.publishStats(sc.Stats())
	d.offset.Store(sc.Offset())

	err := sc.Err()
	if errors.Is(err, syslog.ErrTailStopped) {
		err = nil
	}
	if err != nil {
		return err
	}
	// Clean stop: persist the exact resume point, reorder heap included.
	if d.cfg.statePath != "" {
		if werr := d.writeState(sc.Checkpoint()); werr != nil {
			return fmt.Errorf("final checkpoint: %w", werr)
		}
	}
	return nil
}

// writeState atomically persists the scanner checkpoint plus the engine's
// replayable record state. The write is keyed to the checkpoint, taken
// between Scan calls, so the engine records are exactly the CEs the
// scanner had emitted at that point: a restart loses nothing and
// duplicates nothing.
func (d *daemon) writeState(cp syslog.Checkpoint) error {
	data, err := marshalState(cp, d.engine.Records())
	if err != nil {
		return err
	}
	_, err = atomicio.WriteFile(context.Background(), atomicio.OS, d.cfg.statePath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return err
	}
	d.checkpoints.Add(1)
	d.log.Info("checkpoint", "offset", cp.Offset, "records", d.engine.Summary().Records)
	return nil
}

// stateMagic heads the daemon state file; version-bumped on change.
const stateMagic = "astrad-state v1"

// marshalState renders the daemon's durable state: the serialized scanner
// checkpoint (length-prefixed) followed by the engine's CE records as
// canonical syslog lines. Replaying those lines into a fresh engine
// reproduces the fault state exactly (the engine's replay contract), and
// the scanner checkpoint resumes the tail at the matching byte.
func marshalState(cp syslog.Checkpoint, recs []mce.CERecord) ([]byte, error) {
	cpb, err := cp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\ncheckpoint %d\n", stateMagic, len(cpb))
	b.Write(cpb)
	fmt.Fprintf(&b, "records %d\n", len(recs))
	var line []byte
	for _, r := range recs {
		line = syslog.AppendCE(line[:0], r)
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// unmarshalState parses a state file back into its checkpoint and records.
func unmarshalState(data []byte) (syslog.Checkpoint, []mce.CERecord, error) {
	var cp syslog.Checkpoint
	rest, ok := bytes.CutPrefix(data, []byte(stateMagic+"\n"))
	if !ok {
		return cp, nil, fmt.Errorf("astrad: state file: bad header")
	}
	var cpLen int
	n, err := fmt.Sscanf(string(firstLine(rest)), "checkpoint %d", &cpLen)
	if err != nil || n != 1 {
		return cp, nil, fmt.Errorf("astrad: state file: bad checkpoint header")
	}
	rest = rest[len(firstLine(rest))+1:]
	if cpLen < 0 || cpLen > len(rest) {
		return cp, nil, fmt.Errorf("astrad: state file: truncated checkpoint")
	}
	if err := cp.UnmarshalBinary(rest[:cpLen]); err != nil {
		return cp, nil, err
	}
	rest = rest[cpLen:]
	var count int
	if n, err := fmt.Sscanf(string(firstLine(rest)), "records %d", &count); err != nil || n != 1 {
		return cp, nil, fmt.Errorf("astrad: state file: bad records header")
	}
	rest = rest[len(firstLine(rest))+1:]
	var dec syslog.Decoder
	recs := make([]mce.CERecord, 0, count)
	for i := 0; i < count; i++ {
		line := firstLine(rest)
		if line == nil {
			return cp, nil, fmt.Errorf("astrad: state file: truncated at record %d of %d", i, count)
		}
		rest = rest[len(line)+1:]
		p, err := dec.ParseLineBytes(line)
		if err != nil || p.Kind != syslog.KindCE {
			return cp, nil, fmt.Errorf("astrad: state file: record %d: bad CE line %q: %v", i, line, err)
		}
		recs = append(recs, p.CE)
	}
	if len(rest) != 0 {
		return cp, nil, fmt.Errorf("astrad: state file: %d trailing bytes", len(rest))
	}
	return cp, recs, nil
}

// firstLine returns data up to (excluding) the first newline, or nil if
// data holds no complete line.
func firstLine(data []byte) []byte {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil
	}
	return data[:i]
}

// loadState reads the state file; a missing file is a fresh start.
func loadState(path string) (syslog.Checkpoint, []mce.CERecord, error) {
	var cp syslog.Checkpoint
	if path == "" {
		return cp, nil, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cp, nil, nil
	}
	if err != nil {
		return cp, nil, err
	}
	return unmarshalState(data)
}
