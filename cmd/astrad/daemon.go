package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/syslog"
)

// siteSpec names one tailed log: a site id for the /v1/sites URL space
// and the path of the syslog it feeds from.
type siteSpec struct {
	id   string
	path string
}

// daemonConfig is the parsed flag set.
type daemonConfig struct {
	logPath   string
	sites     []siteSpec
	statePath string
	listen    string

	dedupWindow   int
	reorderWindow time.Duration
	poll          time.Duration
	checkpointSec time.Duration

	dimms      int
	window     time.Duration
	workers    int
	partitions int

	// Admission queue between each scanner and its engine.
	queueDepth    int
	queueHigh     int
	queueLow      int
	shedPolicy    overload.Policy
	drainBatch    int
	drainInterval time.Duration

	// Checkpoint circuit breaker.
	cpFailures int
	cpCooldown time.Duration
	cpTimeout  time.Duration

	// Checkpoint generation ladder depth (state, state.1, ...).
	stateKeep int

	// Risk serving: alarm threshold for the first-alarm ledger and the
	// astrad_predict_atrisk gauge, and an optional trained-model
	// directory replacing the built-in rule ladder.
	riskThreshold float64
	modelPath     string

	// Per-site supervision.
	restartBackoff    time.Duration
	restartBackoffMax time.Duration
	restartBudget     int
	restartReset      time.Duration

	// HTTP server hardening.
	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	maxHeaderBytes    int
	maxConcurrent     int
	requestTimeout    time.Duration
}

// siteDaemon is one site's ingest pipeline: scanner -> admission queue ->
// drainer -> partitioned engine. The pipeline is supervised: a panic or
// ingest error tears the incarnation down and a restart rebuilds the
// engine and queue from the site's last checkpoint section, so eng and q
// are swapped atomically and readers always hold a coherent pair from
// one incarnation.
type siteDaemon struct {
	id      string
	logPath string

	eng atomic.Pointer[stream.Sharded]
	q   atomic.Pointer[overload.Queue[mce.CERecord]]

	// primed marks the startup-built incarnation (restored from the
	// state ladder) as not yet consumed by the site's first supervised
	// run; resumeCP is its scanner resume point in file coordinates.
	primed   atomic.Bool
	resumeCP syslog.Checkpoint

	// unit is the site's supervision handle, published once the
	// supervisor has spawned it; the HTTP health hook reads it.
	unit atomic.Pointer[supervise.Unit]

	// statsMu guards the published copies of the scanner's and tail's
	// accounting; both are touched only by the ingest goroutine.
	statsMu sync.Mutex
	stats   syslog.ScanStats
	tail    syslog.TailStats

	offset atomic.Int64
	// section holds the site's latest marshaled checkpoint section,
	// captured by the ingest goroutine at a consistent instant (scanner
	// checkpoint + Freeze from the same goroutine). The global writer
	// composes whatever sections are current into one state file. A
	// quarantined site keeps its last-good section, so its state
	// survives the other sites' checkpoints.
	section atomic.Pointer[[]byte]

	// cpUntranslatable counts checkpoint captures skipped because the
	// scanner offset predated a log rotation (no file position to
	// resume from until the scanner crosses into the new segment).
	cpUntranslatable atomic.Uint64

	// alarms is the site's first-alarm ledger. It outlives pipeline
	// incarnations (a supervised restart restores it from the site's
	// section) and rides in every v4 checkpoint.
	alarms alarmLedger
}

func (s *siteDaemon) engine() *stream.Sharded              { return s.eng.Load() }
func (s *siteDaemon) queue() *overload.Queue[mce.CERecord] { return s.q.Load() }

// siteDaemon is the serve.Source for its site, delegating to the current
// engine incarnation so a supervised restart swaps cleanly under the
// HTTP layer.
func (s *siteDaemon) LiveView() *stream.View   { return s.engine().LiveView() }
func (s *siteDaemon) Seq() uint64              { return s.engine().Seq() }
func (s *siteDaemon) Summary() stream.Summary  { return s.engine().Summary() }
func (s *siteDaemon) Shed() uint64             { return s.engine().Shed() }
func (s *siteDaemon) DIMMs() int               { return s.engine().DIMMs() }

// daemon owns the per-site pipelines and the state shared with the HTTP
// layer.
type daemon struct {
	cfg   daemonConfig
	log   *slog.Logger
	sites []*siteDaemon

	// predictor scores bank features for the risk endpoints and the
	// alarm ledgers; Score is read-only so one instance serves every
	// site concurrently.
	predictor predict.Predictor

	breaker *overload.Breaker
	// cpCh carries pre-composed state snapshots to the checkpoint
	// writer; capacity 1 so a stalled disk backs up into skipped
	// checkpoints, never into the ingest loops.
	cpCh chan []byte
	// fs is the filesystem for state writes; tests and the load harness
	// substitute a fault injector.
	fs atomicio.FS

	checkpoints   atomic.Uint64
	cpSkipped     atomic.Uint64
	gensDiscarded atomic.Uint64
}

// publishStats exposes a snapshot of the site's scanner accounting to
// the HTTP layer (the scanner itself is not concurrency-safe).
func (s *siteDaemon) publishStats(st syslog.ScanStats) {
	s.statsMu.Lock()
	s.stats = st
	s.statsMu.Unlock()
}

// publishTail exposes the follower's rotation accounting (same ownership
// rule as publishStats).
func (s *siteDaemon) publishTail(st syslog.TailStats) {
	s.statsMu.Lock()
	s.tail = st
	s.statsMu.Unlock()
}

// snapshotStats aggregates scanner accounting across sites: the legacy
// unlabelled ingest series report the all-sites totals.
func (d *daemon) snapshotStats() syslog.ScanStats {
	var sum syslog.ScanStats
	for _, s := range d.sites {
		s.statsMu.Lock()
		st := s.stats
		s.statsMu.Unlock()
		sum.Lines += st.Lines
		sum.CEs += st.CEs
		sum.DUEs += st.DUEs
		sum.HETs += st.HETs
		sum.Other += st.Other
		sum.Malformed += st.Malformed
		sum.Truncated += st.Truncated
		sum.Garbage += st.Garbage
		sum.Duplicated += st.Duplicated
		sum.Reordered += st.Reordered
		sum.DroppedOutOfOrder += st.DroppedOutOfOrder
	}
	return sum
}

// tailTotals aggregates rotation accounting across sites.
func (d *daemon) tailTotals() syslog.TailStats {
	var sum syslog.TailStats
	for _, s := range d.sites {
		s.statsMu.Lock()
		st := s.tail
		s.statsMu.Unlock()
		sum.Rotations += st.Rotations
		sum.Truncations += st.Truncations
		sum.DroppedPartials += st.DroppedPartials
		sum.DroppedBytes += st.DroppedBytes
	}
	return sum
}

func (d *daemon) scanConfig() syslog.ScanConfig {
	return syslog.ScanConfig{DedupWindow: d.cfg.dedupWindow, ReorderWindow: d.cfg.reorderWindow}
}

// overloadStatus bundles the admission layer's state for /healthz and
// /metrics: queue books summed across sites, saturation if any site is
// shedding, plus the (global) checkpoint breaker.
func (d *daemon) overloadStatus() overload.Status {
	var q overload.QueueStats
	for _, s := range d.sites {
		st := s.queue().Stats()
		q.Offered += st.Offered
		q.Admitted += st.Admitted
		q.Drained += st.Drained
		q.Rejected += st.Rejected
		q.Evicted += st.Evicted
		q.Shed += st.Shed
		q.Depth += st.Depth
		q.Capacity += st.Capacity
		q.High += st.High
		q.Low += st.Low
		q.Saturated = q.Saturated || st.Saturated
		q.Saturations += st.Saturations
	}
	return overload.Status{Queue: q, Breaker: d.breaker.Stats()}
}

// ingest is one site's scan loop: tail the log through the hardened
// scanner and offer every CE to the site's admission queue. The drainer —
// not this goroutine — feeds the engine, so a slow clustering step backs
// up into the queue (visible, bounded, shed by policy) instead of into
// the tail. The follower is rotation-tolerant: after a rotation the
// scanner's checkpoint offsets live in stream coordinates, so every
// capture is translated into current-file coordinates first — an offset
// that still points into a rotated-away segment skips the capture (and
// is counted) rather than recording an unusable resume point. It returns
// the final checkpoint, already translated, and whether the translation
// held, so the shutdown path can persist the exact resume point once the
// queue has drained.
func (d *daemon) ingest(ctx context.Context, s *siteDaemon, q *overload.Queue[mce.CERecord], f *os.File, cp syslog.Checkpoint) (syslog.Checkpoint, bool, error) {
	follower := syslog.NewFollower(ctx, f, syslog.TailConfig{Poll: d.cfg.poll, Path: s.logPath})
	sc := syslog.NewScannerConfig(follower, d.scanConfig())
	if err := sc.Restore(cp); err != nil {
		return cp, false, err
	}
	last := time.Now()
	// Tail stats only move at rotation events, so republishing them per
	// record would add a lock acquisition to the hot path for nothing.
	lastTail := follower.Stats()
	s.publishTail(lastTail)
	for sc.Scan() {
		if rec := sc.Record(); rec.Kind == syslog.KindCE {
			q.Offer(rec.CE)
		}
		s.publishStats(sc.Stats())
		if st := follower.Stats(); st != lastTail {
			lastTail = st
			s.publishTail(st)
		}
		s.offset.Store(sc.Offset())
		if d.cfg.statePath != "" && time.Since(last) >= d.cfg.checkpointSec {
			if fcp, ok := d.translate(s, follower, sc.Checkpoint()); ok {
				if err := d.snapshotSection(s, fcp); err != nil {
					d.log.Warn("checkpoint snapshot failed", "site", s.id, "err", err)
				} else {
					d.offerCheckpoint()
				}
			}
			last = time.Now()
		}
	}
	s.publishStats(sc.Stats())
	s.publishTail(follower.Stats())
	s.offset.Store(sc.Offset())

	err := sc.Err()
	if errors.Is(err, syslog.ErrTailStopped) {
		err = nil
	}
	fcp, ok := d.translate(s, follower, sc.Checkpoint())
	return fcp, ok, err
}

// translate maps a scanner checkpoint's stream offset into current-file
// coordinates for seek-on-resume. ok is false when the offset predates
// the last rotation — nothing in the current file corresponds to it.
func (d *daemon) translate(s *siteDaemon, fo *syslog.Follower, cp syslog.Checkpoint) (syslog.Checkpoint, bool) {
	off, ok := fo.FileOffset(cp.Offset)
	if !ok {
		s.cpUntranslatable.Add(1)
		d.log.Warn("checkpoint capture skipped", "site", s.id, "reason", "offset predates log rotation")
		return cp, false
	}
	cp.Offset = off
	return cp, true
}

// drain is the consumer side of one site's admission queue: batches go
// into the engine, Done releases any Freeze waiting for a consistent
// snapshot. An optional pause between batches exists for the chaos
// harness (and operators throttling a cold restore); it runs after
// Done, so checkpoints never wait out the pause. It takes the queue and
// engine of one incarnation explicitly so a supervised restart never
// crosses incarnations mid-batch.
func (d *daemon) drain(q *overload.Queue[mce.CERecord], eng *stream.Sharded) {
	for {
		batch, ok := q.Take(d.cfg.drainBatch)
		if len(batch) > 0 {
			eng.IngestBatch(batch)
			q.Done()
			if d.cfg.drainInterval > 0 {
				time.Sleep(d.cfg.drainInterval)
			}
		}
		if !ok {
			return
		}
	}
}

// snapshotSection captures one site's durable state at a consistent
// instant: Freeze waits out any in-flight drain batch, then the engine's
// records plus the still-queued records are exactly the CEs the scanner
// had emitted at cp — a restart loses nothing and duplicates nothing,
// and the shed count carried alongside keeps the degraded accounting
// honest across the restart. The alarm ledger is advanced here too —
// checkpoint cadence is the alarm granularity — so the stamped times
// are always consistent with the records they ride with. The marshaled
// section is published for the composer; the disk write happens in the
// checkpoint writer.
func (d *daemon) snapshotSection(s *siteDaemon, cp syslog.Checkpoint) error {
	var data []byte
	var err error
	eng := s.engine()
	s.queue().Freeze(func(queued []mce.CERecord, _ overload.QueueStats) {
		recs := eng.Records()
		recs = append(recs, queued...)
		s.alarms.observe(eng.Features(), d.predictor, d.cfg.riskThreshold, time.Now())
		data, err = marshalSiteSectionV4(cp, eng.Shed(), recs, s.alarms.snapshot())
	})
	if err != nil {
		return err
	}
	s.section.Store(&data)
	return nil
}

// composeState concatenates the latest per-site sections into one v4
// state file image (a single-site daemon writes a one-section v4 file;
// older v1-v3 files still load). Sections are each internally
// consistent; sites tail independent logs, so a file composed from
// sections captured moments apart is still a correct per-site resume
// point — and a quarantined site contributes its last-good section.
func (d *daemon) composeState() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nsites %d\n", stateMagicV4, len(d.sites))
	for _, s := range d.sites {
		fmt.Fprintf(&b, "site %s\n", s.id)
		b.Write(*s.section.Load())
	}
	return b.Bytes()
}

// offerCheckpoint composes the current sections and hands the image to
// the async writer; if the writer is still busy with the previous
// snapshot (stalled disk), the checkpoint is skipped — cadence degrades,
// ingest does not.
func (d *daemon) offerCheckpoint() {
	data := d.composeState()
	select {
	case d.cpCh <- data:
	default:
		d.cpSkipped.Add(1)
		d.log.Warn("checkpoint skipped", "reason", "writer busy")
	}
}

// offsetBytes sums the byte offsets consumed across all tailed logs.
func (d *daemon) offsetBytes() int64 {
	var n int64
	for _, s := range d.sites {
		n += s.offset.Load()
	}
	return n
}

// checkpointWriter drains cpCh through the circuit breaker: writes that
// fail — or stall past -checkpoint-timeout — count against the breaker,
// and an open breaker fast-fails checkpoints for the cooldown instead of
// queueing more I/O behind a sick disk.
func (d *daemon) checkpointWriter() {
	for data := range d.cpCh {
		if !d.breaker.Allow() {
			d.cpSkipped.Add(1)
			continue
		}
		start := time.Now()
		err := d.persist(data)
		elapsed := time.Since(start)
		switch {
		case err != nil:
			d.breaker.Failure()
			d.log.Warn("checkpoint failed", "err", err)
		case d.cfg.cpTimeout > 0 && elapsed > d.cfg.cpTimeout:
			// The write landed but the disk is stalling: trip toward open
			// so the next writes are skipped instead of piling up.
			d.breaker.Failure()
			d.checkpoints.Add(1)
			d.log.Warn("checkpoint slow", "elapsed", elapsed, "breaker", d.breaker.State().String())
		default:
			d.breaker.Success()
			d.checkpoints.Add(1)
			d.log.Info("checkpoint", "bytes", len(data), "offset", d.offsetBytes())
		}
	}
}

// persist seals one marshaled state snapshot with a checksum trailer and
// writes it atomically at the head of the generation ladder: the
// previous state file slides to .1, .1 to .2, and so on up to
// -state-keep generations. Recovery walks the ladder newest-first, so a
// torn or bit-flipped newest file costs one checkpoint interval, not the
// whole state.
func (d *daemon) persist(data []byte) error {
	g := atomicio.Generations{FS: d.fs, Path: d.cfg.statePath, Keep: d.cfg.stateKeep}
	_, err := g.Write(context.Background(), func(w io.Writer) error {
		// Stream the body and trailer separately: sealState's copy of a
		// multi-megabyte state image per checkpoint is pure GC pressure.
		if _, werr := w.Write(data); werr != nil {
			return werr
		}
		_, werr := fmt.Fprintf(w, "%s%08x\n", checksumPrefix, crc32.ChecksumIEEE(data))
		return werr
	})
	return err
}

// State file magics; v2 added the shed count, v3 wraps per-site sections
// for multi-site daemons, v4 appends the first-alarm ledger to every
// section. All older versions still load: v1/v2 as a single site with
// an empty ledger, v3 with empty ledgers.
const (
	stateMagic   = "astrad-state v2"
	stateMagicV1 = "astrad-state v1"
	stateMagicV3 = "astrad-state v3"
	stateMagicV4 = "astrad-state v4"
)

// checksumPrefix opens the optional integrity trailer: the last line of
// a sealed state file is "checksum crc32 %08x" over every byte before
// it. No record line can start with this prefix (canonical CE lines
// start with a timestamp), so the trailer is unambiguous.
const checksumPrefix = "checksum crc32 "

// sealState appends the checksum trailer to a marshaled state image.
func sealState(data []byte) []byte {
	out := make([]byte, 0, len(data)+len(checksumPrefix)+9)
	out = append(out, data...)
	return append(out, fmt.Sprintf("%s%08x\n", checksumPrefix, crc32.ChecksumIEEE(data))...)
}

// openState verifies and strips the checksum trailer. Files without one
// (written before sealing existed, or produced by marshalState directly)
// are accepted as-is — the section parsers still validate them line by
// line; a present-but-wrong trailer is corruption and errors out.
func openState(data []byte) ([]byte, error) {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return data, nil
	}
	i := bytes.LastIndexByte(data[:len(data)-1], '\n')
	line := data[i+1 : len(data)-1]
	if !bytes.HasPrefix(line, []byte(checksumPrefix)) {
		return data, nil
	}
	want, err := strconv.ParseUint(string(line[len(checksumPrefix):]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("astrad: state file: bad checksum trailer %q", line)
	}
	body := data[:i+1]
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return nil, fmt.Errorf("astrad: state file: checksum mismatch: trailer %08x, content %08x over %d bytes", uint32(want), got, len(body))
	}
	return body, nil
}

// siteSnapshot is one site's restored durable state.
type siteSnapshot struct {
	id     string
	cp     syslog.Checkpoint
	shed   uint64
	recs   []mce.CERecord
	alarms []alarmEntry
}

// marshalSiteSection renders one site's durable state section: the
// serialized scanner checkpoint (length-prefixed), the overload shed
// count, and the engine's CE records as canonical syslog lines.
// Replaying those lines into a fresh engine reproduces the fault state
// exactly (the engine's replay contract — at any partition count), the
// shed count restores the degraded accounting, and the scanner
// checkpoint resumes the tail at the matching byte.
func marshalSiteSection(cp syslog.Checkpoint, shed uint64, recs []mce.CERecord) ([]byte, error) {
	cpb, err := cp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "checkpoint %d\n", len(cpb))
	b.Write(cpb)
	fmt.Fprintf(&b, "shed %d\n", shed)
	fmt.Fprintf(&b, "records %d\n", len(recs))
	var line []byte
	for _, r := range recs {
		line = syslog.AppendCE(line[:0], r)
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// marshalSiteSectionV4 renders a v4 site section: the v3 section plus
// the site's first-alarm ledger, so restart preserves when each bank
// first crossed the alarm threshold (not reconstructible from records).
func marshalSiteSectionV4(cp syslog.Checkpoint, shed uint64, recs []mce.CERecord, alarms []alarmEntry) ([]byte, error) {
	sec, err := marshalSiteSection(cp, shed, recs)
	if err != nil {
		return nil, err
	}
	b := bytes.NewBuffer(sec)
	appendAlarms(b, alarms)
	return b.Bytes(), nil
}

// parseSectionV4 parses one v4 section (checkpoint/shed/records/alarms)
// from the front of data.
func parseSectionV4(data []byte, site string, base int) (cp syslog.Checkpoint, shed uint64, recs []mce.CERecord, alarms []alarmEntry, rest []byte, err error) {
	cp, shed, recs, rest, err = parseSection(data, true, site, base)
	if err != nil {
		return cp, 0, nil, nil, nil, err
	}
	alarms, rest, err = parseAlarms(rest, site, base+len(data)-len(rest))
	if err != nil {
		return cp, 0, nil, nil, nil, err
	}
	return cp, shed, recs, alarms, rest, nil
}

// marshalState renders the single-site (v2) state file (unsealed; the
// persist layer adds the checksum trailer).
func marshalState(cp syslog.Checkpoint, shed uint64, recs []mce.CERecord) ([]byte, error) {
	sec, err := marshalSiteSection(cp, shed, recs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(stateMagic)+1+len(sec))
	out = append(out, stateMagic...)
	out = append(out, '\n')
	return append(out, sec...), nil
}

// marshalStateV3 renders the multi-site state file: a site count, then
// one named section per site.
func marshalStateV3(sites []siteSnapshot) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nsites %d\n", stateMagicV3, len(sites))
	for _, s := range sites {
		sec, err := marshalSiteSection(s.cp, s.shed, s.recs)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "site %s\n", s.id)
		b.Write(sec)
	}
	return b.Bytes(), nil
}

// marshalStateV4 renders the current state file format: v3's shape with
// the alarm ledger appended to every site section.
func marshalStateV4(sites []siteSnapshot) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nsites %d\n", stateMagicV4, len(sites))
	for _, s := range sites {
		sec, err := marshalSiteSectionV4(s.cp, s.shed, s.recs, s.alarms)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "site %s\n", s.id)
		b.Write(sec)
	}
	return b.Bytes(), nil
}

// parseSection parses one checkpoint/shed/records section from the front
// of data and returns the unconsumed remainder. hasShed is false for v1
// files, which predate the shed line. Errors name the site the section
// belongs to and the byte offset (base + consumed) where parsing
// stopped, so a damaged generation is diagnosable from the log line
// alone.
func parseSection(data []byte, hasShed bool, site string, base int) (cp syslog.Checkpoint, shed uint64, recs []mce.CERecord, rest []byte, err error) {
	rest = data
	fail := func(format string, args ...any) error {
		at := base + len(data) - len(rest)
		return fmt.Errorf("astrad: state file: site %s: %s at byte %d", site, fmt.Sprintf(format, args...), at)
	}
	var cpLen int
	n, err := fmt.Sscanf(string(firstLine(rest)), "checkpoint %d", &cpLen)
	if err != nil || n != 1 {
		return cp, 0, nil, nil, fail("bad checkpoint header")
	}
	rest = rest[len(firstLine(rest))+1:]
	if cpLen < 0 || cpLen > len(rest) {
		return cp, 0, nil, nil, fail("truncated checkpoint (%d bytes promised, %d left)", cpLen, len(rest))
	}
	if err := cp.UnmarshalBinary(rest[:cpLen]); err != nil {
		return cp, 0, nil, nil, fail("checkpoint: %v", err)
	}
	rest = rest[cpLen:]
	if hasShed {
		if n, err := fmt.Sscanf(string(firstLine(rest)), "shed %d", &shed); err != nil || n != 1 {
			return cp, 0, nil, nil, fail("bad shed header")
		}
		rest = rest[len(firstLine(rest))+1:]
	}
	var count int
	if n, err := fmt.Sscanf(string(firstLine(rest)), "records %d", &count); err != nil || n != 1 {
		return cp, 0, nil, nil, fail("bad records header")
	}
	rest = rest[len(firstLine(rest))+1:]
	var dec syslog.Decoder
	recs = make([]mce.CERecord, 0, count)
	for i := 0; i < count; i++ {
		line := firstLine(rest)
		if line == nil {
			return cp, 0, nil, nil, fail("truncated at record %d of %d", i, count)
		}
		p, perr := dec.ParseLineBytes(line)
		if perr != nil || p.Kind != syslog.KindCE {
			return cp, 0, nil, nil, fail("record %d: bad CE line %q: %v", i, line, perr)
		}
		rest = rest[len(line)+1:]
		recs = append(recs, p.CE)
	}
	return cp, shed, recs, rest, nil
}

// unmarshalState parses a single-site (v1/v2) state file back into its
// checkpoint, shed count, and records. A checksum trailer, if present,
// is verified and stripped first.
func unmarshalState(data []byte) (syslog.Checkpoint, uint64, []mce.CERecord, error) {
	data, err := openState(data)
	if err != nil {
		return syslog.Checkpoint{}, 0, nil, err
	}
	hasShed := true
	magic := stateMagic
	rest, ok := bytes.CutPrefix(data, []byte(stateMagic+"\n"))
	if !ok {
		rest, ok = bytes.CutPrefix(data, []byte(stateMagicV1+"\n"))
		hasShed = false
		magic = stateMagicV1
		if !ok {
			return syslog.Checkpoint{}, 0, nil, fmt.Errorf("astrad: state file: bad header")
		}
	}
	cp, shed, recs, rest, err := parseSection(rest, hasShed, "default", len(magic)+1)
	if err != nil {
		return syslog.Checkpoint{}, 0, nil, err
	}
	if len(rest) != 0 {
		return syslog.Checkpoint{}, 0, nil, fmt.Errorf("astrad: state file: %d trailing bytes at byte %d", len(rest), len(data)-len(rest))
	}
	return cp, shed, recs, nil
}

// unmarshalStateV3 parses a v3 multi-site state file into its per-site
// snapshots (empty alarm ledgers).
func unmarshalStateV3(data []byte) ([]siteSnapshot, error) {
	return unmarshalMulti(data, stateMagicV3, false)
}

// unmarshalStateV4 parses a v4 multi-site state file, alarm ledgers
// included.
func unmarshalStateV4(data []byte) ([]siteSnapshot, error) {
	return unmarshalMulti(data, stateMagicV4, true)
}

// unmarshalMulti parses a multi-site state file (v3 or v4 by magic) into
// its per-site snapshots. A checksum trailer, if present, is verified
// and stripped first.
func unmarshalMulti(data []byte, magic string, hasAlarms bool) ([]siteSnapshot, error) {
	data, err := openState(data)
	if err != nil {
		return nil, err
	}
	rest, ok := bytes.CutPrefix(data, []byte(magic+"\n"))
	if !ok {
		return nil, fmt.Errorf("astrad: state file: bad %s header", magic)
	}
	var count int
	if n, err := fmt.Sscanf(string(firstLine(rest)), "sites %d", &count); err != nil || n != 1 {
		return nil, fmt.Errorf("astrad: state file: bad sites header")
	}
	if count < 0 {
		return nil, fmt.Errorf("astrad: state file: negative site count")
	}
	rest = rest[len(firstLine(rest))+1:]
	snaps := make([]siteSnapshot, 0, count)
	for i := 0; i < count; i++ {
		var id string
		line := firstLine(rest)
		if n, err := fmt.Sscanf(string(line), "site %s", &id); err != nil || n != 1 {
			return nil, fmt.Errorf("astrad: state file: bad site header at section %d (byte %d)", i, len(data)-len(rest))
		}
		rest = rest[len(line)+1:]
		var cp syslog.Checkpoint
		var shed uint64
		var recs []mce.CERecord
		var alarms []alarmEntry
		var r []byte
		if hasAlarms {
			cp, shed, recs, alarms, r, err = parseSectionV4(rest, id, len(data)-len(rest))
		} else {
			cp, shed, recs, r, err = parseSection(rest, true, id, len(data)-len(rest))
		}
		if err != nil {
			return nil, err
		}
		rest = r
		for _, prev := range snaps {
			if prev.id == id {
				return nil, fmt.Errorf("astrad: state file: duplicate site %s", id)
			}
		}
		snaps = append(snaps, siteSnapshot{id: id, cp: cp, shed: shed, recs: recs, alarms: alarms})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("astrad: state file: %d trailing bytes at byte %d", len(rest), len(data)-len(rest))
	}
	return snaps, nil
}

// firstLine returns data up to (excluding) the first newline, or nil if
// data holds no complete line.
func firstLine(data []byte) []byte {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil
	}
	return data[:i]
}

// decodeState routes one state image (any generation) by magic: v4 or
// v3 multi-site, else v1/v2 loaded as one site named "default".
// Checksum verification happens inside the unmarshalers.
func decodeState(data []byte) ([]siteSnapshot, error) {
	if bytes.HasPrefix(data, []byte(stateMagicV4+"\n")) {
		return unmarshalStateV4(data)
	}
	if bytes.HasPrefix(data, []byte(stateMagicV3+"\n")) {
		return unmarshalStateV3(data)
	}
	cp, shed, recs, err := unmarshalState(data)
	if err != nil {
		return nil, err
	}
	return []siteSnapshot{{id: "default", cp: cp, shed: shed, recs: recs}}, nil
}

// loadState reads one state file into per-site snapshots; a missing file
// is a fresh start. It reads a single generation — daemon startup goes
// through loadStateLadder instead.
func loadState(path string) ([]siteSnapshot, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeState(data)
}

// loadStateLadder walks the checkpoint generation ladder newest-first
// and restores the first generation that verifies and parses. Damaged
// generations are returned for logging and accounting, never fatal: a
// ladder with no valid generation returns gen -1 and nil snapshots — a
// cold start from the logs — because refusing to run over a corrupt
// state file would turn one torn write into an outage.
func loadStateLadder(fsys atomicio.FS, path string, keep int) (snaps []siteSnapshot, gen int, discarded []atomicio.Discarded, err error) {
	if path == "" {
		return nil, -1, nil, nil
	}
	g := atomicio.Generations{FS: fsys, Path: path, Keep: keep}
	_, gen, discarded, err = g.Load(func(data []byte) error {
		s, derr := decodeState(data)
		if derr != nil {
			return derr
		}
		snaps = s
		return nil
	})
	if err != nil {
		return nil, -1, discarded, err
	}
	if gen < 0 {
		snaps = nil
	}
	return snaps, gen, discarded, nil
}
