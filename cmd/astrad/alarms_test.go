package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/syslog"
)

// TestStateV4RoundTrip pins the v4 state file format: per-site alarm
// ledgers round-trip exactly, marshaling is deterministic, corruption
// in the alarms subsection is rejected, and v3 files (no ledgers) still
// load.
func TestStateV4RoundTrip(t *testing.T) {
	in, ces := testLog(t)
	sc := syslog.NewScannerConfig(bytes.NewReader(in), syslog.ScanConfig{DedupWindow: testDedup, ReorderWindow: testReorder})
	for i := 0; i < 25; i++ {
		if !sc.Scan() {
			t.Fatal("fixture too short")
		}
	}
	cp := sc.Checkpoint()
	alarms := []alarmEntry{
		{key: core.RecordBankKey(&ces[0]), at: 1700000000000000001},
		{key: core.RecordBankKey(&ces[3]), at: 1700000000000000002},
	}
	snaps := []siteSnapshot{
		{id: "east", cp: cp, shed: 3, recs: ces[:10], alarms: alarms},
		{id: "west", recs: ces[10:14]}, // empty ledger
	}

	data, err := marshalStateV4(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalStateV4(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].id != "east" || got[1].id != "west" {
		t.Fatalf("site ids round trip: %+v", got)
	}
	if !reflect.DeepEqual(got[0].alarms, alarms) {
		t.Fatalf("east alarms round trip: %+v, want %+v", got[0].alarms, alarms)
	}
	if len(got[1].alarms) != 0 {
		t.Fatalf("west grew alarms: %+v", got[1].alarms)
	}
	if len(got[0].recs) != 10 || got[0].shed != 3 || got[0].cp.Offset != cp.Offset {
		t.Fatalf("v3 fields lost in v4: %+v", got[0])
	}
	data2, err := marshalStateV4(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("v4 marshal not deterministic through a round trip")
	}

	// The sealed image decodes through the version router.
	if snaps2, err := decodeState(sealState(data)); err != nil || len(snaps2) != 2 {
		t.Fatalf("sealed v4 decode: %d sites, %v", len(snaps2), err)
	}

	for name, corrupt := range map[string][]byte{
		"alarms-header": bytes.Replace(data, []byte("\nalarms 2\n"), []byte("\nalarms x\n"), 1),
		"alarm-line":    bytes.Replace(data, []byte("alarm astra-"), []byte("alarm nonsense-"), 1),
		"alarm-count":   bytes.Replace(data, []byte("\nalarms 2\n"), []byte("\nalarms 3\n"), 1),
		"truncated":     data[:len(data)-3],
	} {
		if _, err := unmarshalStateV4(corrupt); err == nil {
			t.Errorf("%s: corrupted v4 state accepted", name)
		}
	}

	// A v3 file — same snapshots, ledgers not representable — still
	// loads: a daemon upgraded in place keeps its checkpoint and starts
	// with empty ledgers.
	v3, err := marshalStateV3(snaps)
	if err != nil {
		t.Fatal(err)
	}
	old, err := decodeState(v3)
	if err != nil {
		t.Fatalf("v3 state rejected: %v", err)
	}
	if len(old) != 2 || len(old[0].recs) != 10 || old[0].shed != 3 {
		t.Fatalf("v3 decode: %+v", old)
	}
	if len(old[0].alarms) != 0 || len(old[1].alarms) != 0 {
		t.Fatal("v3 decode invented alarms")
	}
}

var alarmedGaugeRE = regexp.MustCompile(`astrad_predict_alarmed_banks ([0-9.e+]+)`)

// TestDaemonAlarmLedgerSurvivesRestart is the prediction-layer
// kill/restart test: kill the daemon after banks have alarmed, restart
// it over the same state, and (a) the live risk ranking matches a batch
// feature computation over the whole log — the feature state rebuilt
// exactly — and (b) every first-alarm timestamp survives byte-for-byte,
// so lead-time accounting never re-stamps across restarts.
func TestDaemonAlarmLedgerSurvivesRestart(t *testing.T) {
	full, ces := testLog(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")

	cut := bytes.LastIndexByte(full[:len(full)/2], '\n') + 1
	if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	// Threshold 0.1: any bank passing the ladder's first rung (>= 2 CEs)
	// alarms, so the fixture's first half is guaranteed to populate the
	// ledger.
	extra := []string{"-risk-threshold", "0.1", "-checkpoint-every", "50ms"}
	_, cancel, done, errs := startDaemonArgs(t, logPath, statePath, extra...)

	// Wait until a checkpoint carrying alarms lands on disk. The state
	// file is written atomically, but the generation ladder can leave a
	// brief gap at the head path — retry through it.
	deadline := time.Now().Add(150 * time.Second)
	for {
		data, err := os.ReadFile(statePath)
		if err == nil {
			if snaps, derr := decodeState(data); derr == nil && len(snaps) == 1 && len(snaps[0].alarms) > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no alarms checkpointed; stderr:\n%s", errs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("phase 1 exit = %d; stderr:\n%s", code, errs.String())
	}

	state, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(state, []byte(stateMagicV4+"\n")) {
		t.Fatalf("state not v4: %q", state[:min(len(state), 40)])
	}
	snaps, err := decodeState(state)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("phase 1 state: %d sites, %v", len(snaps), err)
	}
	firstAlarms := make(map[core.BankKey]int64, len(snaps[0].alarms))
	for _, a := range snaps[0].alarms {
		firstAlarms[a.key] = a.at
	}
	if len(firstAlarms) == 0 {
		t.Fatal("phase 1 ledger empty")
	}

	// Phase 2: the rest of the log, restart over the same state.
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr, cancel, done, errs := startDaemonArgs(t, logPath, statePath, extra...)
	waitForRecords(t, addr, len(ces))

	// Feature state rebuilt exactly: the served ranking agrees with a
	// batch tracker over the whole log — same bank count, same top score.
	tr := predict.NewTracker(predict.TrackerConfig{
		Window:      stream.DefaultWindow,
		RateBuckets: stream.DefaultRateBuckets,
	})
	for i := range ces {
		tr.Observe(&ces[i])
	}
	want := tr.Features(tr.Last())
	scores := predict.SortByRisk(want, predict.DefaultRuleLadder())
	var ar struct {
		Banks  int `json:"banks"`
		AtRisk []struct {
			Score float64 `json:"score"`
		} `json:"atRisk"`
	}
	if code := httpGetJSON(t, "http://"+addr+"/v1/atrisk", &ar); code != http.StatusOK {
		t.Fatalf("/v1/atrisk = %d after restart", code)
	}
	if ar.Banks != len(want) {
		t.Fatalf("served banks = %d, want %d (feature state not rebuilt)", ar.Banks, len(want))
	}
	if len(ar.AtRisk) == 0 || ar.AtRisk[0].Score != scores[0] {
		t.Fatalf("top score = %v, want %v", ar.AtRisk, scores[0])
	}

	// The restored ledger is visible in metrics immediately.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := alarmedGaugeRE.FindSubmatch(metrics)
	if m == nil {
		t.Fatal("metrics missing astrad_predict_alarmed_banks")
	}
	if n, _ := strconv.ParseFloat(string(m[1]), 64); n < float64(len(firstAlarms)) {
		t.Fatalf("alarmed gauge = %v, want >= %d restored alarms", n, len(firstAlarms))
	}

	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("phase 2 exit = %d; stderr:\n%s", code, errs.String())
	}

	// Every phase-1 first-alarm time survives the restart unchanged.
	final, err := loadState(statePath)
	if err != nil || len(final) != 1 {
		t.Fatalf("final state: %d sites, %v", len(final), err)
	}
	finalAlarms := make(map[core.BankKey]int64, len(final[0].alarms))
	for _, a := range final[0].alarms {
		finalAlarms[a.key] = a.at
	}
	if len(finalAlarms) < len(firstAlarms) {
		t.Fatalf("ledger shrank: %d -> %d", len(firstAlarms), len(finalAlarms))
	}
	for k, at := range firstAlarms {
		got, ok := finalAlarms[k]
		if !ok {
			t.Fatalf("alarm for %v lost across restart", k)
		}
		if got != at {
			t.Fatalf("alarm for %v re-stamped: %d -> %d", k, at, got)
		}
	}
}
