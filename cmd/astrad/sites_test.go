package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// startDaemonCustom launches run() in-process with a fully caller-built
// argument list (multi-site runs have no single -log flag) and waits for
// the listen address.
func startDaemonCustom(t *testing.T, args ...string) (addr string, cancel context.CancelFunc, done chan int, errs *syncBuf) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	errs = &syncBuf{}
	done = make(chan int, 1)
	go func() { done <- run(ctx, args, io.Discard, errs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(errs.String()); m != nil {
			return m[1], cancelCtx, done, errs
		}
		if time.Now().After(deadline) {
			cancelCtx()
			t.Fatalf("daemon never listened; stderr:\n%s", errs.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// buildSiteLog renders an independent dataset's syslog with the same
// far-future HET sentinel trick as testLog, so a second federated site
// has its own distinct record population.
func buildSiteLog(t *testing.T, seed uint64, nodes int) ([]byte, []mce.CERecord) {
	t.Helper()
	cfg := dataset.DefaultConfig(seed)
	cfg.Nodes = nodes
	ds, err := dataset.Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 50); err != nil {
		t.Fatal(err)
	}
	var maxT time.Time
	for _, r := range ds.CERecords {
		if r.Time.After(maxT) {
			maxT = r.Time
		}
	}
	sentinel := het.Record{
		Time:     maxT.Add(testReorder + time.Minute),
		Node:     ds.CERecords[0].Node,
		Type:     het.UncorrectableECC,
		Severity: het.SeverityNonRecoverable,
	}
	buf.WriteString(syslog.FormatHET(sentinel))
	buf.WriteByte('\n')

	pol := dataset.IngestPolicy{DedupWindow: testDedup, ReorderWindow: testReorder, MaxMalformedFrac: -1}
	ces, _, _, _, err := dataset.ReadSyslogPolicy(bytes.NewReader(buf.Bytes()), pol)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ces
}

// TestDaemonPartitionedKillRestartDifferential is the sharded flavor of
// the acceptance test: a daemon running 4 engine partitions is killed
// mid-stream, more log is appended, and it restarts over the same state
// file with a DIFFERENT partition count — the final fault population
// must still be exactly the batch answer. The state file stores records
// in global arrival order, so restore is partition-count independent.
func TestDaemonPartitionedKillRestartDifferential(t *testing.T) {
	full, ces := testLog(t)
	wantFaults := mustCluster(t, ces)
	wantBreak := core.BreakdownByMode(ces, wantFaults)

	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")

	cut := bytes.LastIndexByte(full[:len(full)/2], '\n') + 1
	if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done, errs := startDaemonArgs(t, logPath, statePath, "-partitions", "4")
	var h struct {
		Records int `json:"records"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Records == 0 {
		if code := httpGetJSON(t, "http://"+addr+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("no records ingested in phase 1")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("phase 1 exit = %d; stderr:\n%s", code, errs.String())
	}

	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr, cancel, done, errs = startDaemonArgs(t, logPath, statePath, "-partitions", "2")
	defer func() {
		cancel()
		<-done
	}()
	sum := waitForRecords(t, addr, len(ces))
	if sum.Records != len(ces) {
		t.Fatalf("records = %d, want %d (lost or duplicated input)", sum.Records, len(ces))
	}
	if sum.Faults != len(wantFaults) {
		t.Fatalf("faults = %d, want %d", sum.Faults, len(wantFaults))
	}
	if sum.FaultsByMode != wantBreak.FaultsByMode {
		t.Fatalf("FaultsByMode = %v, want %v", sum.FaultsByMode, wantBreak.FaultsByMode)
	}
	if sum.ErrorsByMode != wantBreak.ErrorsByMode {
		t.Fatalf("ErrorsByMode = %v, want %v", sum.ErrorsByMode, wantBreak.ErrorsByMode)
	}
	_ = errs
}

// TestDaemonMultiSiteFederationRestart drives a two-site daemon: each
// site tails its own log into its own partitioned engine, /v1/sites and
// the site-scoped endpoints see per-site state, the legacy endpoints
// roll both up, and a shutdown/restart over the v3 state file restores
// each site exactly — with a different partition count.
func TestDaemonMultiSiteFederationRestart(t *testing.T) {
	logA, cesA := testLog(t)
	logB, cesB := buildSiteLog(t, 71, 24)
	faultsA := mustCluster(t, cesA)
	faultsB := mustCluster(t, cesB)

	dir := t.TempDir()
	pathA := filepath.Join(dir, "east.log")
	pathB := filepath.Join(dir, "west.log")
	statePath := filepath.Join(dir, "astrad.state")
	if err := os.WriteFile(pathA, logA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathB, logB, 0o644); err != nil {
		t.Fatal(err)
	}

	args := func(partitions int) []string {
		return []string{
			"-site", "east=" + pathA, "-site", "west=" + pathB,
			"-state", statePath, "-listen", "127.0.0.1:0",
			"-dedup-window", fmt.Sprint(testDedup), "-reorder-window", testReorder.String(),
			"-poll", "1ms", "-checkpoint-every", "50ms",
			"-dimms", fmt.Sprint(48 * topology.SlotsPerNode),
			"-partitions", fmt.Sprint(partitions),
		}
	}
	addr, cancel, done, errs := startDaemonCustom(t, args(3)...)
	sum := waitForRecords(t, addr, len(cesA)+len(cesB))
	if sum.Records != len(cesA)+len(cesB) {
		t.Fatalf("rollup records = %d, want %d", sum.Records, len(cesA)+len(cesB))
	}

	var sites struct {
		Count int `json:"count"`
		Sites []struct {
			ID      string `json:"id"`
			Records int    `json:"records"`
		} `json:"sites"`
	}
	httpGetJSON(t, "http://"+addr+"/v1/sites", &sites)
	if sites.Count != 2 {
		t.Fatalf("site count = %d, want 2", sites.Count)
	}
	perSite := map[string]int{}
	for _, s := range sites.Sites {
		perSite[s.ID] = s.Records
	}
	if perSite["east"] != len(cesA) || perSite["west"] != len(cesB) {
		t.Fatalf("per-site records = %v, want east=%d west=%d", perSite, len(cesA), len(cesB))
	}

	var east stream.Summary
	httpGetJSON(t, "http://"+addr+"/v1/sites/east/breakdown", &east)
	if east.Records != len(cesA) {
		t.Fatalf("east breakdown records = %d, want %d", east.Records, len(cesA))
	}
	var west stream.Summary
	httpGetJSON(t, "http://"+addr+"/v1/sites/west/breakdown", &west)
	if west.Records != len(cesB) {
		t.Fatalf("west breakdown records = %d, want %d", west.Records, len(cesB))
	}
	if code := httpGetJSON(t, "http://"+addr+"/v1/sites/nope/faults", nil); code != http.StatusNotFound {
		t.Fatalf("unknown site = %d, want 404", code)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`astrad_site_records_total{site="east"}`,
		`astrad_site_records_total{site="west"}`,
		"astrad_ingest_lines_total",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("multi-site shutdown exit = %d; stderr:\n%s", code, errs.String())
	}
	state, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(state, []byte(stateMagicV4+"\n")) {
		t.Fatalf("multi-site state not v4: %q", state[:min(len(state), 40)])
	}

	// Restart over the v4 state with a different partition count: every
	// site restores exactly, and the fault populations match the batch
	// answers per site.
	addr, cancel, done, errs = startDaemonCustom(t, args(1)...)
	defer func() {
		cancel()
		if code := <-done; code != 0 {
			t.Errorf("restart exit = %d; stderr:\n%s", code, errs.String())
		}
	}()
	sum = waitForRecords(t, addr, len(cesA)+len(cesB))
	httpGetJSON(t, "http://"+addr+"/v1/sites/east/breakdown", &east)
	httpGetJSON(t, "http://"+addr+"/v1/sites/west/breakdown", &west)
	if east.Records != len(cesA) || west.Records != len(cesB) {
		t.Fatalf("restored per-site records east=%d west=%d, want %d/%d",
			east.Records, west.Records, len(cesA), len(cesB))
	}
	if east.Faults != len(faultsA) {
		t.Fatalf("east faults = %d, want batch %d", east.Faults, len(faultsA))
	}
	if west.Faults != len(faultsB) {
		t.Fatalf("west faults = %d, want batch %d", west.Faults, len(faultsB))
	}
	if sum.Faults != len(faultsA)+len(faultsB) {
		t.Fatalf("rollup faults = %d, want %d", sum.Faults, len(faultsA)+len(faultsB))
	}
}

// TestStateV3RoundTrip pins the multi-site state file format, its
// corruption rejection, and loadState's version fallback.
func TestStateV3RoundTrip(t *testing.T) {
	in, ces := testLog(t)
	sc := syslog.NewScannerConfig(bytes.NewReader(in), syslog.ScanConfig{DedupWindow: testDedup, ReorderWindow: testReorder})
	for i := 0; i < 25; i++ {
		if !sc.Scan() {
			t.Fatal("fixture too short")
		}
	}
	cp := sc.Checkpoint()
	snaps := []siteSnapshot{
		{id: "east", cp: cp, shed: 3, recs: ces[:10]},
		{id: "west", cp: syslog.Checkpoint{}, shed: 0, recs: ces[10:14]},
	}

	data, err := marshalStateV3(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalStateV3(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].id != "east" || got[1].id != "west" {
		t.Fatalf("site ids round trip: %+v", got)
	}
	if got[0].cp.Offset != cp.Offset || got[0].cp.Buffered() != cp.Buffered() {
		t.Fatalf("checkpoint round trip: offset %d/%d", got[0].cp.Offset, cp.Offset)
	}
	if got[0].shed != 3 || got[1].shed != 0 {
		t.Fatalf("shed round trip: %d/%d", got[0].shed, got[1].shed)
	}
	if len(got[0].recs) != 10 || len(got[1].recs) != 4 {
		t.Fatalf("record counts round trip: %d/%d", len(got[0].recs), len(got[1].recs))
	}
	for i, r := range snaps[0].recs {
		if got[0].recs[i] != r {
			t.Fatalf("east record %d diverges after round trip", i)
		}
	}
	data2, err := marshalStateV3(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("v3 marshal not deterministic through a round trip")
	}

	for name, corrupt := range map[string][]byte{
		"empty":      nil,
		"header":     []byte("nope\n"),
		"sitecount":  bytes.Replace(data, []byte("sites 2"), []byte("sites x"), 1),
		"truncated":  data[:len(data)-3],
		"trailing":   append(append([]byte{}, data...), "junk\n"...),
		"dup-site":   bytes.Replace(data, []byte("site west"), []byte("site east"), 1),
		"shed":       bytes.Replace(data, []byte("\nshed 3\n"), []byte("\nshed x\n"), 1),
		"undercount": bytes.Replace(data, []byte("sites 2"), []byte("sites 1"), 1),
	} {
		if _, err := unmarshalStateV3(corrupt); err == nil {
			t.Errorf("%s: corrupted v3 state accepted", name)
		}
	}

	// loadState routes by magic: a v2 file loads as one site named
	// "default", a v3 file as its site list.
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "v2.state")
	v2, err := marshalState(cp, 7, ces[:5])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2Path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadState(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].id != "default" || loaded[0].shed != 7 || len(loaded[0].recs) != 5 {
		t.Fatalf("v2 loadState = %+v", loaded)
	}
	v3Path := filepath.Join(dir, "v3.state")
	if err := os.WriteFile(v3Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err = loadState(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded[0].id != "east" {
		t.Fatalf("v3 loadState = %+v", loaded)
	}
	if _, err := loadState(filepath.Join(dir, "missing.state")); err != nil {
		t.Fatalf("missing state file not a fresh start: %v", err)
	}
}

// TestSiteFlagValidation pins the -site flag's error cases.
func TestSiteFlagValidation(t *testing.T) {
	var errs syncBuf
	for _, args := range [][]string{
		{"-site", "bad"},                 // no '='
		{"-site", "=path"},               // empty id
		{"-site", "id="},                 // empty path
		{"-site", "a=x", "-site", "a=y"}, // duplicate id
		{"-site", "a b=x"},               // whitespace in id
		{"-log", "x", "-site", "a=y"},    // -log and -site together
		{},                               // neither
	} {
		if code := run(context.Background(), args, io.Discard, &errs); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
	if !strings.Contains(errs.String(), "mutually exclusive") {
		t.Error("no -log/-site conflict message")
	}
}
