// Command astrad is the online face of the pipeline: a long-running
// daemon that tails one or more syslogs, clusters correctable errors
// incrementally (identically to the batch clusterer — the stream
// engine's differential guarantee, preserved at any partition count),
// and serves live analyses over HTTP:
//
//	GET /v1/faults               fault list (?mode=single-bit filters)
//	GET /v1/breakdown            rolling summary: counts, modes, CE rates
//	GET /v1/fit                  windowed and overall FIT/DIMM estimates
//	GET /v1/nodes/{id}           per-node status (id is the host name)
//	GET /v1/nodes/{id}/risk      per-node bank risk scores under the predictor
//	GET /v1/atrisk               fleet's top banks by predicted failure risk
//	GET /v1/sites                site inventory (multi-site daemons)
//	GET /v1/sites/{site}/...     site-scoped faults/breakdown/fit/nodes/risk
//	GET /healthz                 liveness
//	GET /metrics                 Prometheus text exposition
//
// Risk serving scores each bank's live feature state under a predictor
// (the built-in rule ladder, or a trained model via -model). Banks
// crossing -risk-threshold are stamped into a per-site first-alarm
// ledger that persists in the v4 state sections, so lead-time
// accounting survives restarts.
//
// With several -site flags the daemon federates independent fleets: each
// site tails its own log into its own partitioned engine, and the legacy
// /v1 endpoints become the cross-site rollup. -partitions shards each
// site's engine across goroutine-owned partitions (hash by node) for
// multicore ingest; answers are bit-identical at every setting.
//
// The daemon checkpoints its scanner state and record set atomically to
// -state; a killed daemon restarted over the same logs resumes exactly,
// losing and duplicating nothing — including records still buffered in
// the reorder window at the moment of death, and regardless of the
// partition count it restarts with. Checkpoints are checksum-sealed and
// kept as a generation ladder (-state, -state.1, ... up to -state-keep):
// recovery walks the ladder newest-first, so a torn or bit-flipped file
// costs one checkpoint interval, and a ladder with nothing valid left
// cold-starts from the logs instead of refusing to run. SIGTERM/SIGINT
// drain in-flight requests, write a final checkpoint, and exit 0.
//
// Each site's pipeline is supervised: a panic or ingest fault restarts
// only that site (with jittered exponential backoff), and a site that
// exhausts -restart-budget is quarantined — its endpoints answer 503
// with the supervision detail, /healthz reports degraded with the
// per-site ladder, and every other site keeps ingesting and serving.
// Log rotation (rename-and-recreate or copytruncate) is absorbed by the
// tail without losing records or checkpoint continuity.
//
// Usage:
//
//	astrad -log astra-data/astra-syslog.log -state astrad.state -listen 127.0.0.1:9137
//	astrad -site east=east.log -site west=west.log -partitions 4 -state astrad.state
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/overload"
	"repro/internal/predict"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/syslog"
	"repro/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// siteFlags collects repeatable -site id=path flags.
type siteFlags []siteSpec

func (s *siteFlags) String() string {
	parts := make([]string, len(*s))
	for i, sp := range *s {
		parts[i] = sp.id + "=" + sp.path
	}
	return strings.Join(parts, ",")
}

func (s *siteFlags) Set(v string) error {
	id, path, ok := strings.Cut(v, "=")
	if !ok || id == "" || path == "" {
		return fmt.Errorf("-site wants id=path, got %q", v)
	}
	if strings.ContainsAny(id, " \t\n") {
		return fmt.Errorf("site id %q must not contain whitespace", id)
	}
	for _, prev := range *s {
		if prev.id == id {
			return fmt.Errorf("duplicate site id %q", id)
		}
	}
	*s = append(*s, siteSpec{id: id, path: path})
	return nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg daemonConfig
	var sites siteFlags
	fs.StringVar(&cfg.logPath, "log", "", "syslog file to tail (single-site; required unless -site is used)")
	fs.Var(&sites, "site", "federated site to serve, as id=path (repeatable; excludes -log)")
	fs.StringVar(&cfg.statePath, "state", "", "checkpoint state file (empty disables persistence)")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:9137", "HTTP listen address")
	fs.IntVar(&cfg.dedupWindow, "dedup-window", 64, "suppress record lines identical to one of the last N (0 disables)")
	fs.DurationVar(&cfg.reorderWindow, "reorder-window", 5*time.Minute, "resequence records arriving up to this much late (0 disables)")
	fs.DurationVar(&cfg.poll, "poll", syslog.DefaultTailPoll, "log growth poll interval")
	fs.DurationVar(&cfg.checkpointSec, "checkpoint-every", 30*time.Second, "minimum interval between periodic checkpoints")
	fs.IntVar(&cfg.dimms, "dimms", topology.DIMMs, "DIMM population per site for FIT denominators")
	fs.DurationVar(&cfg.window, "window", stream.DefaultWindow, "rolling event-time window for rates and FIT")
	fs.IntVar(&cfg.workers, "workers", 0, "clustering parallelism inside one partition (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.partitions, "partitions", 1, "engine partitions per site, hash-sharded by node (answers identical at any setting)")

	fs.IntVar(&cfg.queueDepth, "queue-depth", 65536, "admission queue capacity (records) between each tail and its engine")
	fs.IntVar(&cfg.queueHigh, "queue-high", 0, "high watermark: depth at which admission starts shedding (0 = capacity)")
	fs.IntVar(&cfg.queueLow, "queue-low", 0, "low watermark: depth at which shedding stops (0 = capacity/2)")
	shedPolicy := fs.String("shed-policy", overload.PolicyReject.String(), "what a saturated queue sheds: reject (newest) or drop-oldest")
	fs.IntVar(&cfg.drainBatch, "drain-batch", 1024, "max records per engine ingest batch")
	fs.DurationVar(&cfg.drainInterval, "drain-interval", 0, "pause between drain batches (throttle; chaos testing)")

	fs.IntVar(&cfg.cpFailures, "checkpoint-failures", overload.DefaultBreakerFailures, "consecutive checkpoint failures that open the circuit breaker")
	fs.DurationVar(&cfg.cpCooldown, "checkpoint-cooldown", 30*time.Second, "how long an open checkpoint breaker skips writes before probing")
	fs.DurationVar(&cfg.cpTimeout, "checkpoint-timeout", 5*time.Second, "checkpoint writes slower than this count as breaker failures (0 disables)")
	fs.IntVar(&cfg.stateKeep, "state-keep", atomicio.DefaultKeep, "checkpoint generations kept as a recovery ladder (-state, -state.1, ...; min 1)")

	fs.Float64Var(&cfg.riskThreshold, "risk-threshold", serve.DefaultRiskThreshold, "risk score at which a bank enters the first-alarm ledger and the atrisk gauge")
	fs.StringVar(&cfg.modelPath, "model", "", "trained prediction model directory (empty = built-in rule ladder)")

	fs.DurationVar(&cfg.restartBackoff, "restart-backoff", time.Second, "initial delay before restarting a failed site pipeline (doubles per consecutive failure, jittered)")
	fs.DurationVar(&cfg.restartBackoffMax, "restart-backoff-max", 30*time.Second, "ceiling on the site restart backoff")
	fs.IntVar(&cfg.restartBudget, "restart-budget", supervise.DefaultBudget, "consecutive site pipeline failures before the site is quarantined (<0 = never quarantine)")
	fs.DurationVar(&cfg.restartReset, "restart-reset", time.Minute, "a site pipeline surviving this long resets its failure streak")

	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second, "time limit for reading request headers (slow-loris defense)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 30*time.Second, "time limit for reading an entire request")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "time limit for writing a response (slow-reader defense)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	fs.IntVar(&cfg.maxHeaderBytes, "max-header-bytes", 1<<20, "maximum request header size")
	fs.IntVar(&cfg.maxConcurrent, "max-concurrent", serve.DefaultMaxConcurrent, "per-endpoint in-flight request cap (503 beyond; <0 disables)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", serve.DefaultRequestTimeout, "per-request deadline (<0 disables)")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg.sites = sites
	switch {
	case len(cfg.sites) > 0 && cfg.logPath != "":
		fmt.Fprintln(stderr, "astrad: -log and -site are mutually exclusive")
		fs.Usage()
		return 2
	case len(cfg.sites) == 0 && cfg.logPath == "":
		fs.Usage()
		return 2
	}
	policy, err := overload.ParsePolicy(*shedPolicy)
	if err != nil {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return 2
	}
	cfg.shedPolicy = policy
	if cfg.stateKeep < 1 {
		fmt.Fprintln(stderr, "astrad: -state-keep must be at least 1")
		fs.Usage()
		return 2
	}
	if cfg.riskThreshold <= 0 || cfg.riskThreshold > 1 {
		fmt.Fprintln(stderr, "astrad: -risk-threshold must be in (0, 1]")
		fs.Usage()
		return 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))

	code, err := serveDaemon(ctx, cfg, logger)
	if err != nil {
		logger.Error("astrad failed", "err", err)
	}
	return code
}

// matchSnapshot pairs a configured site with its restored state. Sites
// match by id; as a migration path, a lone v1/v2 snapshot (always named
// "default") restores a lone configured site whatever its id.
func matchSnapshot(snaps []siteSnapshot, specs []siteSpec, i int) siteSnapshot {
	for _, sn := range snaps {
		if sn.id == specs[i].id {
			return sn
		}
	}
	if len(specs) == 1 && len(snaps) == 1 {
		return snaps[0]
	}
	return siteSnapshot{id: specs[i].id}
}

// serveDaemon wires state restore (walking the checkpoint generation
// ladder), the supervised per-site pipelines, the checkpoint writer and
// the HTTP server, then blocks until the context is cancelled or the
// HTTP server fails. Site pipeline faults never reach this function:
// they restart or quarantine under the supervisor while the rest of the
// daemon keeps serving.
func serveDaemon(ctx context.Context, cfg daemonConfig, logger *slog.Logger) (int, error) {
	d := &daemon{
		cfg: cfg,
		log: logger,
		breaker: overload.NewBreaker(overload.BreakerConfig{
			Failures: cfg.cpFailures,
			Cooldown: cfg.cpCooldown,
		}),
		cpCh: make(chan []byte, 1),
		fs:   atomicio.OS,
	}
	if cfg.modelPath != "" {
		m, err := predict.LoadModel(nil, cfg.modelPath)
		if err != nil {
			return 1, fmt.Errorf("load model: %w", err)
		}
		d.predictor = m
		logger.Info("prediction model loaded", "dir", cfg.modelPath, "name", m.Name())
	} else {
		d.predictor = predict.DefaultRuleLadder()
	}
	if cfg.statePath != "" {
		// A crash can strand an atomic-write temp file next to the state;
		// sweep leftovers before writing new generations beside them.
		if err := atomicio.SweepTemps(d.fs, filepath.Dir(cfg.statePath)); err != nil {
			logger.Warn("temp sweep failed", "dir", filepath.Dir(cfg.statePath), "err", err)
		}
	}
	snaps, gen, discarded, err := loadStateLadder(d.fs, cfg.statePath, cfg.stateKeep)
	for _, disc := range discarded {
		d.gensDiscarded.Add(1)
		logger.Warn("state generation discarded", "path", disc.Path, "generation", disc.Gen, "err", disc.Err)
	}
	if err != nil {
		return 1, err
	}
	switch {
	case gen > 0:
		logger.Warn("recovered from older state generation", "generation", gen, "discarded", len(discarded))
	case gen < 0 && len(discarded) > 0:
		logger.Warn("no state generation recoverable; cold-starting from the logs", "discarded", len(discarded))
	}
	specs := cfg.sites
	if len(specs) == 0 {
		specs = []siteSpec{{id: "default", path: cfg.logPath}}
	}
	for _, sn := range snaps {
		found := false
		for _, sp := range specs {
			if sp.id == sn.id {
				found = true
			}
		}
		if !found && len(specs) > 1 {
			logger.Warn("state section for unconfigured site dropped", "site", sn.id, "records", len(sn.recs))
		}
	}

	for i, spec := range specs {
		snap := matchSnapshot(snaps, specs, i)
		site := &siteDaemon{id: spec.id, logPath: spec.path}
		eng, q := d.buildPipeline(snap)
		site.eng.Store(eng)
		site.q.Store(q)
		site.resumeCP = snap.cp
		site.primed.Store(true)
		site.alarms.replace(snap.alarms)
		sec, err := marshalSiteSectionV4(snap.cp, snap.shed, snap.recs, snap.alarms)
		if err != nil {
			return 1, err
		}
		site.section.Store(&sec)
		if len(snap.recs) > 0 {
			logger.Info("restored", "site", spec.id, "records", len(snap.recs), "shed", snap.shed,
				"alarms", len(snap.alarms), "offset", snap.cp.Offset, "pendingReorder", snap.cp.Buffered())
		}
		d.sites = append(d.sites, site)
	}

	srvSites := make([]serve.Site, len(d.sites))
	for i, s := range d.sites {
		srvSites[i] = serve.Site{ID: s.id, Source: s, Health: s.health}
	}
	srv := serve.New(serve.Config{
		Sites:          srvSites,
		Logger:         logger,
		ScanStats:      d.snapshotStats,
		Overload:       d.overloadStatus,
		MaxConcurrent:  cfg.maxConcurrent,
		RequestTimeout: cfg.requestTimeout,
		Predictor:      d.predictor,
		RiskThreshold:  cfg.riskThreshold,
	})
	reg := srv.Registry()
	reg.NewCounterFunc("astrad_checkpoints_total", "", "State checkpoints written.",
		func() float64 { return float64(d.checkpoints.Load()) })
	reg.NewCounterFunc("astrad_checkpoints_skipped_total", "", "Checkpoints skipped by the breaker or a busy writer.",
		func() float64 { return float64(d.cpSkipped.Load()) })
	reg.NewGaugeFunc("astrad_log_offset_bytes", "", "Byte offset consumed across the tailed logs.",
		func() float64 { return float64(d.offsetBytes()) })
	reg.NewCounterFunc("astrad_state_generations_discarded_total", "", "State generations rejected during recovery (checksum or parse failure).",
		func() float64 { return float64(d.gensDiscarded.Load()) })
	reg.NewCounterFunc("astrad_checkpoints_untranslatable_total", "", "Checkpoint captures skipped because the resume offset predated a log rotation.",
		func() float64 {
			var n uint64
			for _, s := range d.sites {
				n += s.cpUntranslatable.Load()
			}
			return float64(n)
		})
	reg.NewGaugeFunc("astrad_predict_alarmed_banks", "", "Banks in the first-alarm ledgers (ever scored at or above -risk-threshold).",
		func() float64 {
			var n int
			for _, s := range d.sites {
				n += s.alarms.size()
			}
			return float64(n)
		})
	reg.NewCounterFunc("astrad_log_rotations_total", "", "Log rotations (rename-and-recreate) absorbed by the tails.",
		func() float64 { return float64(d.tailTotals().Rotations) })
	reg.NewCounterFunc("astrad_log_truncations_total", "", "In-place log truncations (copytruncate) absorbed by the tails.",
		func() float64 { return float64(d.tailTotals().Truncations) })

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return 1, err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "sites", len(d.sites), "partitions", cfg.partitions)
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
		MaxHeaderBytes:    cfg.maxHeaderBytes,
	}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	writerDone := make(chan struct{})
	go func() { defer close(writerDone); d.checkpointWriter() }()

	tailCtx, cancelTail := context.WithCancel(context.Background())
	defer cancelTail()
	sup := d.superviseSites(tailCtx)

	// Block until shutdown. Site pipeline faults do not appear here: a
	// failing site restarts or quarantines under its supervisor while
	// every other site keeps ingesting and serving — a single-site fault
	// must never terminate the process.
	var httpFail error
	select {
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
	case err := <-httpErr:
		httpFail = fmt.Errorf("http server: %w", err)
	}
	cancelTail()
	sup.Wait()
	close(d.cpCh)
	<-writerDone

	// Every unit has stopped: each running site captured its final
	// section (queue drained, resume offset translated) on the way out,
	// and quarantined sites kept their last-good sections. Persist the
	// composed state synchronously — bypassing the breaker, because this
	// is the last chance to save the shed accounting and resume points.
	exitErr := httpFail
	if cfg.statePath != "" {
		data := d.composeState()
		if err := d.persist(data); err != nil {
			if exitErr == nil {
				exitErr = fmt.Errorf("final checkpoint: %w", err)
			} else {
				logger.Warn("final checkpoint failed", "err", err)
			}
		} else {
			d.checkpoints.Add(1)
			var shed uint64
			for _, s := range d.sites {
				shed += s.engine().Shed()
			}
			d.log.Info("checkpoint", "final", true, "bytes", len(data), "shed", shed)
		}
	}

	// Drain in-flight requests before exiting; the engines stay queryable
	// throughout.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}

	if exitErr != nil {
		return 1, exitErr
	}
	var records, faults, shed int
	for _, s := range d.sites {
		sum := s.engine().Summary()
		records += sum.Records
		faults += sum.Faults
		shed += sum.Shed
	}
	logger.Info("stopped", "records", records, "faults", faults,
		"shed", shed, "checkpoints", d.checkpoints.Load(),
		"restarts", sup.Restarts(), "quarantined", sup.Quarantined())
	return 0, nil
}
