// Command astrad is the online face of the pipeline: a long-running
// daemon that tails a syslog, clusters correctable errors incrementally
// (identically to the batch clusterer — the stream engine's differential
// guarantee), and serves live analyses over HTTP:
//
//	GET /v1/faults      current fault list (?mode=single-bit filters)
//	GET /v1/breakdown   rolling summary: counts, mode breakdown, CE rates
//	GET /v1/fit         windowed and overall FIT/DIMM estimates
//	GET /v1/nodes/{id}  per-node status (id is the host name)
//	GET /healthz        liveness
//	GET /metrics        Prometheus text exposition
//
// The daemon checkpoints its scanner state and record set atomically to
// -state; a killed daemon restarted over the same log resumes exactly,
// losing and duplicating nothing — including records still buffered in
// the reorder window at the moment of death. SIGTERM/SIGINT drain
// in-flight requests, write a final checkpoint, and exit 0.
//
// Usage:
//
//	astrad -log astra-data/astra-syslog.log -state astrad.state -listen 127.0.0.1:9137
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg daemonConfig
	fs.StringVar(&cfg.logPath, "log", "", "syslog file to tail (required)")
	fs.StringVar(&cfg.statePath, "state", "", "checkpoint state file (empty disables persistence)")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:9137", "HTTP listen address")
	fs.IntVar(&cfg.dedupWindow, "dedup-window", 64, "suppress record lines identical to one of the last N (0 disables)")
	fs.DurationVar(&cfg.reorderWindow, "reorder-window", 5*time.Minute, "resequence records arriving up to this much late (0 disables)")
	fs.DurationVar(&cfg.poll, "poll", syslog.DefaultTailPoll, "log growth poll interval")
	fs.DurationVar(&cfg.checkpointSec, "checkpoint-every", 30*time.Second, "minimum interval between periodic checkpoints")
	fs.IntVar(&cfg.dimms, "dimms", topology.DIMMs, "DIMM population for FIT denominators")
	fs.DurationVar(&cfg.window, "window", stream.DefaultWindow, "rolling event-time window for rates and FIT")
	fs.IntVar(&cfg.workers, "workers", 0, "clustering parallelism (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.logPath == "" {
		fs.Usage()
		return 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))

	code, err := serveDaemon(ctx, cfg, logger)
	if err != nil {
		logger.Error("astrad failed", "err", err)
	}
	return code
}

// serveDaemon wires state restore, the ingest loop and the HTTP server,
// then blocks until the context is cancelled or ingest fails.
func serveDaemon(ctx context.Context, cfg daemonConfig, logger *slog.Logger) (int, error) {
	cp, recs, err := loadState(cfg.statePath)
	if err != nil {
		return 1, err
	}
	f, err := os.Open(cfg.logPath)
	if err != nil {
		return 1, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return 1, err
	} else if fi.Size() < cp.Offset {
		// The log shrank beneath the checkpoint (rotation/truncation):
		// the saved state describes bytes that no longer exist.
		logger.Warn("log shorter than checkpoint; starting fresh",
			"size", fi.Size(), "offset", cp.Offset)
		cp, recs = syslog.Checkpoint{}, nil
	}
	if _, err := f.Seek(cp.Offset, io.SeekStart); err != nil {
		return 1, err
	}

	d := &daemon{
		cfg: cfg,
		log: logger,
		engine: stream.New(stream.Config{
			Cluster:     core.ClusterConfig{Parallelism: cfg.workers},
			Window:      cfg.window,
			DIMMs:       cfg.dimms,
			Parallelism: cfg.workers,
		}),
	}
	d.engine.IngestBatch(recs)
	if len(recs) > 0 {
		logger.Info("restored", "records", len(recs), "offset", cp.Offset,
			"pendingReorder", cp.Buffered())
	}

	srv := serve.New(serve.Config{Engine: d.engine, Logger: logger, ScanStats: d.snapshotStats})
	reg := srv.Registry()
	reg.NewCounterFunc("astrad_checkpoints_total", "", "State checkpoints written.",
		func() float64 { return float64(d.checkpoints.Load()) })
	reg.NewGaugeFunc("astrad_log_offset_bytes", "", "Byte offset consumed in the tailed log.",
		func() float64 { return float64(d.offset.Load()) })

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return 1, err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "log", cfg.logPath)
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	tailCtx, cancelTail := context.WithCancel(context.Background())
	defer cancelTail()
	ingestDone := make(chan error, 1)
	go func() { ingestDone <- d.ingest(tailCtx, f, cp) }()

	var ingestErr error
	select {
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		cancelTail()
		ingestErr = <-ingestDone
	case ingestErr = <-ingestDone:
		cancelTail()
	case err := <-httpErr:
		cancelTail()
		ingestErr = <-ingestDone
		if ingestErr == nil {
			ingestErr = fmt.Errorf("http server: %w", err)
		}
	}

	// Drain in-flight requests before exiting; the engine stays queryable
	// throughout.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}

	if ingestErr != nil {
		return 1, ingestErr
	}
	sum := d.engine.Summary()
	logger.Info("stopped", "records", sum.Records, "faults", sum.Faults,
		"checkpoints", d.checkpoints.Load())
	return 0, nil
}
