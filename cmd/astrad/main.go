// Command astrad is the online face of the pipeline: a long-running
// daemon that tails a syslog, clusters correctable errors incrementally
// (identically to the batch clusterer — the stream engine's differential
// guarantee), and serves live analyses over HTTP:
//
//	GET /v1/faults      current fault list (?mode=single-bit filters)
//	GET /v1/breakdown   rolling summary: counts, mode breakdown, CE rates
//	GET /v1/fit         windowed and overall FIT/DIMM estimates
//	GET /v1/nodes/{id}  per-node status (id is the host name)
//	GET /healthz        liveness
//	GET /metrics        Prometheus text exposition
//
// The daemon checkpoints its scanner state and record set atomically to
// -state; a killed daemon restarted over the same log resumes exactly,
// losing and duplicating nothing — including records still buffered in
// the reorder window at the moment of death. SIGTERM/SIGINT drain
// in-flight requests, write a final checkpoint, and exit 0.
//
// Usage:
//
//	astrad -log astra-data/astra-syslog.log -state astrad.state -listen 127.0.0.1:9137
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg daemonConfig
	fs.StringVar(&cfg.logPath, "log", "", "syslog file to tail (required)")
	fs.StringVar(&cfg.statePath, "state", "", "checkpoint state file (empty disables persistence)")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:9137", "HTTP listen address")
	fs.IntVar(&cfg.dedupWindow, "dedup-window", 64, "suppress record lines identical to one of the last N (0 disables)")
	fs.DurationVar(&cfg.reorderWindow, "reorder-window", 5*time.Minute, "resequence records arriving up to this much late (0 disables)")
	fs.DurationVar(&cfg.poll, "poll", syslog.DefaultTailPoll, "log growth poll interval")
	fs.DurationVar(&cfg.checkpointSec, "checkpoint-every", 30*time.Second, "minimum interval between periodic checkpoints")
	fs.IntVar(&cfg.dimms, "dimms", topology.DIMMs, "DIMM population for FIT denominators")
	fs.DurationVar(&cfg.window, "window", stream.DefaultWindow, "rolling event-time window for rates and FIT")
	fs.IntVar(&cfg.workers, "workers", 0, "clustering parallelism (0 = GOMAXPROCS)")

	fs.IntVar(&cfg.queueDepth, "queue-depth", 65536, "admission queue capacity (records) between the tail and the engine")
	fs.IntVar(&cfg.queueHigh, "queue-high", 0, "high watermark: depth at which admission starts shedding (0 = capacity)")
	fs.IntVar(&cfg.queueLow, "queue-low", 0, "low watermark: depth at which shedding stops (0 = capacity/2)")
	shedPolicy := fs.String("shed-policy", overload.PolicyReject.String(), "what a saturated queue sheds: reject (newest) or drop-oldest")
	fs.IntVar(&cfg.drainBatch, "drain-batch", 1024, "max records per engine ingest batch")
	fs.DurationVar(&cfg.drainInterval, "drain-interval", 0, "pause between drain batches (throttle; chaos testing)")

	fs.IntVar(&cfg.cpFailures, "checkpoint-failures", overload.DefaultBreakerFailures, "consecutive checkpoint failures that open the circuit breaker")
	fs.DurationVar(&cfg.cpCooldown, "checkpoint-cooldown", 30*time.Second, "how long an open checkpoint breaker skips writes before probing")
	fs.DurationVar(&cfg.cpTimeout, "checkpoint-timeout", 5*time.Second, "checkpoint writes slower than this count as breaker failures (0 disables)")

	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second, "time limit for reading request headers (slow-loris defense)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 30*time.Second, "time limit for reading an entire request")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "time limit for writing a response (slow-reader defense)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	fs.IntVar(&cfg.maxHeaderBytes, "max-header-bytes", 1<<20, "maximum request header size")
	fs.IntVar(&cfg.maxConcurrent, "max-concurrent", serve.DefaultMaxConcurrent, "per-endpoint in-flight request cap (503 beyond; <0 disables)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", serve.DefaultRequestTimeout, "per-request deadline (<0 disables)")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.logPath == "" {
		fs.Usage()
		return 2
	}
	policy, err := overload.ParsePolicy(*shedPolicy)
	if err != nil {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return 2
	}
	cfg.shedPolicy = policy
	logger := slog.New(slog.NewTextHandler(stderr, nil))

	code, err := serveDaemon(ctx, cfg, logger)
	if err != nil {
		logger.Error("astrad failed", "err", err)
	}
	return code
}

// serveDaemon wires state restore, the admission queue, the ingest
// loop, the drainer, the checkpoint writer and the HTTP server, then
// blocks until the context is cancelled or ingest fails.
func serveDaemon(ctx context.Context, cfg daemonConfig, logger *slog.Logger) (int, error) {
	cp, shed, recs, err := loadState(cfg.statePath)
	if err != nil {
		return 1, err
	}
	f, err := os.Open(cfg.logPath)
	if err != nil {
		return 1, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return 1, err
	} else if fi.Size() < cp.Offset {
		// The log shrank beneath the checkpoint (rotation/truncation):
		// the saved state describes bytes that no longer exist.
		logger.Warn("log shorter than checkpoint; starting fresh",
			"size", fi.Size(), "offset", cp.Offset)
		cp, shed, recs = syslog.Checkpoint{}, 0, nil
	}
	if _, err := f.Seek(cp.Offset, io.SeekStart); err != nil {
		return 1, err
	}

	d := &daemon{
		cfg: cfg,
		log: logger,
		engine: stream.New(stream.Config{
			Cluster:     core.ClusterConfig{Parallelism: cfg.workers},
			Window:      cfg.window,
			DIMMs:       cfg.dimms,
			Parallelism: cfg.workers,
		}),
		breaker: overload.NewBreaker(overload.BreakerConfig{
			Failures: cfg.cpFailures,
			Cooldown: cfg.cpCooldown,
		}),
		cpCh: make(chan []byte, 1),
		fs:   atomicio.OS,
	}
	d.queue = overload.NewQueue[mce.CERecord](overload.Config{
		Capacity: cfg.queueDepth,
		High:     cfg.queueHigh,
		Low:      cfg.queueLow,
		Policy:   cfg.shedPolicy,
		// Every shed record is charged to the engine's degraded
		// accounting: offered == ingested + shed, and every analysis
		// that undercounts says so.
		OnShed: func(n int) { d.engine.NoteShed(n) },
	})
	d.engine.IngestBatch(recs)
	if shed > 0 {
		d.engine.NoteShed(int(shed))
	}
	if len(recs) > 0 {
		logger.Info("restored", "records", len(recs), "shed", shed,
			"offset", cp.Offset, "pendingReorder", cp.Buffered())
	}

	srv := serve.New(serve.Config{
		Engine:         d.engine,
		Logger:         logger,
		ScanStats:      d.snapshotStats,
		Overload:       d.overloadStatus,
		MaxConcurrent:  cfg.maxConcurrent,
		RequestTimeout: cfg.requestTimeout,
	})
	reg := srv.Registry()
	reg.NewCounterFunc("astrad_checkpoints_total", "", "State checkpoints written.",
		func() float64 { return float64(d.checkpoints.Load()) })
	reg.NewCounterFunc("astrad_checkpoints_skipped_total", "", "Checkpoints skipped by the breaker or a busy writer.",
		func() float64 { return float64(d.cpSkipped.Load()) })
	reg.NewGaugeFunc("astrad_log_offset_bytes", "", "Byte offset consumed in the tailed log.",
		func() float64 { return float64(d.offset.Load()) })

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return 1, err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "log", cfg.logPath)
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
		MaxHeaderBytes:    cfg.maxHeaderBytes,
	}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	drainDone := make(chan struct{})
	go func() { defer close(drainDone); d.drain() }()
	writerDone := make(chan struct{})
	go func() { defer close(writerDone); d.checkpointWriter() }()

	tailCtx, cancelTail := context.WithCancel(context.Background())
	defer cancelTail()
	type ingestResult struct {
		cp  syslog.Checkpoint
		err error
	}
	ingestDone := make(chan ingestResult, 1)
	go func() {
		cp, err := d.ingest(tailCtx, f, cp)
		ingestDone <- ingestResult{cp, err}
	}()

	var ingestErr error
	var finalCP syslog.Checkpoint
	select {
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		cancelTail()
		res := <-ingestDone
		finalCP, ingestErr = res.cp, res.err
	case res := <-ingestDone:
		cancelTail()
		finalCP, ingestErr = res.cp, res.err
	case err := <-httpErr:
		cancelTail()
		res := <-ingestDone
		finalCP, ingestErr = res.cp, res.err
		if ingestErr == nil {
			ingestErr = fmt.Errorf("http server: %w", err)
		}
	}

	// The tail has stopped: drain what the queue still holds into the
	// engine, stop the checkpoint writer, then persist the final state
	// synchronously — bypassing the breaker, because this is the last
	// chance to save the shed accounting and the resume point.
	d.queue.Close()
	<-drainDone
	close(d.cpCh)
	<-writerDone
	if ingestErr == nil && cfg.statePath != "" {
		data, err := d.snapshotState(finalCP)
		if err == nil {
			err = d.persist(data)
		}
		if err != nil {
			ingestErr = fmt.Errorf("final checkpoint: %w", err)
		} else {
			d.checkpoints.Add(1)
			d.log.Info("checkpoint", "final", true, "bytes", len(data), "shed", d.engine.Shed())
		}
	}

	// Drain in-flight requests before exiting; the engine stays queryable
	// throughout.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}

	if ingestErr != nil {
		return 1, ingestErr
	}
	sum := d.engine.Summary()
	logger.Info("stopped", "records", sum.Records, "faults", sum.Faults,
		"shed", sum.Shed, "checkpoints", d.checkpoints.Load())
	return 0, nil
}
