package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// TestSealOpenState pins the checksum trailer: seal/open round-trips,
// unsealed (legacy) images pass through untouched, and any single
// bit flip — in the body or the trailer — is detected.
func TestSealOpenState(t *testing.T) {
	_, ces := testLog(t)
	data, err := marshalState(syslog.Checkpoint{}, 3, ces[:8])
	if err != nil {
		t.Fatal(err)
	}
	sealed := sealState(data)
	if !bytes.HasPrefix(sealed, data) {
		t.Fatal("sealing rewrote the body")
	}
	body, err := openState(sealed)
	if err != nil {
		t.Fatalf("open sealed: %v", err)
	}
	if !bytes.Equal(body, data) {
		t.Fatal("open did not strip the trailer exactly")
	}
	// Legacy (no trailer) passes through.
	if body, err := openState(data); err != nil || !bytes.Equal(body, data) {
		t.Fatalf("legacy image rejected: %v", err)
	}
	// Any bit flip in a sealed image must be caught: the body flips fail
	// the checksum, trailer flips garble or mismatch the trailer itself.
	for _, off := range []int{0, len(data) / 2, len(data) - 1, len(sealed) - 3} {
		corrupt := append([]byte(nil), sealed...)
		corrupt[off] ^= 0x10
		if _, _, _, err := unmarshalState(corrupt); err == nil {
			t.Fatalf("bit flip at %d of %d undetected", off, len(sealed))
		}
	}
	// The full decode path accepts the sealed image.
	if _, _, recs, err := unmarshalState(sealed); err != nil || len(recs) != 8 {
		t.Fatalf("unmarshal sealed = %d recs, %v", len(recs), err)
	}
}

// TestParseSectionErrorsNameSiteAndOffset pins the diagnosability
// contract: a damaged section names the site it belongs to and the byte
// offset where parsing stopped.
func TestParseSectionErrorsNameSiteAndOffset(t *testing.T) {
	_, ces := testLog(t)
	data, err := marshalState(syslog.Checkpoint{}, 7, ces[:4])
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Replace(data, []byte("\nshed 7\n"), []byte("\nsped 7\n"), 1)
	_, _, _, err = unmarshalState(corrupt)
	if err == nil {
		t.Fatal("corrupted shed header accepted")
	}
	if !strings.Contains(err.Error(), "site default") || !strings.Contains(err.Error(), "at byte") {
		t.Fatalf("error does not name site and offset: %v", err)
	}

	v3, err := marshalStateV3([]siteSnapshot{
		{id: "east", recs: ces[:2]},
		{id: "west", recs: ces[2:5]},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Damage west's records header only.
	i := bytes.Index(v3, []byte("site west\n"))
	if i < 0 {
		t.Fatal("no west section")
	}
	j := i + bytes.Index(v3[i:], []byte("\nrecords "))
	corrupt = append([]byte(nil), v3...)
	corrupt[j+1] = 'R'
	_, err = unmarshalStateV3(corrupt)
	if err == nil {
		t.Fatal("corrupted v3 records header accepted")
	}
	if !strings.Contains(err.Error(), "site west") || !strings.Contains(err.Error(), "at byte") {
		t.Fatalf("v3 error does not name site and offset: %v", err)
	}
}

// startDaemonKeep is startDaemonArgs with a short checkpoint cadence and
// a generation ladder.
func startDaemonKeep(t *testing.T, logPath, statePath string, extra ...string) (string, context.CancelFunc, chan int, *syncBuf) {
	t.Helper()
	return startDaemonArgs(t, logPath, statePath,
		append([]string{"-state-keep", "3", "-checkpoint-every", "20ms"}, extra...)...)
}

// TestDaemonStateLadderRecovery is the generational-recovery acceptance
// test: a bit flip in the newest state generation must cost one
// checkpoint interval, not the daemon. Phase 1 runs long enough to lay
// down at least two generations; the newest is then bit-flipped, and the
// restarted daemon must fall back to the older generation, re-ingest the
// offset delta, and converge to the exact batch answer. A second restart
// with every generation corrupted must cold-start from the log — never
// exit — and still converge.
func TestDaemonStateLadderRecovery(t *testing.T) {
	full, ces := testLog(t)
	wantFaults := mustCluster(t, ces)
	wantBreak := core.BreakdownByMode(ces, wantFaults)

	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")
	cut := bytes.LastIndexByte(full[:len(full)/2], '\n') + 1
	if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 1: ingest the first half, wait for a periodic checkpoint (the
	// final shutdown write then shifts it to generation 1).
	addr, cancel, done, errs := startDaemonKeep(t, logPath, statePath)
	var h struct {
		Records int `json:"records"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Records == 0 || !strings.Contains(errs.String(), "msg=checkpoint") {
		if code := httpGetJSON(t, "http://"+addr+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint in phase 1; stderr:\n%s", errs.String())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("phase 1 exit = %d; stderr:\n%s", code, errs.String())
	}
	if _, err := os.Stat(statePath + ".1"); err != nil {
		t.Fatalf("no generation 1 after two checkpoints: %v", err)
	}

	// Corrupt the newest generation and append the rest of the log.
	if _, _, err := iofault.FlipBit(statePath, 42); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: the daemon must discard generation 0, restore generation 1
	// and converge to the batch answer.
	addr, cancel, done, errs = startDaemonKeep(t, logPath, statePath)
	sum := waitForRecords(t, addr, len(ces))
	if sum.Records != len(ces) || sum.Faults != len(wantFaults) {
		t.Fatalf("phase 2: records=%d faults=%d, want %d/%d", sum.Records, sum.Faults, len(ces), len(wantFaults))
	}
	if sum.FaultsByMode != wantBreak.FaultsByMode || sum.ErrorsByMode != wantBreak.ErrorsByMode {
		t.Fatalf("phase 2 breakdown diverges: %+v vs %+v", sum, wantBreak)
	}
	if !strings.Contains(errs.String(), "state generation discarded") ||
		!strings.Contains(errs.String(), "recovered from older state generation") {
		t.Fatalf("phase 2 did not report the ladder fallback; stderr:\n%s", errs.String())
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("astrad_state_generations_discarded_total 1")) {
		t.Fatalf("discard metric missing:\n%s", metrics)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("phase 2 exit = %d; stderr:\n%s", code, errs.String())
	}

	// Phase 3: corrupt every generation. The daemon must cold-start from
	// the log — total state loss is an operational event, not an outage —
	// and still converge to the batch answer.
	gens, _ := filepath.Glob(statePath + "*")
	if len(gens) < 2 {
		t.Fatalf("expected a ladder, found %v", gens)
	}
	for i, g := range gens {
		if _, _, err := iofault.FlipBit(g, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	addr, cancel, done, errs = startDaemonKeep(t, logPath, statePath)
	defer func() {
		cancel()
		<-done
	}()
	sum = waitForRecords(t, addr, len(ces))
	if sum.Faults != len(wantFaults) || sum.FaultsByMode != wantBreak.FaultsByMode {
		t.Fatalf("cold start diverges: %+v", sum)
	}
	if !strings.Contains(errs.String(), "no state generation recoverable") {
		t.Fatalf("cold start not reported; stderr:\n%s", errs.String())
	}
}

// countMetric extracts one un-labelled metric value from /metrics.
func countMetric(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
				return v
			}
		}
	}
	return 0
}

// TestDaemonRotationLadderRecovery is the combined acceptance test: the
// live log is rotated away mid-tail, the daemon keeps ingesting the
// successor with checkpoint continuity, the newest state generation is
// then bit-flipped, and a restarted daemon must fall back one generation
// (whose offset is in successor-file coordinates) and converge to the
// exact batch answer over both files' records. The dataset is kept
// small (12 nodes) because every checkpoint capture snapshots the full
// record population: at testLog scale the 20ms cadence would spend more
// time capturing than ingesting under the race detector.
func TestDaemonRotationLadderRecovery(t *testing.T) {
	full, ces := buildSiteLog(t, 61, 12)
	wantFaults := mustCluster(t, ces)
	wantBreak := core.BreakdownByMode(ces, wantFaults)

	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")
	cut := bytes.LastIndexByte(full[:len(full)/2], '\n') + 1
	if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	addr, cancel, done, errs := startDaemonKeep(t, logPath, statePath)
	var h struct {
		Records int `json:"records"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Records == 0 {
		httpGetJSON(t, "http://"+addr+"/healthz", &h)
		if time.Now().After(deadline) {
			t.Fatal("no records before rotation")
		}
		time.Sleep(time.Millisecond)
	}

	// Rotate: rename the live log away, then create the successor. The
	// follower must notice the inode change and keep going. The successor
	// content arrives as a trickle of appends so the scanner keeps
	// yielding across many checkpoint intervals — by shutdown, every
	// generation on the ladder carries successor-file offsets.
	if err := os.Rename(logPath, logPath+".old"); err != nil {
		t.Fatal(err)
	}
	rest := full[cut:]
	if err := os.WriteFile(logPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(rest); {
		end := off + len(rest)/8
		if end >= len(rest) {
			end = len(rest)
		} else {
			end = off + bytes.LastIndexByte(rest[off:end], '\n') + 1
		}
		f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(rest[off:end]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		off = end
		time.Sleep(60 * time.Millisecond)
	}
	sum := waitForRecords(t, addr, len(ces))
	if sum.Records != len(ces) {
		t.Fatalf("rotated tail lost records: %d of %d", sum.Records, len(ces))
	}
	if n := countMetric(t, addr, "astrad_log_rotations_total"); n != 1 {
		t.Fatalf("astrad_log_rotations_total = %g, want 1", n)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("rotation phase exit = %d; stderr:\n%s", code, errs.String())
	}

	// The final checkpoint's offset must be in successor coordinates: at
	// most the successor's size.
	snaps, err := loadState(statePath)
	if err != nil {
		t.Fatalf("state after rotation: %v", err)
	}
	if n := int64(len(full) - cut); len(snaps) != 1 || snaps[0].cp.Offset > n {
		t.Fatalf("final offset %d exceeds successor size %d", snaps[0].cp.Offset, n)
	}

	// Bit-flip the newest generation; recovery must fall back and still
	// reproduce the batch answer exactly.
	if _, _, err := iofault.FlipBit(statePath, 7); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done, errs = startDaemonKeep(t, logPath, statePath)
	defer func() {
		cancel()
		<-done
	}()
	sum = waitForRecords(t, addr, len(ces))
	if sum.Records != len(ces) || sum.Faults != len(wantFaults) {
		t.Fatalf("post-rotation recovery: records=%d faults=%d, want %d/%d",
			sum.Records, sum.Faults, len(ces), len(wantFaults))
	}
	if sum.FaultsByMode != wantBreak.FaultsByMode || sum.ErrorsByMode != wantBreak.ErrorsByMode {
		t.Fatalf("post-rotation breakdown diverges: %+v vs %+v", sum, wantBreak)
	}
	if !strings.Contains(errs.String(), "state generation discarded") {
		t.Fatalf("fallback not reported; stderr:\n%s", errs.String())
	}
}

// poisonLog writes a log whose first line exceeds the follower's 1 MiB
// buffer cap — a deterministic, repeatable ingest fault.
func poisonLog(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 2<<20), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonSiteFaultIsolation is the fault-isolation acceptance test: a
// site whose log is unreadable exhausts its restart budget and is
// quarantined, its endpoints answer 503 with the supervision detail, and
// /healthz degrades — while the sibling site ingests to the exact batch
// answer and keeps serving 200s. SIGTERM while quarantined still writes
// a final checkpoint with both sites' sections, exits 0, and a restart
// over that state (log repaired) holds the differential.
func TestDaemonSiteFaultIsolation(t *testing.T) {
	logA, cesA := testLog(t)
	faultsA := mustCluster(t, cesA)

	dir := t.TempDir()
	pathA := filepath.Join(dir, "east.log")
	pathB := filepath.Join(dir, "west.log")
	statePath := filepath.Join(dir, "astrad.state")
	if err := os.WriteFile(pathA, logA, 0o644); err != nil {
		t.Fatal(err)
	}
	poisonLog(t, pathB)

	args := []string{
		"-site", "east=" + pathA, "-site", "west=" + pathB,
		"-state", statePath, "-listen", "127.0.0.1:0",
		"-dedup-window", fmt.Sprint(testDedup), "-reorder-window", testReorder.String(),
		"-poll", "1ms", "-checkpoint-every", "50ms", "-state-keep", "3",
		"-dimms", fmt.Sprint(48 * topology.SlotsPerNode),
		"-restart-backoff", "1ms", "-restart-backoff-max", "5ms", "-restart-budget", "2",
	}
	addr, cancel, done, errs := startDaemonCustom(t, args...)

	// West must quarantine: initial run + 2 restarts, all hitting the
	// oversized line, with ~1ms backoffs.
	type siteEntry struct {
		ID       string  `json:"id"`
		State    string  `json:"state"`
		Restarts uint64  `json:"restarts"`
		LastErr  string  `json:"lastError"`
		RetryIn  float64 `json:"retryInSeconds"`
	}
	var hz struct {
		Status string      `json:"status"`
		Sites  []siteEntry `json:"sites"`
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		httpGetJSON(t, "http://"+addr+"/healthz", &hz)
		west := siteEntry{}
		for _, s := range hz.Sites {
			if s.ID == "west" {
				west = s
			}
		}
		if west.State == "quarantined" {
			if hz.Status != "degraded" && hz.Status != "shedding" {
				t.Fatalf("healthz status = %q with a quarantined site", hz.Status)
			}
			if west.Restarts != 2 || !strings.Contains(west.LastErr, "unterminated line") {
				t.Fatalf("west health = %+v, want 2 restarts and the tail error", west)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("west never quarantined; healthz=%+v stderr:\n%s", hz, errs.String())
		}
		time.Sleep(time.Millisecond)
	}

	// East is untouched: it converges to its batch answer while west is
	// down, and its scoped endpoints keep serving.
	var east struct {
		Records int `json:"records"`
		Faults  int `json:"faults"`
	}
	deadline = time.Now().Add(300 * time.Second)
	for east.Records < len(cesA) {
		if code := httpGetJSON(t, "http://"+addr+"/v1/sites/east/breakdown", &east); code != http.StatusOK {
			t.Fatalf("east breakdown = %d during west quarantine", code)
		}
		if time.Now().After(deadline) {
			t.Fatalf("east stuck at %d of %d", east.Records, len(cesA))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if east.Faults != len(faultsA) {
		t.Fatalf("east faults = %d, want %d", east.Faults, len(faultsA))
	}

	// West's scoped endpoints answer 503 with the supervision detail.
	resp, err := http.Get("http://" + addr + "/v1/sites/west/faults")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("west faults = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("west 503 without Retry-After")
	}
	if !bytes.Contains(body, []byte("quarantined")) {
		t.Fatalf("west 503 body lacks state: %s", body)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`astrad_site_state{site="west"} 2`,
		`astrad_site_state{site="east"} 0`,
		`astrad_site_restarts_total{site="west"} 2`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// SIGTERM while west is quarantined: exit 0, final checkpoint with
	// both sections intact.
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("shutdown with quarantined site exit = %d; stderr:\n%s", code, errs.String())
	}
	snaps, err := loadState(statePath)
	if err != nil {
		t.Fatalf("state after quarantined shutdown: %v", err)
	}
	bySite := map[string]siteSnapshot{}
	for _, sn := range snaps {
		bySite[sn.id] = sn
	}
	if len(bySite["east"].recs) == 0 {
		t.Fatal("east section lost its records")
	}
	if w, ok := bySite["west"]; !ok || len(w.recs) != 0 {
		t.Fatalf("west section = %+v, want present and empty", bySite["west"])
	}

	// Repair west's log and restart over the same state: the restart
	// differential holds for the healthy site.
	if err := os.WriteFile(pathB, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done, errs = startDaemonCustom(t, args...)
	defer func() {
		cancel()
		if code := <-done; code != 0 {
			t.Errorf("restart exit = %d; stderr:\n%s", code, errs.String())
		}
	}()
	east.Records, east.Faults = 0, 0
	deadline = time.Now().Add(300 * time.Second)
	for east.Records < len(cesA) {
		httpGetJSON(t, "http://"+addr+"/v1/sites/east/breakdown", &east)
		if time.Now().After(deadline) {
			t.Fatalf("restarted east stuck at %d of %d", east.Records, len(cesA))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if east.Faults != len(faultsA) {
		t.Fatalf("restarted east faults = %d, want %d", east.Faults, len(faultsA))
	}
}

// TestDaemonSiteRecoversWhenLogAppears pins two contracts at once: a
// missing log at startup is a restartable fault, not a fatal one (the
// old daemon exited 1), and a later restart under the supervisor
// actually succeeds once the fault clears.
func TestDaemonSiteRecoversWhenLogAppears(t *testing.T) {
	full, _ := testLog(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "late.log")

	addr, cancel, done, errs := startDaemonArgs(t, logPath, "",
		"-restart-backoff", "1ms", "-restart-backoff-max", "10ms", "-restart-budget=-1")
	defer func() {
		cancel()
		if code := <-done; code != 0 {
			t.Errorf("exit = %d; stderr:\n%s", code, errs.String())
		}
	}()

	var hz struct {
		Status string `json:"status"`
		Sites  []struct {
			State string `json:"state"`
		} `json:"sites"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		httpGetJSON(t, "http://"+addr+"/healthz", &hz)
		if hz.Status == "degraded" && len(hz.Sites) == 1 && hz.Sites[0].State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("missing log never degraded healthz: %+v", hz)
		}
		time.Sleep(time.Millisecond)
	}

	// The log appears; the supervisor's next restart must pick it up.
	if err := os.WriteFile(logPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	var h struct {
		Records int `json:"records"`
	}
	deadline = time.Now().Add(300 * time.Second)
	for h.Records == 0 {
		httpGetJSON(t, "http://"+addr+"/healthz", &h)
		if time.Now().After(deadline) {
			t.Fatalf("site never recovered; stderr:\n%s", errs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepTempsOnStartup: an orphaned atomic-write temp file beside the
// state path is removed during startup.
func TestSweepTempsOnStartup(t *testing.T) {
	full, _ := testLog(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	if err := os.WriteFile(logPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, ".tmp-orphan123")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !atomicio.IsTemp(filepath.Base(orphan)) {
		t.Fatalf("%s not recognized as a temp file", orphan)
	}
	_, cancel, done, errs := startDaemon(t, logPath, filepath.Join(dir, "astrad.state"))
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		cancel()
		t.Fatalf("orphaned temp file survived startup: %v", err)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, errs.String())
	}
}

// FuzzLoadStateLadder: whatever bytes sit in the newest generation, the
// ladder loader must never error — it either accepts them (if they
// decode) or falls back to the valid older generation.
func FuzzLoadStateLadder(f *testing.F) {
	valid, err := marshalState(syslog.Checkpoint{}, 0, nil)
	if err != nil {
		f.Fatal(err)
	}
	sealed := sealState(valid)
	f.Add([]byte(""))
	f.Add(sealed)
	f.Add(valid)
	f.Add([]byte("astrad-state v2\n"))
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 4
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, gen0 []byte) {
		dir := t.TempDir()
		statePath := filepath.Join(dir, "astrad.state")
		if err := os.WriteFile(statePath, gen0, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(statePath+".1", sealed, 0o644); err != nil {
			t.Fatal(err)
		}
		snaps, gen, discarded, err := loadStateLadder(atomicio.OS, statePath, 3)
		if err != nil {
			t.Fatalf("ladder load errored on fuzzed generation: %v", err)
		}
		switch gen {
		case 0:
			// The fuzzer found bytes that decode; fine.
		case 1:
			if len(discarded) != 1 || snaps == nil {
				t.Fatalf("fallback bookkeeping wrong: gen=%d discarded=%d", gen, len(discarded))
			}
		default:
			t.Fatalf("gen = %d with a valid generation 1 present", gen)
		}
	})
}
