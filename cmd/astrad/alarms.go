// Alarm ledger: the daemon's record of when each bank first scored at
// or above the alarm threshold under the serving predictor. Feature
// state rebuilds from the replayed CE records on every restart (it is a
// pure function of them), but first-alarm times are not derivable from
// the records — they say when errors happened, not when the predictor
// first flagged the bank — so they are durable state, carried per site
// in the v4 state sections. Preserving them across restarts keeps
// lead-time accounting honest: a bank that alarmed Monday and failed
// Friday shows four days of warning even if the daemon restarted
// Wednesday.
package main

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/topology"
)

// alarmEntry is one persisted first-alarm fact.
type alarmEntry struct {
	key core.BankKey
	at  int64 // wall clock, UnixNano
}

// alarmLedger tracks one site's first-alarm times. It lives on the
// siteDaemon, outside any pipeline incarnation: a supervised restart
// rebuilds the engine but restores the ledger from the site's section,
// so alarm times never move backward or re-stamp.
type alarmLedger struct {
	mu    sync.Mutex
	first map[core.BankKey]int64
}

// observe scores every bank's current features and stamps now as the
// first-alarm time for banks newly at or above threshold. Already-
// alarmed banks keep their original stamp even if their score later
// drops (the window forgetting a burst does not unring the alarm).
func (l *alarmLedger) observe(banks []predict.BankFeatures, p predict.Predictor, threshold float64, now time.Time) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	added := 0
	for i := range banks {
		if _, ok := l.first[banks[i].Key]; ok {
			continue
		}
		if p.Score(&banks[i].F) >= threshold {
			if l.first == nil {
				l.first = make(map[core.BankKey]int64)
			}
			l.first[banks[i].Key] = now.UnixNano()
			added++
		}
	}
	return added
}

// size returns the number of alarmed banks.
func (l *alarmLedger) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.first)
}

// snapshot returns the ledger sorted by bank key, so marshaling is
// deterministic (round-trip tests and checkpoint diffing rely on it).
func (l *alarmLedger) snapshot() []alarmEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]alarmEntry, 0, len(l.first))
	for k, at := range l.first {
		out = append(out, alarmEntry{key: k, at: at})
	}
	sort.Slice(out, func(i, j int) bool { return lessBankKey(out[i].key, out[j].key) })
	return out
}

// replace resets the ledger to a restored snapshot.
func (l *alarmLedger) replace(entries []alarmEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.first = make(map[core.BankKey]int64, len(entries))
	for _, e := range entries {
		l.first[e.key] = e.at
	}
}

func lessBankKey(a, b core.BankKey) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Slot != b.Slot {
		return a.Slot < b.Slot
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Bank < b.Bank
}

// appendAlarms renders the alarms subsection of a v4 site section.
func appendAlarms(b *bytes.Buffer, alarms []alarmEntry) {
	fmt.Fprintf(b, "alarms %d\n", len(alarms))
	for _, a := range alarms {
		fmt.Fprintf(b, "alarm %s %d %d %d %d\n",
			a.key.Node.String(), int(a.key.Slot), a.key.Rank, a.key.Bank, a.at)
	}
}

// parseAlarms parses the alarms subsection from the front of data and
// returns the unconsumed remainder, with the same site/offset error
// diagnosability as parseSection.
func parseAlarms(data []byte, site string, base int) (alarms []alarmEntry, rest []byte, err error) {
	rest = data
	fail := func(format string, args ...any) error {
		at := base + len(data) - len(rest)
		return fmt.Errorf("astrad: state file: site %s: %s at byte %d", site, fmt.Sprintf(format, args...), at)
	}
	var count int
	if n, serr := fmt.Sscanf(string(firstLine(rest)), "alarms %d", &count); serr != nil || n != 1 {
		return nil, nil, fail("bad alarms header")
	}
	if count < 0 {
		return nil, nil, fail("negative alarm count")
	}
	rest = rest[len(firstLine(rest))+1:]
	alarms = make([]alarmEntry, 0, count)
	for i := 0; i < count; i++ {
		line := firstLine(rest)
		if line == nil {
			return nil, nil, fail("truncated at alarm %d of %d", i, count)
		}
		var node string
		var slot, rank, bank int
		var at int64
		if n, serr := fmt.Sscanf(string(line), "alarm %s %d %d %d %d", &node, &slot, &rank, &bank, &at); serr != nil || n != 5 {
			return nil, nil, fail("alarm %d: bad line %q", i, line)
		}
		id, perr := topology.ParseNodeID(node)
		if perr != nil {
			return nil, nil, fail("alarm %d: %v", i, perr)
		}
		if !topology.Slot(slot).Valid() {
			return nil, nil, fail("alarm %d: slot %d out of range", i, slot)
		}
		rest = rest[len(line)+1:]
		alarms = append(alarms, alarmEntry{
			key: core.BankKey{Node: id, Slot: topology.Slot(slot), Rank: int8(rank), Bank: int8(bank)},
			at:  at,
		})
	}
	return alarms, rest, nil
}
