package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/topology"
)

// startDaemonArgs launches run() in-process with extra flags appended
// and waits for its listen address.
func startDaemonArgs(t *testing.T, logPath, statePath string, extra ...string) (addr string, cancel context.CancelFunc, done chan int, errs *syncBuf) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	errs = &syncBuf{}
	done = make(chan int, 1)
	args := append([]string{
		"-log", logPath, "-state", statePath, "-listen", "127.0.0.1:0",
		"-dedup-window", fmt.Sprint(testDedup), "-reorder-window", testReorder.String(),
		"-poll", "1ms", "-checkpoint-every", "100ms",
		"-dimms", fmt.Sprint(48 * topology.SlotsPerNode),
	}, extra...)
	go func() { done <- run(ctx, args, io.Discard, errs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(errs.String()); m != nil {
			return m[1], cancelCtx, done, errs
		}
		if time.Now().After(deadline) {
			cancelCtx()
			t.Fatalf("daemon never listened; stderr:\n%s", errs.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// healthBody mirrors the /healthz response fields the overload tests
// care about.
type healthBody struct {
	Status   string `json:"status"`
	Records  int    `json:"records"`
	Offered  int    `json:"offered"`
	Shed     int    `json:"shed"`
	Overload *struct {
		Queue struct {
			Offered   uint64 `json:"offered"`
			Shed      uint64 `json:"shed"`
			Depth     int    `json:"depth"`
			Saturated bool   `json:"saturated"`
		} `json:"queue"`
	} `json:"overload"`
}

// TestDaemonSIGTERMUnderOverload: a tiny admission queue and a
// throttled drainer force sustained shedding, then shutdown arrives
// mid-overload. The daemon must exit 0, persist the shed count, and a
// restart must reproduce balanced books: offered == records + shed, no
// record lost beyond the counted sheds, none duplicated.
func TestDaemonSIGTERMUnderOverload(t *testing.T) {
	full, ces := testLog(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")
	if err := os.WriteFile(logPath, full, 0o644); err != nil {
		t.Fatal(err)
	}

	addr, cancel, done, errs := startDaemonArgs(t, logPath, statePath,
		"-queue-depth", "64", "-queue-high", "32", "-queue-low", "8",
		"-drain-batch", "8", "-drain-interval", "5ms",
		"-shed-policy", "reject", "-checkpoint-every", "50ms")

	// Wait for overload to bite: the engine's degraded accounting shows
	// shed records and /healthz says so.
	var h healthBody
	deadline := time.Now().Add(20 * time.Second)
	for h.Shed == 0 {
		if code := httpGetJSON(t, "http://"+addr+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz = %d mid-overload", code)
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("overload never shed; healthz=%+v stderr:\n%s", h, errs.String())
		}
		time.Sleep(time.Millisecond)
	}
	if h.Status != "shedding" && h.Status != "degraded" {
		t.Fatalf("healthz status = %q while shedding", h.Status)
	}
	if h.Overload == nil {
		t.Fatal("healthz missing overload accounting")
	}
	if h.Offered != h.Records+h.Shed {
		t.Fatalf("healthz books do not balance: offered %d != records %d + shed %d",
			h.Offered, h.Records, h.Shed)
	}

	// SIGTERM equivalent mid-overload: drain, persist, exit 0.
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("overloaded shutdown exit = %d; stderr:\n%s", code, errs.String())
	}
	snaps, err := decodeState(mustReadFile(t, statePath))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("state after overloaded shutdown: %d sites, %v", len(snaps), err)
	}
	shed, recs := snaps[0].shed, snaps[0].recs
	if shed == 0 {
		t.Fatal("shed count not persisted")
	}

	// Restart with a deep queue and no throttle: the rest of the log
	// flows in, the shed stays charged, and the books still balance.
	addr, cancel, done, errs = startDaemonArgs(t, logPath, statePath)
	defer func() {
		cancel()
		<-done
	}()
	want := len(ces) - int(shed)
	if want < len(recs) {
		t.Fatalf("state carries %d records but only %d remain reachable", len(recs), want)
	}
	sum := waitForRecords(t, addr, want)
	if sum.Records != want {
		t.Fatalf("records = %d, want %d (= %d scanned - %d shed)", sum.Records, want, len(ces), shed)
	}
	if sum.Shed < int(shed) {
		t.Fatalf("restored shed = %d, want >= %d", sum.Shed, shed)
	}
	if sum.Offered != sum.Records+sum.Shed {
		t.Fatalf("books do not balance after restart: %+v", sum)
	}
	if !sum.Degraded {
		t.Fatal("engine not degraded despite shed records")
	}
	var fit struct {
		Windowed struct {
			Degraded bool `json:"degraded"`
		} `json:"windowed"`
	}
	httpGetJSON(t, "http://"+addr+"/v1/fit", &fit)
	if !fit.Windowed.Degraded {
		t.Fatal("windowed FIT hides the shed records")
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDaemonKillUnderBacklogDifferential: SIGKILL the real binary while
// a throttled drainer holds a deep backlog, so the surviving state file
// is whatever the async checkpoint writer last managed to land — taken
// by Freeze mid-backlog. Restarting over it must still converge to the
// exact batch answer: the frozen snapshot (engine records + queued
// records) was prefix-consistent with the scanner checkpoint.
func TestDaemonKillUnderBacklogDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the astrad binary")
	}
	full, ces := testLog(t)
	wantFaults := mustCluster(t, ces)

	dir := t.TempDir()
	bin := filepath.Join(dir, "astrad")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")
	if err := os.WriteFile(logPath, full, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-log", logPath, "-state", statePath, "-listen", "127.0.0.1:0",
		"-dedup-window", fmt.Sprint(testDedup), "-reorder-window", testReorder.String(),
		"-poll", "1ms", "-checkpoint-every", "20ms",
		"-drain-batch", "16", "-drain-interval", "2ms")
	errs := &syncBuf{}
	cmd.Stderr = errs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for at least one async checkpoint while the backlog drains.
	deadline := time.Now().Add(20 * time.Second)
	for !strings.Contains(errs.String(), "msg=checkpoint") {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint before kill; stderr:\n%s", errs.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("no state file survived the kill: %v", err)
	}

	// Restart in-process over the survivor: exact convergence, nothing
	// shed (the queue was deep), nothing lost or duplicated.
	addr, cancel, done, _ := startDaemonArgs(t, logPath, statePath)
	defer func() {
		cancel()
		<-done
	}()
	sum := waitForRecords(t, addr, len(ces))
	if sum.Records != len(ces) {
		t.Fatalf("records = %d, want %d", sum.Records, len(ces))
	}
	if sum.Shed != 0 {
		t.Fatalf("deep queue shed %d records", sum.Shed)
	}
	if sum.Faults != len(wantFaults) {
		t.Fatalf("faults = %d, want batch %d", sum.Faults, len(wantFaults))
	}
	var h healthBody
	httpGetJSON(t, "http://"+addr+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthz after convergence = %q, want ok", h.Status)
	}
}
