// Per-site supervision: each site's scanner -> queue -> drainer pipeline
// runs as one restartable unit under internal/supervise. A panic or
// ingest error tears down only that site's incarnation; the supervisor
// backs off and restarts it from the site's last checkpoint section,
// and a site that exhausts its restart budget is quarantined — its
// engine keeps serving the last-good answers and its section keeps
// riding along in every checkpoint, while the other sites ingest on.
// The paper's operational lesson, applied to the collector itself: the
// monitoring plane must degrade per-fault-domain, not fleet-wide.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/syslog"
)

var _ serve.Source = (*siteDaemon)(nil)

// health adapts the site's supervision ladder for the HTTP layer. Before
// the supervisor has spawned the unit the site reports running — the
// startup window is not a fault.
func (s *siteDaemon) health() serve.SiteHealth {
	u := s.unit.Load()
	if u == nil {
		return serve.SiteHealth{State: serve.SiteRunning}
	}
	h := u.Health()
	return serve.SiteHealth{
		State:          h.State,
		Restarts:       h.Restarts,
		LastError:      h.LastError,
		RetryInSeconds: h.RetryInSeconds,
	}
}

// buildPipeline constructs one engine+queue incarnation primed with a
// restored snapshot. Every shed record is charged to the engine's
// degraded accounting: offered == ingested + shed, and every analysis
// that undercounts says so.
func (d *daemon) buildPipeline(snap siteSnapshot) (*stream.Sharded, *overload.Queue[mce.CERecord]) {
	eng := stream.NewSharded(stream.ShardedConfig{
		Partitions: d.cfg.partitions,
		Engine: stream.Config{
			Cluster:     core.ClusterConfig{Parallelism: d.cfg.workers},
			Window:      d.cfg.window,
			DIMMs:       d.cfg.dimms,
			Parallelism: d.cfg.workers,
		},
	})
	q := overload.NewQueue[mce.CERecord](overload.Config{
		Capacity: d.cfg.queueDepth,
		High:     d.cfg.queueHigh,
		Low:      d.cfg.queueLow,
		Policy:   d.cfg.shedPolicy,
		OnShed:   func(n int) { eng.NoteShed(n) },
	})
	eng.IngestBatch(snap.recs)
	if snap.shed > 0 {
		eng.NoteShed(int(snap.shed))
	}
	return eng, q
}

// rebuild replaces the site's pipeline with a fresh incarnation restored
// from snap, publishing the engine and queue atomically for the HTTP
// readers.
func (d *daemon) rebuild(s *siteDaemon, snap siteSnapshot) (*stream.Sharded, *overload.Queue[mce.CERecord]) {
	eng, q := d.buildPipeline(snap)
	s.eng.Store(eng)
	s.q.Store(q)
	return eng, q
}

// runSite is one supervised incarnation of a site's pipeline. The first
// run adopts the startup-built engine and queue (restored from the state
// ladder); every restart rebuilds both from the site's last in-memory
// checkpoint section, so a crash costs at most the records scanned since
// that section was captured — and those are re-scanned from the log,
// because the section's checkpoint is the resume point. Opening the log
// happens inside the unit: a missing or unreadable log is a restartable
// fault (the file may appear later), not a fatal one.
func (d *daemon) runSite(ctx context.Context, s *siteDaemon) error {
	eng, q, cp := s.engine(), s.queue(), s.resumeCP
	if !s.primed.CompareAndSwap(true, false) {
		sec := *s.section.Load()
		pcp, shed, recs, alarms, rest, err := parseSectionV4(sec, s.id, 0)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("astrad: site %s: %d trailing bytes in section", s.id, len(rest))
		}
		if err != nil {
			// The section was authored by this process, so this is a bug,
			// not an I/O fault — but a cold restart beats no restart.
			d.log.Warn("site section unreadable; rebuilding from scratch", "site", s.id, "err", err)
			pcp, shed, recs, alarms = syslog.Checkpoint{}, 0, nil, nil
		}
		s.alarms.replace(alarms)
		eng, q = d.rebuild(s, siteSnapshot{id: s.id, cp: pcp, shed: shed, recs: recs})
		cp = pcp
		d.log.Info("site pipeline rebuilt", "site", s.id, "records", len(recs), "offset", cp.Offset)
	}

	f, err := os.Open(s.logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() < cp.Offset {
		// The log shrank beneath the checkpoint (rotation/truncation while
		// down): the saved state describes bytes that no longer exist.
		d.log.Warn("log shorter than checkpoint; starting fresh",
			"site", s.id, "size", fi.Size(), "offset", cp.Offset)
		// A fresh log means the ledger's history is no longer tied to the
		// records that produced it; drop it with the engine state.
		s.alarms.replace(nil)
		eng, q = d.rebuild(s, siteSnapshot{id: s.id})
		cp = syslog.Checkpoint{}
		if sec, err := marshalSiteSectionV4(cp, 0, nil, nil); err == nil {
			s.section.Store(&sec)
		}
	}
	if _, err := f.Seek(cp.Offset, io.SeekStart); err != nil {
		return err
	}

	// The drainer is part of the unit: a panic in the engine's ingest
	// path must fail the whole incarnation, not strand the tail behind a
	// queue nobody drains.
	tailCtx, cancelTail := context.WithCancel(ctx)
	defer cancelTail()
	drainErr := make(chan error, 1)
	go func() {
		derr := d.drainCaptured(q, eng)
		drainErr <- derr
		if derr != nil {
			cancelTail()
		}
	}()

	fcp, ok, ingErr := d.ingest(tailCtx, s, q, f, cp)
	q.Close()
	derr := <-drainErr
	switch {
	case ingErr != nil:
		return fmt.Errorf("site %s: ingest: %w", s.id, ingErr)
	case derr != nil:
		return fmt.Errorf("site %s: drain: %w", s.id, derr)
	}
	// Clean stop (shutdown): the queue has fully drained into the engine,
	// so capture the final consistent section for the last state write —
	// unless the resume offset is untranslatable (stopped mid-rotation),
	// in which case the previous section remains the honest resume point.
	if d.cfg.statePath != "" && ok {
		if err := d.snapshotSection(s, fcp); err != nil {
			d.log.Warn("final section capture failed", "site", s.id, "err", err)
		}
	}
	return nil
}

// drainCaptured runs the drain loop with panic capture, so an engine
// bug surfaces as a supervised unit failure.
func (d *daemon) drainCaptured(q *overload.Queue[mce.CERecord], eng *stream.Sharded) (err error) {
	defer parallel.Recover(&err)
	d.drain(q, eng)
	return nil
}

// superviseSites spawns every site's pipeline under one supervisor and
// publishes each unit for the HTTP health hooks.
func (d *daemon) superviseSites(ctx context.Context) *supervise.Supervisor {
	sup := supervise.New(supervise.Config{
		BackoffBase: d.cfg.restartBackoff,
		BackoffMax:  d.cfg.restartBackoffMax,
		Budget:      d.cfg.restartBudget,
		ResetAfter:  d.cfg.restartReset,
		OnTransition: func(tr supervise.Transition) {
			switch tr.To {
			case supervise.StateBackoff:
				d.log.Warn("site pipeline failed; restarting", "site", tr.Unit, "err", tr.Err,
					"delay", tr.Delay, "restarts", tr.Restarts)
			case supervise.StateQuarantined:
				d.log.Error("site pipeline quarantined", "site", tr.Unit, "err", tr.Err,
					"restarts", tr.Restarts)
			case supervise.StateRunning:
				if tr.Restarts > 0 {
					d.log.Info("site pipeline restarted", "site", tr.Unit, "restarts", tr.Restarts)
				}
			}
		},
	})
	for _, s := range d.sites {
		s := s
		u := sup.Go(ctx, s.id, func(uctx context.Context) error { return d.runSite(uctx, s) })
		s.unit.Store(u)
	}
	return sup
}
