package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

const (
	testDedup   = 64
	testReorder = 5 * time.Minute
)

var (
	logOnce  sync.Once
	logBytes []byte
	logCEs   []mce.CERecord
	logErr   error
)

// testLog renders a small dataset's syslog once, with a far-future HET
// sentinel appended so the reorder window releases every CE before it —
// the expected engine contents are then exactly the batch scan's CEs.
func testLog(t *testing.T) ([]byte, []mce.CERecord) {
	t.Helper()
	logOnce.Do(func() {
		cfg := dataset.DefaultConfig(61)
		cfg.Nodes = 48
		ds, err := dataset.Build(context.Background(), cfg)
		if err != nil {
			logErr = err
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteSyslog(&buf, 50); err != nil {
			logErr = err
			return
		}
		var maxT time.Time
		for _, r := range ds.CERecords {
			if r.Time.After(maxT) {
				maxT = r.Time
			}
		}
		sentinel := het.Record{
			Time:     maxT.Add(testReorder + time.Minute),
			Node:     ds.CERecords[0].Node,
			Type:     het.UncorrectableECC,
			Severity: het.SeverityNonRecoverable,
		}
		buf.WriteString(syslog.FormatHET(sentinel))
		buf.WriteByte('\n')
		logBytes = buf.Bytes()

		pol := dataset.IngestPolicy{DedupWindow: testDedup, ReorderWindow: testReorder, MaxMalformedFrac: -1}
		logCEs, _, _, _, logErr = dataset.ReadSyslogPolicy(bytes.NewReader(logBytes), pol)
	})
	if logErr != nil {
		t.Fatal(logErr)
	}
	return logBytes, logCEs
}

// syncBuf is a concurrency-safe buffer for the daemon's stderr.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRE = regexp.MustCompile(`msg=listening addr=([0-9.]+:[0-9]+)`)

// startDaemon launches run() in-process and waits for its listen address.
func startDaemon(t *testing.T, logPath, statePath string) (addr string, cancel context.CancelFunc, done chan int, errs *syncBuf) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	errs = &syncBuf{}
	done = make(chan int, 1)
	args := []string{
		"-log", logPath, "-state", statePath, "-listen", "127.0.0.1:0",
		"-dedup-window", fmt.Sprint(testDedup), "-reorder-window", testReorder.String(),
		"-poll", "1ms", "-checkpoint-every", "100ms",
		"-dimms", fmt.Sprint(48 * topology.SlotsPerNode),
	}
	go func() { done <- run(ctx, args, io.Discard, errs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(errs.String()); m != nil {
			return m[1], cancelCtx, done, errs
		}
		if time.Now().After(deadline) {
			cancelCtx()
			t.Fatalf("daemon never listened; stderr:\n%s", errs.String())
		}
		time.Sleep(time.Millisecond)
	}
}

func httpGetJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

// waitForRecords polls /v1/breakdown until the engine reports want
// records.
func waitForRecords(t *testing.T, addr string, want int) stream.Summary {
	t.Helper()
	// Generous: multi-site ingest under -race on a small box is easily
	// 10-20x slower than native (a single-core runner has been measured
	// needing ~150s); polling returns the moment the count is reached,
	// so a passing run never waits this long.
	deadline := time.Now().Add(300 * time.Second)
	var sum stream.Summary
	for {
		httpGetJSON(t, "http://"+addr+"/v1/breakdown", &sum)
		if sum.Records >= want {
			return sum
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine stuck at %d of %d records", sum.Records, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonKillRestartDifferential is the acceptance test: kill the
// daemon mid-stream, append more log, restart it over the same state
// file, and the final fault population must be exactly what the batch
// pipeline computes over the whole log — nothing lost, nothing
// duplicated, reorder buffer included.
func TestDaemonKillRestartDifferential(t *testing.T) {
	full, ces := testLog(t)
	wantFaults := mustCluster(t, ces)
	wantBreak := core.BreakdownByMode(ces, wantFaults)

	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	statePath := filepath.Join(dir, "astrad.state")

	// Phase 1: daemon over roughly the first half, cut at a line boundary.
	cut := bytes.LastIndexByte(full[:len(full)/2], '\n') + 1
	if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done, errs := startDaemon(t, logPath, statePath)
	var h struct {
		Records int `json:"records"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Records == 0 {
		if code := httpGetJSON(t, "http://"+addr+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("no records ingested in phase 1")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // SIGTERM equivalent: context cancellation
	if code := <-done; code != 0 {
		t.Fatalf("phase 1 exit = %d; stderr:\n%s", code, errs.String())
	}
	if !strings.Contains(errs.String(), "msg=checkpoint") {
		t.Fatalf("phase 1 never checkpointed; stderr:\n%s", errs.String())
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("no state file after shutdown: %v", err)
	}

	// Append the rest and restart over the same state.
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr, cancel, done, errs = startDaemon(t, logPath, statePath)
	defer func() {
		cancel()
		<-done
	}()
	sum := waitForRecords(t, addr, len(ces))
	if sum.Records != len(ces) {
		t.Fatalf("records = %d, want %d (lost or duplicated input)", sum.Records, len(ces))
	}
	if sum.Faults != len(wantFaults) {
		t.Fatalf("faults = %d, want %d", sum.Faults, len(wantFaults))
	}
	if sum.FaultsByMode != wantBreak.FaultsByMode {
		t.Fatalf("FaultsByMode = %v, want %v", sum.FaultsByMode, wantBreak.FaultsByMode)
	}
	if sum.ErrorsByMode != wantBreak.ErrorsByMode {
		t.Fatalf("ErrorsByMode = %v, want %v", sum.ErrorsByMode, wantBreak.ErrorsByMode)
	}
	var faults struct {
		Count int `json:"count"`
	}
	httpGetJSON(t, "http://"+addr+"/v1/faults", &faults)
	if faults.Count != len(wantFaults) {
		t.Fatalf("/v1/faults count = %d, want %d", faults.Count, len(wantFaults))
	}
	var fit struct {
		Overall core.FaultRates `json:"overall"`
	}
	httpGetJSON(t, "http://"+addr+"/v1/fit", &fit)
	if fit.Overall.Degraded {
		t.Fatal("overall FIT degraded after full ingest")
	}
}

func mustCluster(t *testing.T, ces []mce.CERecord) []core.Fault {
	t.Helper()
	faults, err := core.Cluster(context.Background(), ces, core.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	return faults
}

// TestDaemonSustainedIngest checks /healthz and /metrics answer while the
// log is growing under the scanner.
func TestDaemonSustainedIngest(t *testing.T) {
	full, _ := testLog(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "syslog.log")
	if err := os.WriteFile(logPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done, errs := startDaemon(t, logPath, filepath.Join(dir, "state"))
	defer func() {
		cancel()
		if code := <-done; code != 0 {
			t.Errorf("exit = %d; stderr:\n%s", code, errs.String())
		}
	}()

	// Append in slices while hammering the endpoints.
	step := len(full) / 20
	for off := 0; off < len(full); off += step {
		end := off + step
		if end > len(full) {
			end = len(full)
		}
		f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(full[off:end]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if code := httpGetJSON(t, "http://"+addr+"/healthz", nil); code != http.StatusOK {
			t.Fatalf("healthz = %d during ingest", code)
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics = %d during ingest", resp.StatusCode)
		}
		if !bytes.Contains(body, []byte("astrad_stream_records_total")) {
			t.Fatal("metrics exposition missing engine series")
		}
	}
}

// TestStateRoundTrip pins the daemon state file format.
func TestStateRoundTrip(t *testing.T) {
	in, ces := testLog(t)
	sc := syslog.NewScannerConfig(bytes.NewReader(in), syslog.ScanConfig{DedupWindow: testDedup, ReorderWindow: testReorder})
	for i := 0; i < 25; i++ {
		if !sc.Scan() {
			t.Fatal("fixture too short")
		}
	}
	cp := sc.Checkpoint()
	recs := ces[:10]

	data, err := marshalState(cp, 7, recs)
	if err != nil {
		t.Fatal(err)
	}
	cp2, shed2, recs2, err := unmarshalState(data)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Offset != cp.Offset || cp2.Buffered() != cp.Buffered() {
		t.Fatalf("checkpoint round trip: offset %d/%d buffered %d/%d",
			cp2.Offset, cp.Offset, cp2.Buffered(), cp.Buffered())
	}
	if shed2 != 7 {
		t.Fatalf("shed round trip: %d, want 7", shed2)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("records round trip: %d, want %d", len(recs2), len(recs))
	}
	for i := range recs {
		if recs2[i] != recs[i] {
			t.Fatalf("record %d diverges after round trip", i)
		}
	}
	data2, err := marshalState(cp2, shed2, recs2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("state marshal not deterministic through a round trip")
	}

	for name, corrupt := range map[string][]byte{
		"empty":     nil,
		"truncated": data[:len(data)-3],
		"header":    []byte("nope\n"),
		"shed":      bytes.Replace(data, []byte("\nshed 7\n"), []byte("\nshed x\n"), 1),
	} {
		if _, _, _, err := unmarshalState(corrupt); err == nil {
			t.Errorf("%s: corrupted state accepted", name)
		}
	}

	// A v1 state file (no shed line) must still load, with shed = 0: a
	// daemon upgraded in place keeps its checkpoint.
	v1 := bytes.Replace(data, []byte(stateMagic), []byte(stateMagicV1), 1)
	v1 = bytes.Replace(v1, []byte("\nshed 7\n"), []byte("\n"), 1)
	cpV1, shedV1, recsV1, err := unmarshalState(v1)
	if err != nil {
		t.Fatalf("v1 state rejected: %v", err)
	}
	if shedV1 != 0 || cpV1.Offset != cp.Offset || len(recsV1) != len(recs) {
		t.Fatalf("v1 state round trip: shed=%d offset=%d records=%d", shedV1, cpV1.Offset, len(recsV1))
	}
}

// TestDaemonSIGTERMBinary is the end-to-end shutdown test against the
// real binary: SIGTERM mid-serve must drain, checkpoint, and exit 0.
func TestDaemonSIGTERMBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the astrad binary")
	}
	full, _ := testLog(t)
	dir := t.TempDir()
	bin := filepath.Join(dir, "astrad")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	logPath := filepath.Join(dir, "syslog.log")
	if err := os.WriteFile(logPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "astrad.state")

	cmd := exec.Command(bin,
		"-log", logPath, "-state", statePath, "-listen", "127.0.0.1:0",
		"-poll", "1ms", "-checkpoint-every", "100ms")
	errs := &syncBuf{}
	cmd.Stderr = errs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	deadline := time.Now().Add(20 * time.Second)
	for addr == "" {
		if m := addrRE.FindStringSubmatch(errs.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stderr:\n%s", errs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := httpGetJSON(t, "http://"+addr+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, errs.String())
	}
	out := errs.String()
	if !strings.Contains(out, "msg=\"shutting down\"") || !strings.Contains(out, "msg=stopped") {
		t.Fatalf("shutdown not logged; stderr:\n%s", out)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("no state file after SIGTERM: %v", err)
	}
}
