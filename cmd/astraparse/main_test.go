package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestWriteDUECSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "due.csv")
	dues := []mce.DUERecord{
		{
			Time:  simtime.HETStart.Add(time.Hour),
			Node:  topology.NewNodeID(1, 2, 3),
			Addr:  0x1000,
			Cause: faultmodel.CauseMachineCheck,
			Fatal: true,
		},
	}
	if err := writeDUECSV(path, dues); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"timestamp,node,cause,addr,fatal", "astra-r01c02n3", "uncorrectableMachineCheckException", "0x1000", ",1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DUE CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHETCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "het.csv")
	recs := []het.Record{
		{
			Time:     simtime.HETStart.Add(2 * time.Hour),
			Node:     topology.NewNodeID(0, 0, 1),
			Type:     het.UCGoingHigh,
			Severity: het.SeverityWarning,
		},
	}
	if err := writeHETCSV(path, recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"timestamp,node,event,severity,addr", "ucGoingHigh", "WARNING"} {
		if !strings.Contains(out, want) {
			t.Errorf("HET CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSVUnwritablePath(t *testing.T) {
	if err := writeDUECSV(filepath.Join(t.TempDir(), "missing", "x.csv"), nil); err == nil {
		t.Error("unwritable path accepted")
	}
	if err := writeHETCSV(filepath.Join(t.TempDir(), "missing", "x.csv"), nil); err == nil {
		t.Error("unwritable path accepted")
	}
}
