package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestWriteDUECSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "due.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	dues := []mce.DUERecord{
		{
			Time:  simtime.HETStart.Add(time.Hour),
			Node:  topology.NewNodeID(1, 2, 3),
			Addr:  0x1000,
			Cause: faultmodel.CauseMachineCheck,
			Fatal: true,
		},
	}
	if err := writeDUECSV(f, dues); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"timestamp,node,cause,addr,fatal", "astra-r01c02n3", "uncorrectableMachineCheckException", "0x1000", ",1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DUE CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHETCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "het.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []het.Record{
		{
			Time:     simtime.HETStart.Add(2 * time.Hour),
			Node:     topology.NewNodeID(0, 0, 1),
			Type:     het.UCGoingHigh,
			Severity: het.SeverityWarning,
		},
	}
	if err := writeHETCSV(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"timestamp,node,event,severity,addr", "ucGoingHigh", "WARNING"} {
		if !strings.Contains(out, want) {
			t.Errorf("HET CSV missing %q:\n%s", want, out)
		}
	}
}

// failWriter rejects every write, standing in for a full disk now that
// the CSV emitters write through io.Writer (path handling moved to the
// atomic-write layer).
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, os.ErrPermission }

func TestWriteCSVFailingWriter(t *testing.T) {
	dues := []mce.DUERecord{{Node: topology.NewNodeID(0, 0, 1)}}
	if err := writeDUECSV(failWriter{}, dues); err == nil {
		t.Error("DUE CSV write error swallowed")
	}
	recs := []het.Record{{Node: topology.NewNodeID(0, 0, 1)}}
	if err := writeHETCSV(failWriter{}, recs); err == nil {
		t.Error("HET CSV write error swallowed")
	}
}
