package main

import (
	"context"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/corrupt"
	"repro/internal/dataset"
)

var (
	cleanLogOnce sync.Once
	cleanLog     []byte
	cleanLogErr  error
)

// writeTestSyslog renders a small dataset's syslog once (Build dominates
// test time, especially under -race), optionally corrupts a copy, and
// returns the log path.
func writeTestSyslog(t *testing.T, cfg *corrupt.Config) string {
	t.Helper()
	cleanLogOnce.Do(func() {
		dcfg := dataset.DefaultConfig(43)
		dcfg.Nodes = 48
		ds, err := dataset.Build(context.Background(), dcfg)
		if err != nil {
			cleanLogErr = err
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteSyslog(&buf, 20); err != nil {
			cleanLogErr = err
			return
		}
		cleanLog = buf.Bytes()
	})
	if cleanLogErr != nil {
		t.Fatal(cleanLogErr)
	}
	data := cleanLog
	if cfg != nil {
		var dirty bytes.Buffer
		if _, err := corrupt.New(*cfg).Process(bytes.NewReader(data), &dirty); err != nil {
			t.Fatal(err)
		}
		data = dirty.Bytes()
	}
	path := filepath.Join(t.TempDir(), "syslog.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanLog(t *testing.T) {
	log := writeTestSyslog(t, nil)
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-syslog", log, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, f := range []string{"ce-telemetry.csv", "due-telemetry.csv", "het-events.csv"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
	if !strings.Contains(stdout.String(), "ingest health:") {
		t.Errorf("no ingest health line in output:\n%s", stdout.String())
	}
}

func TestRunCorruptedLogDiagnostics(t *testing.T) {
	cfg := corrupt.Uniform(3, 0.02)
	log := writeTestSyslog(t, &cfg)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-syslog", log, "-out", t.TempDir(),
		"-dedup-window", "32", "-reorder-window", "5m",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// Per-category diagnostics, not just one malformed total.
	got := stdout.String()
	for _, want := range []string{"truncated", "garbage", "duplicated", "reordered"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "truncated 0,") && strings.Contains(got, "garbage 0,") {
		t.Errorf("2%% corruption reported zero truncated AND zero garbage:\n%s", got)
	}
}

func TestRunStrictFailsOnCorruption(t *testing.T) {
	cfg := corrupt.Config{Seed: 3, Truncate: 0.1}
	log := writeTestSyslog(t, &cfg)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-syslog", log, "-out", t.TempDir(), "-strict"}, &stdout, &stderr); code == 0 {
		t.Error("strict run on corrupted log exited 0")
	}
	if !strings.Contains(stderr.String(), "astraparse:") {
		t.Errorf("no error reported on stderr: %q", stderr.String())
	}
}

func TestRunStrictPassesOnCleanLog(t *testing.T) {
	log := writeTestSyslog(t, nil)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-syslog", log, "-out", t.TempDir(), "-strict"}, &stdout, &stderr); code != 0 {
		t.Errorf("strict run on clean log exited %d: %s", code, stderr.String())
	}
}

func TestRunMalformedBudget(t *testing.T) {
	cfg := corrupt.Config{Seed: 3, Truncate: 0.1}
	log := writeTestSyslog(t, &cfg)

	var stdout, stderr bytes.Buffer
	out := t.TempDir()
	code := run(context.Background(), []string{"-syslog", log, "-out", out, "-max-malformed", "0.01"}, &stdout, &stderr)
	if code == 0 {
		t.Error("10% truncation passed a 1% budget")
	}
	// Salvage is still written before the non-zero exit.
	if _, err := os.Stat(filepath.Join(out, "ce-telemetry.csv")); err != nil {
		t.Errorf("budget failure wrote no salvage: %v", err)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-syslog", log, "-out", t.TempDir(), "-max-malformed", "0.5"}, &stdout, &stderr); code != 0 {
		t.Errorf("10%% truncation failed a 50%% budget: exit %d, %s", code, stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing -syslog: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestRunEmitColfmt proves the full ETL loop through the columnar
// format: parse text -> emit records.col -> re-ingest the binary file
// and get the same CSVs the text parse produced, at several worker
// counts.
func TestRunEmitColfmt(t *testing.T) {
	log := writeTestSyslog(t, nil)
	csvOut := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-syslog", log, "-out", csvOut}, &stdout, &stderr); code != 0 {
		t.Fatalf("csv run: exit %d, stderr: %s", code, stderr.String())
	}

	colOut := t.TempDir()
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-syslog", log, "-out", colOut, "-emit", "colfmt", "-workers", "4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("colfmt run: exit %d, stderr: %s", code, stderr.String())
	}
	colPath := filepath.Join(colOut, "records.col")
	if _, err := os.Stat(colPath); err != nil {
		t.Fatalf("missing records.col: %v", err)
	}
	if _, err := os.Stat(filepath.Join(colOut, "ce-telemetry.csv")); err == nil {
		t.Error("-emit colfmt also wrote CSVs")
	}

	// Replay: feed records.col back in as the input; the CSVs must be
	// byte-identical to the ones parsed from text.
	replayOut := t.TempDir()
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-syslog", colPath, "-out", replayOut}, &stdout, &stderr); code != 0 {
		t.Fatalf("replay run: exit %d, stderr: %s", code, stderr.String())
	}
	for _, f := range []string{"ce-telemetry.csv", "due-telemetry.csv", "het-events.csv"} {
		want, err := os.ReadFile(filepath.Join(csvOut, f))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(replayOut, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s from columnar replay differs from text parse", f)
		}
	}

	// -emit both writes all four.
	bothOut := t.TempDir()
	if code := run(context.Background(), []string{"-syslog", log, "-out", bothOut, "-emit", "both"}, &stdout, &stderr); code != 0 {
		t.Fatalf("both run: exit %d, stderr: %s", code, stderr.String())
	}
	for _, f := range []string{"ce-telemetry.csv", "due-telemetry.csv", "het-events.csv", "records.col"} {
		if _, err := os.Stat(filepath.Join(bothOut, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}

	// Unknown format is a usage error.
	if code := run(context.Background(), []string{"-syslog", log, "-out", t.TempDir(), "-emit", "xml"}, &stdout, &stderr); code != 2 {
		t.Errorf("-emit xml: exit %d, want 2", code)
	}
}
