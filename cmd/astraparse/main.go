// Command astraparse is the ETL front end: it reads a raw merged syslog
// (as written by astragen or by the machine itself), validates and
// classifies every line, and emits typed CSV files — the "extract relevant
// reliability information from the various system logs" step of the
// paper's methodology (§1).
//
// Usage:
//
//	astraparse -syslog astra-data/astra-syslog.log -out ./parsed
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/het"
	"repro/internal/mce"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("astraparse: ")
	var (
		in  = flag.String("syslog", "", "input syslog path (required)")
		out = flag.String("out", "parsed", "output directory")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	ces, dues, hets, stats, err := dataset.ReadSyslog(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	cePath := filepath.Join(*out, "ce-telemetry.csv")
	cf, err := os.Create(cePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteCERecordsCSV(cf, ces); err != nil {
		log.Fatalf("writing %s: %v", cePath, err)
	}
	if err := cf.Close(); err != nil {
		log.Fatal(err)
	}

	duePath := filepath.Join(*out, "due-telemetry.csv")
	if err := writeDUECSV(duePath, dues); err != nil {
		log.Fatalf("writing %s: %v", duePath, err)
	}
	hetPath := filepath.Join(*out, "het-events.csv")
	if err := writeHETCSV(hetPath, hets); err != nil {
		log.Fatalf("writing %s: %v", hetPath, err)
	}

	fmt.Printf("scanned %d lines: %d CE, %d DUE, %d HET, %d other, %d malformed\n",
		stats.Lines, stats.CEs, stats.DUEs, stats.HETs, stats.Other, stats.Malformed)
	fmt.Printf("wrote %s, %s, %s\n", cePath, duePath, hetPath)
	if stats.Malformed > 0 {
		frac := float64(stats.Malformed) / float64(stats.Lines)
		fmt.Printf("warning: %.3f%% of lines were malformed and excluded\n", 100*frac)
	}
}

func writeDUECSV(path string, dues []mce.DUERecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"timestamp", "node", "cause", "addr", "fatal"}); err != nil {
		return err
	}
	for _, d := range dues {
		fatal := "0"
		if d.Fatal {
			fatal = "1"
		}
		rec := []string{
			d.Time.UTC().Format(time.RFC3339), d.Node.String(), d.Cause.String(),
			fmt.Sprintf("0x%x", uint64(d.Addr)), fatal,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeHETCSV(path string, hets []het.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"timestamp", "node", "event", "severity", "addr"}); err != nil {
		return err
	}
	for _, h := range hets {
		rec := []string{
			h.Time.UTC().Format(time.RFC3339), h.Node.String(),
			h.Type.String(), h.Severity.String(), fmt.Sprintf("0x%x", uint64(h.Addr)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
