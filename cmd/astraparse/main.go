// Command astraparse is the ETL front end: it reads a raw merged syslog
// (as written by astragen or by the machine itself), validates and
// classifies every line, and emits typed CSV files — the "extract relevant
// reliability information from the various system logs" step of the
// paper's methodology (§1).
//
// Real relay logs are dirty: truncated, duplicated, reordered, garbled.
// By default astraparse skips and counts malformed lines; -strict makes
// the first one fatal, -max-malformed bounds how dirty a log may be
// before the exit status is non-zero, and -dedup-window/-reorder-window
// enable relay-fault tolerance.
//
// Usage:
//
//	astraparse -syslog astra-data/astra-syslog.log -out ./parsed
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/atomicio"
	"repro/internal/colfmt"
	"repro/internal/dataset"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/syslog"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if code != 0 && ctx.Err() != nil {
		code = 130
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astraparse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in            = fs.String("syslog", "", "input syslog path (required)")
		out           = fs.String("out", "parsed", "output directory")
		strict        = fs.Bool("strict", false, "treat the first malformed record line as fatal")
		maxMalformed  = fs.Float64("max-malformed", -1, "exit non-zero when the malformed fraction of record lines exceeds this (negative disables)")
		dedupWindow   = fs.Int("dedup-window", 0, "suppress record lines identical to one of the last N (0 disables)")
		reorderWindow = fs.Duration("reorder-window", 0, "resequence records arriving up to this much late (0 disables)")
		workers       = fs.Int("workers", 0, "parse worker count (0 = all CPUs, 1 = serial; output is identical at any setting)")
		emit          = fs.String("emit", "csv", "output format: csv, colfmt (columnar binary replay), or both")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fs.Usage()
		return 2
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "astraparse: %v\n", err)
		return 1
	}
	defer f.Close()

	emitCSV := *emit == "csv" || *emit == "both"
	emitCol := *emit == "colfmt" || *emit == "both"
	if !emitCSV && !emitCol {
		fmt.Fprintf(stderr, "astraparse: unknown -emit format %q (want csv, colfmt or both)\n", *emit)
		return 2
	}

	pol := dataset.IngestPolicy{
		Strict:           *strict,
		DedupWindow:      *dedupWindow,
		ReorderWindow:    *reorderWindow,
		MaxMalformedFrac: *maxMalformed,
		Parallelism:      *workers,
	}
	// The scan aborts mid-file on SIGINT/SIGTERM: the input reader polls
	// ctx, so a cancelled parse surfaces as a read error and the salvage
	// logic below decides what is still worth writing. ReadRecords sniffs
	// the input, so a columnar replay file works here too.
	ces, dues, hets, rep, readErr := dataset.ReadRecords(&ctxReader{ctx: ctx, r: f}, pol)
	// On a budget violation the salvage is still written before the
	// non-zero exit; a strict failure aborts with nothing salvaged.
	if readErr != nil && (*strict || len(ces)+len(dues)+len(hets) == 0) {
		fmt.Fprintf(stderr, "astraparse: %v\n", readErr)
		return 1
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(stderr, "astraparse: %v\n", err)
		return 1
	}

	// Outputs land atomically (temp file + fsync + rename): a crash or
	// interrupt mid-write never leaves a truncated CSV at a final path.
	// The salvage of an interrupted parse is still written below with a
	// fresh context — the data already in memory is valid.
	wctx := context.WithoutCancel(ctx)
	var wrote []string
	writeOut := func(name string, render func(io.Writer) error) bool {
		path := filepath.Join(*out, name)
		if _, err := atomicio.WriteFile(wctx, atomicio.OS, path, render); err != nil {
			fmt.Fprintf(stderr, "astraparse: writing %s: %v\n", path, err)
			return false
		}
		wrote = append(wrote, path)
		return true
	}
	if emitCSV {
		ok := writeOut("ce-telemetry.csv", func(w io.Writer) error {
			return dataset.WriteCERecordsCSV(w, ces)
		}) && writeOut("due-telemetry.csv", func(w io.Writer) error {
			return writeDUECSV(w, dues)
		}) && writeOut("het-events.csv", func(w io.Writer) error {
			return writeHETCSV(w, hets)
		})
		if !ok {
			return 1
		}
	}
	if emitCol {
		if !writeOut("records.col", func(w io.Writer) error {
			return colfmt.Write(w, colfmt.Records{CEs: ces, DUEs: dues, HETs: hets})
		}) {
			return 1
		}
	}

	fmt.Fprintf(stdout, "scanned %d lines: %d CE, %d DUE, %d HET, %d other, %d malformed\n",
		rep.Lines, rep.CEs, rep.DUEs, rep.HETs, rep.Other, rep.Malformed)
	fmt.Fprintf(stdout, "ingest health: truncated %d, garbage %d, duplicated %d, reordered %d, dropped-out-of-order %d\n",
		rep.Truncated, rep.Garbage, rep.Duplicated, rep.Reordered, rep.DroppedOutOfOrder)
	fmt.Fprintf(stdout, "wrote %s\n", strings.Join(wrote, ", "))
	if rep.Malformed > 0 {
		fmt.Fprintf(stdout, "warning: %.3f%% of record lines were malformed and excluded\n", 100*rep.MalformedFrac)
	}
	if readErr != nil {
		fmt.Fprintf(stderr, "astraparse: %v\n", readErr)
		return 1
	}
	return 0
}

// ctxReader aborts a streaming read when ctx is cancelled, turning a
// SIGINT during a multi-gigabyte parse into an ordinary read error.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// writeDUECSV and writeHETCSV render rows through the append emitters into
// one reused buffer (no field needs CSV quoting), mirroring the CE path in
// internal/dataset.
func writeDUECSV(f io.Writer, dues []mce.DUERecord) error {
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.WriteString("timestamp,node,cause,addr,fatal\n"); err != nil {
		return err
	}
	var buf []byte
	for i := range dues {
		d := &dues[i]
		buf = syslog.AppendTimestamp(buf[:0], d.Time)
		buf = append(buf, ',')
		buf = d.Node.AppendString(buf)
		buf = append(buf, ',')
		buf = append(buf, d.Cause.String()...)
		buf = append(buf, ",0x"...)
		buf = strconv.AppendUint(buf, uint64(d.Addr), 16)
		if d.Fatal {
			buf = append(buf, ",1\n"...)
		} else {
			buf = append(buf, ",0\n"...)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeHETCSV(f io.Writer, hets []het.Record) error {
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.WriteString("timestamp,node,event,severity,addr\n"); err != nil {
		return err
	}
	var buf []byte
	for i := range hets {
		h := &hets[i]
		buf = syslog.AppendTimestamp(buf[:0], h.Time)
		buf = append(buf, ',')
		buf = h.Node.AppendString(buf)
		buf = append(buf, ',')
		buf = append(buf, h.Type.String()...)
		buf = append(buf, ',')
		buf = append(buf, h.Severity.String()...)
		buf = append(buf, ",0x"...)
		buf = strconv.AppendUint(buf, uint64(h.Addr), 16)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
