package main

import (
	"context"
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/corrupt"
	"repro/internal/dataset"
)

// writeStudySyslog renders a small dataset's syslog, optionally corrupted,
// and returns the dataset plus the log path.
func writeStudySyslog(t *testing.T, seed uint64, nodes int, cfg *corrupt.Config) (*dataset.Dataset, string) {
	t.Helper()
	dcfg := dataset.DefaultConfig(seed)
	dcfg.Nodes = nodes
	ds, err := dataset.Build(context.Background(), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 50); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if cfg != nil {
		var dirty bytes.Buffer
		if _, err := corrupt.New(*cfg).Process(bytes.NewReader(data), &dirty); err != nil {
			t.Fatal(err)
		}
		data = dirty.Bytes()
	}
	path := filepath.Join(t.TempDir(), "syslog.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return ds, path
}

func tolerantPolicy() dataset.IngestPolicy {
	return dataset.IngestPolicy{ReorderWindow: 2 * time.Minute, MaxMalformedFrac: -1}
}

// A clean, sorted log must round-trip through the hardened path untouched:
// same record counts as the in-memory dataset, no sanitizer repairs.
func TestBuildStudyCleanParity(t *testing.T) {
	ds, log := writeStudySyslog(t, 7, 64, nil)
	study, err := buildStudy(context.Background(), 7, 64, 0, log, tolerantPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(study.Dataset.CERecords), len(ds.CERecords); got != want {
		t.Errorf("CE records: got %d, want %d", got, want)
	}
	if got, want := len(study.Dataset.DUERecords), len(ds.DUERecords); got != want {
		t.Errorf("DUE records: got %d, want %d", got, want)
	}
	if got, want := len(study.Dataset.HETRecords), len(ds.HETRecords); got != want {
		t.Errorf("HET records: got %d, want %d", got, want)
	}
}

// A corrupted log must still build a study — salvaging most records and
// producing a non-empty fault set — rather than erroring or panicking.
func TestBuildStudyCorruptedSyslog(t *testing.T) {
	cfg := corrupt.Uniform(9, 0.02)
	ds, log := writeStudySyslog(t, 7, 64, &cfg)
	study, err := buildStudy(context.Background(), 7, 64, 0, log, tolerantPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if got, min := len(study.Dataset.CERecords), len(ds.CERecords)*9/10; got < min {
		t.Errorf("salvaged only %d of %d CE records, want >= %d", got, len(ds.CERecords), min)
	}
	if len(study.Faults) == 0 {
		t.Error("no faults clustered from salvaged records")
	}
	results, err := study.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results.Breakdown.Total == 0 {
		t.Error("analysis of salvaged records produced empty breakdown")
	}
}
