// Command astrareport runs the full evaluation — Table 1 and Figures 2-15
// — either over a freshly generated synthetic study or over a previously
// generated syslog (the ETL path). Figures can be selected individually.
//
// Usage:
//
//	astrareport -seed 1 -nodes 2592                  # full synthetic study
//	astrareport -nodes 432 -figures table1,fig4a
//	astrareport -from-syslog astra-data/astra-syslog.log -seed 1
//
// When analyzing an existing syslog, the environmental and inventory
// sections are reconstructed from -seed (they are deterministic), so the
// report is identical to the generate-and-analyze path for matching flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	astra "repro"
	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/topology"
)

// sections maps figure names to renderers over a study and its results.
var sections = []struct {
	name   string
	render func(*astra.Study, *astra.Results) string
}{
	{"table1", func(s *astra.Study, r *astra.Results) string {
		return report.Table1(s.Dataset.Inventory, s.Options.Nodes)
	}},
	{"fig2", func(s *astra.Study, r *astra.Results) string {
		return report.Figure2(s.Dataset.Env, s.Options.Nodes, s.Options.Seed)
	}},
	{"fig3", func(s *astra.Study, r *astra.Results) string {
		return report.Figure3(s.Dataset.Inventory)
	}},
	{"fig4a", func(s *astra.Study, r *astra.Results) string { return report.Figure4a(r.Breakdown) }},
	{"fig4b", func(s *astra.Study, r *astra.Results) string { return report.Figure4b(r.ErrorsPerFault) }},
	{"fig5", func(s *astra.Study, r *astra.Results) string { return report.Figure5(r.PerNode, s.Options.Nodes) }},
	{"fig6", func(s *astra.Study, r *astra.Results) string { return report.Figure6(r.Structures) }},
	{"fig7", func(s *astra.Study, r *astra.Results) string { return report.Figure7(r.Structures) }},
	{"fig8", func(s *astra.Study, r *astra.Results) string { return report.Figure8(r.BitAddress) }},
	{"fig9", func(s *astra.Study, r *astra.Results) string { return report.Figure9(r.TempWindows) }},
	{"fig10", func(s *astra.Study, r *astra.Results) string { return report.Figure10(r.Positional) }},
	{"fig11", func(s *astra.Study, r *astra.Results) string { return report.Figure11(r.Positional) }},
	{"fig12", func(s *astra.Study, r *astra.Results) string { return report.Figure12(r.Positional) }},
	{"fig13", func(s *astra.Study, r *astra.Results) string { return report.Figure13(r.TempDeciles) }},
	{"fig14", func(s *astra.Study, r *astra.Results) string { return report.Figure14(r.Utilization) }},
	{"fig15", func(s *astra.Study, r *astra.Results) string { return report.Figure15(r.Uncorrectable) }},
	{"thermal", func(s *astra.Study, r *astra.Results) string {
		return report.Thermal(r.RegionTemps, r.RackTemps)
	}},
	{"survival", func(s *astra.Study, r *astra.Results) string {
		return report.Survival(s.Dataset.Inventory, s.Options.Nodes)
	}},
	{"rates", func(s *astra.Study, r *astra.Results) string { return report.FaultRates(r.FaultRates) }},
	{"precursors", func(s *astra.Study, r *astra.Results) string { return report.Precursors(r.Precursors) }},
	{"stability", func(s *astra.Study, r *astra.Results) string { return report.ModeStability(r.ModeStability) }},
	{"interarrivals", func(s *astra.Study, r *astra.Results) string { return report.Interarrivals(r.Interarrivals) }},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("astrareport: ")
	var (
		seed        = flag.Uint64("seed", 1, "random seed")
		nodes       = flag.Int("nodes", 432, "system size in nodes (full Astra is 2592)")
		figures     = flag.String("figures", "all", "comma-separated figure list (table1,fig2..fig15,thermal,survival) or `all`")
		fromSyslog  = flag.String("from-syslog", "", "analyze an existing syslog (or columnar records.col replay) instead of the built-in pipeline")
		dedupWindow = flag.Int("dedup-window", 0, "with -from-syslog, suppress record lines identical to one of the last N (0 disables)")
		reorderWin  = flag.Duration("reorder-window", 2*time.Minute, "with -from-syslog, resequence records arriving up to this much late (0 disables)")
		experiments = flag.Bool("experiments", false, "emit the paper-vs-measured comparison table (markdown) instead of figures")
		svgDir      = flag.String("svg", "", "also write SVG figures into this directory")
		workers     = flag.Int("workers", 0, "pipeline worker count: 0 uses GOMAXPROCS, 1 forces the serial path (report is byte-identical either way)")
	)
	flag.Parse()
	if *nodes < 1 || *nodes > topology.Nodes {
		log.Fatalf("-nodes must be in [1, %d]", topology.Nodes)
	}

	// SIGINT/SIGTERM cancel the pipeline between (and inside) stages.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	study, err := buildStudy(ctx, *seed, *nodes, *workers, *fromSyslog, dataset.IngestPolicy{
		DedupWindow:      *dedupWindow,
		ReorderWindow:    *reorderWin,
		MaxMalformedFrac: -1,
		Parallelism:      *workers,
	})
	if err != nil {
		fail(err)
	}
	results, err := study.Analyze(ctx)
	if err != nil {
		fail(err)
	}

	if *experiments {
		rows := paper.Compare(study, results)
		fmt.Print(paper.Markdown(rows))
		if paper.PassCount(rows) < len(rows) {
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *figures != "all" {
		for _, name := range strings.Split(*figures, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	printed := 0
	for _, sec := range sections {
		if len(want) > 0 && !want[sec.name] {
			continue
		}
		fmt.Println(sec.render(study, results))
		printed++
	}
	if printed == 0 {
		log.Fatalf("no figures matched %q", *figures)
	}
	if *svgDir != "" {
		if err := writeSVGs(ctx, *svgDir, study, results); err != nil {
			fail(err)
		}
	}
	fmt.Printf("faults: %d; CE records: %d; EDAC loss: %.2f%%\n",
		len(study.Faults), len(study.Dataset.CERecords), 100*study.Dataset.EdacStats.LossFraction())
}

// fail reports a pipeline error, exiting 130 on interrupt.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		log.Println("interrupted")
		os.Exit(130)
	}
	log.Fatal(err)
}

// writeSVGs renders the figures as SVG files under dir, each through an
// atomic temp-file + rename so a crash never leaves a truncated SVG at a
// final path.
func writeSVGs(ctx context.Context, dir string, study *astra.Study, r *astra.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svgs := report.SVGFigures(report.SVGInputs{
		Breakdown:   &r.Breakdown,
		PerNode:     &r.PerNode,
		Structures:  &r.Structures,
		BitAddress:  &r.BitAddress,
		TempWindows: r.TempWindows,
		Positional:  &r.Positional,
		TempDeciles: r.TempDeciles,
		Inventory:   study.Dataset.Inventory,
	})
	names := make([]string, 0, len(svgs))
	for name := range svgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name+".svg")
		svg := svgs[name]
		if _, err := atomicio.WriteFile(ctx, atomicio.OS, path, func(w io.Writer) error {
			_, werr := io.WriteString(w, svg)
			return werr
		}); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d SVG figures to %s\n", len(svgs), dir)
	return nil
}

// buildStudy either runs the synthetic pipeline or replaces its CE/DUE/HET
// streams with records read from an existing file — merged syslog text or
// a columnar records.col replay, sniffed automatically. External logs are
// never trusted: text passes through the tolerant ingest policy (columnar
// files are checksummed instead), any records still out of order afterwards
// are repaired by core.SanitizeRecords, and an ingest-health section is
// printed so the reader can judge how dirty the input was.
func buildStudy(ctx context.Context, seed uint64, nodes, workers int, fromSyslog string, pol dataset.IngestPolicy) (*astra.Study, error) {
	study, err := astra.Run(ctx, astra.Options{Seed: seed, Nodes: nodes, Parallelism: workers})
	if err != nil {
		return nil, err
	}
	if fromSyslog == "" {
		return study, nil
	}
	f, err := os.Open(fromSyslog)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ces, dues, hets, rep, err := dataset.ReadRecords(f, pol)
	if err != nil {
		return nil, err
	}
	// Repair ordering only when the log is still unsorted after the reorder
	// window — a clean, sorted log must round-trip untouched (the generator
	// legitimately emits byte-identical duplicate CE lines, which a blanket
	// dedup would strip).
	sanitized, san := core.SanitizeRecords(ces)
	if san.WasUnsorted {
		ces = sanitized
	} else {
		san = core.SanitizeReport{In: san.In, Out: san.In}
	}
	fmt.Printf("parsed %d lines (%d malformed) from %s\n", rep.Lines, rep.Malformed, fromSyslog)
	fmt.Println(report.IngestHealth(rep, san))
	study.Dataset.CERecords = ces
	study.Dataset.DUERecords = dues
	study.Dataset.HETRecords = hets
	faults, err := core.Cluster(ctx, ces, core.DefaultClusterConfig())
	if err != nil {
		return nil, err
	}
	study.Faults = faults
	return study, nil
}
