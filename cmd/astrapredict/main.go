// Command astrapredict is the failure-prediction workbench: it builds a
// ground-truth evaluation fleet (seeded fault-model generation), trains
// and persists a logistic-regression model over streamed bank features,
// sweeps alarm thresholds against DUE labels, and simulates the
// operational payoff of predict-then-retire against the paper's
// reactive page-retirement policy.
//
// Usage:
//
//	astrapredict -mode eval   [-seed 8] [-model DIR] [-svg out.svg] [-json]
//	astrapredict -mode train  [-seed 8] -out DIR [-json]
//	astrapredict -mode payoff [-seed 8] [-model DIR] [-threshold 0.625] [-json]
//
// All modes run over predict.DefaultScenario(seed): a generated fleet
// with escalation-prone faults and EDAC-truncated observable telemetry,
// labeled from the ground-truth DUE stream. -model points eval/payoff
// at a trained model directory (default: the built-in rule ladder).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/predict"
	"repro/internal/svgplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("astrapredict: ")
	var (
		mode      = flag.String("mode", "eval", "mode: eval, train or payoff")
		seed      = flag.Uint64("seed", 8, "scenario seed (generation, training and retirement randomness)")
		modelDir  = flag.String("model", "", "eval/payoff: trained model directory (default: built-in rule ladder)")
		outDir    = flag.String("out", "", "train: output model directory (required)")
		svgPath   = flag.String("svg", "", "eval: write a precision/recall/lead-time SVG here")
		threshold = flag.Float64("threshold", 0.625, "payoff: alarm threshold for the predictive arm")
		horizon   = flag.Duration("horizon", 0, "override the label/eval horizon (0 = scenario default)")
		asJSON    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sc := predict.DefaultScenario(*seed)
	if *horizon > 0 {
		sc.Eval.Horizon = *horizon
	}
	ds, err := dataset.Build(ctx, sc.Dataset)
	if err != nil {
		if ctx.Err() != nil {
			os.Exit(130)
		}
		log.Fatal(err)
	}
	dues := predict.Labels(ds.Pop)
	log.Printf("scenario seed=%d: %d nodes, %d CE records, %d DUEs on %d DIMMs",
		*seed, sc.Dataset.Nodes, len(ds.CERecords), len(dues), sc.Eval.TotalDIMMs)

	switch *mode {
	case "train":
		if *outDir == "" {
			log.Fatal("-mode train requires -out DIR")
		}
		runTrain(ctx, sc, ds, dues, *seed, *outDir, *asJSON)
	case "eval":
		p := loadPredictor(*modelDir)
		runEval(sc, ds, dues, p, *svgPath, *asJSON)
	case "payoff":
		p := loadPredictor(*modelDir)
		runPayoff(ds, p, *threshold, *seed, *asJSON)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// loadPredictor resolves -model: empty means the built-in rule ladder,
// anything else a SaveModel directory (manifest-verified).
func loadPredictor(dir string) predict.Predictor {
	if dir == "" {
		return predict.DefaultRuleLadder()
	}
	m, err := predict.LoadModel(nil, dir)
	if err != nil {
		log.Fatalf("load model: %v", err)
	}
	return m
}

func runTrain(ctx context.Context, sc predict.Scenario, ds *dataset.Dataset, dues []predict.DUE, seed uint64, outDir string, asJSON bool) {
	samples := predict.BuildSamples(ds.CERecords, dues, predict.SampleConfig{
		Horizon: sc.Eval.Horizon,
		Tracker: sc.Eval.Tracker,
	})
	m, err := predict.TrainLogReg(samples, predict.DefaultTrainConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	if err := predict.SaveModel(ctx, nil, outDir, m); err != nil {
		log.Fatal(err)
	}
	if asJSON {
		emitJSON(m)
		return
	}
	fmt.Printf("trained %s: %d samples (%d positive), %d iters, final loss %.4f\n",
		m.Name(), m.Samples, m.Positives, m.Iters, m.FinalLoss)
	fmt.Printf("saved to %s (manifest-fingerprinted)\n", outDir)
	fmt.Println("standardized weights (|w| = feature influence):")
	for i, name := range m.Names {
		fmt.Printf("  %-24s %+.4f\n", name, m.W[i])
	}
}

func runEval(sc predict.Scenario, ds *dataset.Dataset, dues []predict.DUE, p predict.Predictor, svgPath string, asJSON bool) {
	ev, err := predict.Evaluate(ds.CERecords, dues, p, sc.Eval)
	if err != nil {
		log.Fatal(err)
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(evalSVG(ev)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", svgPath)
	}
	if asJSON {
		emitJSON(ev)
		return
	}
	fmt.Printf("predictor %s, horizon %v, %d banks over %d records, %d/%d DIMMs reached a DUE\n",
		ev.Predictor, ev.Horizon, ev.Banks, ev.Records, ev.DIMMsDUE, ev.TotalDIMMs)
	fmt.Println("threshold  precision  recall     F1    alarms  leadP50")
	for _, pt := range ev.Points {
		fmt.Printf("   %5.2f     %6.3f   %6.3f  %6.3f   %5d   %s\n",
			pt.Threshold, pt.Precision, pt.Recall, pt.F1, pt.Alarmed, leadStr(pt.LeadP50))
	}
	if best := ev.BestAt(0.8); best != nil {
		fmt.Printf("best recall at precision>=0.8: threshold %.2f -> precision %.3f recall %.3f (median lead %s)\n",
			best.Threshold, best.Precision, best.Recall, leadStr(best.LeadP50))
	} else if best := ev.Best(); best != nil {
		fmt.Printf("no point reaches precision 0.8; best F1: threshold %.2f -> precision %.3f recall %.3f\n",
			best.Threshold, best.Precision, best.Recall)
	}
}

func leadStr(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fd", d.Hours()/24)
}

// evalSVG renders the threshold sweep (precision/recall/F1 lines) and
// the per-threshold median lead time (bars) as one self-contained SVG.
func evalSVG(ev *predict.Evaluation) string {
	labels := make([]string, len(ev.Points))
	prec := svgplot.Series{Name: "precision"}
	rec := svgplot.Series{Name: "recall"}
	f1 := svgplot.Series{Name: "F1"}
	leads := make([]float64, len(ev.Points))
	for i, pt := range ev.Points {
		labels[i] = fmt.Sprintf("%.2f", pt.Threshold)
		prec.Values = append(prec.Values, pt.Precision)
		rec.Values = append(rec.Values, pt.Recall)
		f1.Values = append(f1.Values, pt.F1)
		leads[i] = pt.LeadP50.Hours() / 24
	}
	var b strings.Builder
	b.WriteString(svgplot.Lines(
		fmt.Sprintf("Threshold sweep — %s (horizon %v)", ev.Predictor, ev.Horizon),
		"score", labels, []svgplot.Series{prec, rec, f1}, false))
	b.WriteString("\n")
	b.WriteString(svgplot.Bars("Median alarm lead time by threshold", "days", labels, leads))
	return b.String()
}

func runPayoff(ds *dataset.Dataset, p predict.Predictor, threshold float64, seed uint64, asJSON bool) {
	pay, err := predict.SimulatePayoff(ds.CERecords, ds.Pop, p, predict.PayoffConfig{
		Threshold: threshold,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		emitJSON(pay)
		return
	}
	fmt.Printf("payoff at threshold %.3f over %d ground-truth DUEs:\n", pay.Threshold, pay.Predictive.DUEsTotal)
	for _, arm := range []predict.PayoffArm{pay.Predictive, pay.Reactive} {
		fmt.Printf("  %-28s avoided %d/%d DUEs (%.0f%%, %d ECC-confirmed), retired %d units, %.1f MiB sacrificed",
			arm.Policy, arm.DUEsAvoided, arm.DUEsTotal, 100*arm.AvoidedFrac, arm.ECCConfirmed,
			arm.UnitsRetired, float64(arm.CapacityBytes)/(1<<20))
		if arm.CEsSuppressed > 0 {
			fmt.Printf(", %d CEs suppressed", arm.CEsSuppressed)
		}
		fmt.Println()
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
