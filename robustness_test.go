package astra

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/dataset"
)

// The differential robustness harness: the same study analyzed from a
// clean syslog and from the syslog corrupted at a combined rate p must
// agree within a quantified tolerance. This is the acceptance bar for the
// dirty-telemetry work — hardened ingest is only worth having if the
// figures it feeds stay stable under realistic log damage.

// parseVariant corrupts a rendered syslog at rate p (p = 0 passes it
// through untouched), re-ingests it with pol, and repairs any residual
// disorder, returning analysis-ready records.
type variant struct {
	breakdown core.ModeBreakdown
	rates     core.FaultRates
	perNode   core.PerNode
	nCEs      int
}

func parseVariant(t *testing.T, raw []byte, seed uint64, p float64, pol dataset.IngestPolicy) variant {
	t.Helper()
	var in io.Reader = bytes.NewReader(raw)
	if p > 0 {
		var dirty bytes.Buffer
		if _, err := corrupt.New(corrupt.Uniform(seed, p)).Process(bytes.NewReader(raw), &dirty); err != nil {
			t.Fatal(err)
		}
		in = &dirty
	}
	ces, _, _, _, err := dataset.ReadSyslogPolicy(in, pol)
	if err != nil {
		t.Fatal(err)
	}
	if fixed, rep := core.SanitizeRecords(ces); rep.WasUnsorted {
		ces = fixed
	}
	faults := mustCluster(ces, core.DefaultClusterConfig())
	return variant{
		breakdown: core.BreakdownByMode(ces, faults),
		rates:     core.AnalyzeFaultRates(faults, 80*8, core.StudyWindow()),
		perNode:   core.AnalyzePerNode(ces, faults, 80),
		nCEs:      len(ces),
	}
}

// modeFractions converts per-mode error counts to fractions of the total.
func modeFractions(b core.ModeBreakdown) []float64 {
	out := make([]float64, len(b.ErrorsByMode))
	if b.Total == 0 {
		return out
	}
	for m, n := range b.ErrorsByMode {
		out[m] = float64(n) / float64(b.Total)
	}
	return out
}

// TestDifferentialCorruption checks the headline tolerance: at a 1%
// combined corruption rate, fault-mode breakdown fractions and the
// FIT-per-DIMM rate stay within 10% relative error of the clean run
// (absolute 0.02 for modes below a 2% clean share, where relative error
// is noise-dominated).
func TestDifferentialCorruption(t *testing.T) {
	cfg := dataset.DefaultConfig(41)
	cfg.Nodes = 80
	ds, err := dataset.Build(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := ds.WriteSyslog(&raw, 100); err != nil {
		t.Fatal(err)
	}
	pol := dataset.IngestPolicy{ReorderWindow: 5 * time.Minute, MaxMalformedFrac: -1}

	clean := parseVariant(t, raw.Bytes(), 0, 0, pol)
	dirty := parseVariant(t, raw.Bytes(), 17, 0.01, pol)
	t.Logf("clean: %d CEs, FIT %.1f; dirty: %d CEs, FIT %.1f",
		clean.nCEs, clean.rates.Total, dirty.nCEs, dirty.rates.Total)

	if dirty.nCEs < clean.nCEs*95/100 {
		t.Fatalf("1%% corruption lost %d of %d CE records", clean.nCEs-dirty.nCEs, clean.nCEs)
	}
	cf, df := modeFractions(clean.breakdown), modeFractions(dirty.breakdown)
	for m := range cf {
		mode := core.FaultMode(m).String()
		switch diff := math.Abs(df[m] - cf[m]); {
		case cf[m] >= 0.02:
			if rel := diff / cf[m]; rel > 0.10 {
				t.Errorf("mode %s fraction drifted %.1f%% (clean %.4f, dirty %.4f)",
					mode, 100*rel, cf[m], df[m])
			}
		default:
			if diff > 0.02 {
				t.Errorf("minor mode %s fraction drifted by %.4f (clean %.4f, dirty %.4f)",
					mode, diff, cf[m], df[m])
			}
		}
	}
	if clean.rates.Total <= 0 {
		t.Fatal("clean FIT rate is zero; harness has no signal")
	}
	if rel := math.Abs(dirty.rates.Total-clean.rates.Total) / clean.rates.Total; rel > 0.10 {
		t.Errorf("FIT/DIMM drifted %.1f%% (clean %.1f, dirty %.1f)",
			100*rel, clean.rates.Total, dirty.rates.Total)
	}
	// Per-node concentration (the paper's headline skew) must also hold up.
	if rel := math.Abs(dirty.perNode.TopShare8-clean.perNode.TopShare8) / clean.perNode.TopShare8; rel > 0.10 {
		t.Errorf("top-8-node CE share drifted %.1f%% (clean %.3f, dirty %.3f)",
			100*rel, clean.perNode.TopShare8, dirty.perNode.TopShare8)
	}
	if rel := math.Abs(dirty.perNode.TopShare2Pct-clean.perNode.TopShare2Pct) / clean.perNode.TopShare2Pct; rel > 0.10 {
		t.Errorf("top-2%%-node CE share drifted %.1f%% (clean %.3f, dirty %.3f)",
			100*rel, clean.perNode.TopShare2Pct, dirty.perNode.TopShare2Pct)
	}
}

// TestAnalyzeSurvivesAnyCorruptionRate sweeps heavy corruption rates —
// up to every line mutated — and requires the entire analysis and report
// pipeline to complete without panicking, however little survives.
func TestAnalyzeSurvivesAnyCorruptionRate(t *testing.T) {
	cfg := dataset.DefaultConfig(43)
	cfg.Nodes = 48
	ds, err := dataset.Build(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := ds.WriteSyslog(&raw, 100); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.25, 1.0} {
		t.Run(fmt.Sprintf("p=%v", p), func(t *testing.T) {
			var dirty bytes.Buffer
			if _, err := corrupt.New(corrupt.Uniform(29, p)).Process(bytes.NewReader(raw.Bytes()), &dirty); err != nil {
				t.Fatal(err)
			}
			pol := dataset.IngestPolicy{
				DedupWindow:      32,
				ReorderWindow:    5 * time.Minute,
				MaxMalformedFrac: -1,
			}
			ces, dues, hets, rep, err := dataset.ReadSyslogPolicy(&dirty, pol)
			if err != nil {
				t.Fatal(err)
			}
			if fixed, srep := core.SanitizeRecords(ces); srep.WasUnsorted {
				ces = fixed
			}
			t.Logf("p=%v: %d/%d CE records survive, %d malformed", p, len(ces), len(ds.CERecords), rep.Malformed)

			wounded := *ds
			wounded.CERecords = ces
			wounded.DUERecords = dues
			wounded.HETRecords = hets
			study := &Study{
				Options: Options{Seed: 43, Nodes: cfg.Nodes},
				Dataset: &wounded,
				Faults:  mustCluster(ces, core.DefaultClusterConfig()),
			}
			results := mustAnalyze(study)
			var out bytes.Buffer
			if err := study.WriteReport(&out, results); err != nil {
				t.Fatalf("report over corrupted study: %v", err)
			}
			if out.Len() == 0 {
				t.Error("empty report")
			}
		})
	}
}
