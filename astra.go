// Package astra is the public entry point of the Astra memory-failure
// reproduction: a synthetic petascale Arm system (topology, DRAM fault
// processes, SEC-DED ECC, EDAC logging, BMC telemetry, inventory scans)
// plus the fault/error analysis methodology of Ferreira, Levy, Hemmert &
// Pedretti, "Understanding Memory Failures on a Petascale Arm System"
// (HPDC 2022).
//
// Typical use:
//
//	study, err := astra.Run(ctx, astra.Options{Seed: 1, Nodes: astra.FullScale})
//	results, err := study.Analyze(ctx)
//	study.WriteReport(os.Stdout, results)
//
// Run builds the full pipeline (generate → log → parse-equivalent records)
// and clusters errors into faults; Analyze executes every analysis from
// the paper's evaluation (Table 1, Figs 2-15).
package astra

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// FullScale is Astra's node count (2592).
const FullScale = topology.Nodes

// Options configures a study run.
type Options struct {
	// Seed drives all randomness; equal seeds give identical studies.
	Seed uint64
	// Nodes is the system size; use FullScale for the paper's scale and
	// smaller values for quick runs. Defaults to FullScale when 0.
	Nodes int
	// Cluster overrides the clustering thresholds; zero value uses
	// core.DefaultClusterConfig.
	Cluster core.ClusterConfig
	// Dataset overrides the full pipeline configuration; zero value uses
	// dataset.DefaultConfig(Seed) at Nodes scale.
	Dataset dataset.Config
	// Parallelism bounds the worker pools every pipeline stage (generation,
	// EDAC replay, clustering, analysis) shards across: 0 (the default)
	// uses runtime.GOMAXPROCS(0), 1 restores the serial code path. Results
	// are bit-identical at every setting for a given Seed; see DESIGN.md §8.
	// Explicit Parallelism values already set on Dataset or Cluster take
	// precedence for their stage.
	Parallelism int
}

// Study is a built pipeline plus its clustered faults.
type Study struct {
	Options Options
	Dataset *dataset.Dataset
	Faults  []core.Fault
}

// Run builds the synthetic system, pushes its error streams through the
// logging path, and clusters the logged records into faults. Cancelling
// ctx aborts the pipeline between (and within) stages and returns the
// context's error; a panic in any worker surfaces as a
// *parallel.PanicError rather than crashing the process.
func Run(ctx context.Context, opts Options) (*Study, error) {
	if opts.Nodes == 0 {
		opts.Nodes = FullScale
	}
	if opts.Nodes < 1 || opts.Nodes > FullScale {
		return nil, fmt.Errorf("astra: Nodes = %d out of [1, %d]", opts.Nodes, FullScale)
	}
	cfg := opts.Dataset
	if cfg.Nodes == 0 {
		cfg = dataset.DefaultConfig(opts.Seed)
	}
	cfg.Seed = opts.Seed
	cfg.Nodes = opts.Nodes
	if cfg.Parallelism == 0 {
		cfg.Parallelism = opts.Parallelism
	}
	ds, err := dataset.Build(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cc := opts.Cluster
	if cc == (core.ClusterConfig{Parallelism: cc.Parallelism}) {
		cc = core.DefaultClusterConfig()
		cc.Parallelism = opts.Cluster.Parallelism
	}
	if cc.Parallelism == 0 {
		cc.Parallelism = opts.Parallelism
	}
	faults, err := core.Cluster(ctx, ds.CERecords, cc)
	if err != nil {
		return nil, err
	}
	return &Study{
		Options: opts,
		Dataset: ds,
		Faults:  faults,
	}, nil
}

// Results aggregates every analysis in the paper's evaluation.
type Results struct {
	Breakdown      core.ModeBreakdown      // Fig 4a
	ErrorsPerFault core.ErrorsPerFault     // Fig 4b
	PerNode        core.PerNode            // Fig 5
	Structures     core.Structures         // Figs 6, 7
	BitAddress     core.BitAddress         // Fig 8
	TempWindows    []core.TempWindow       // Fig 9
	Positional     core.Positional         // Figs 10-12
	TempDeciles    []core.DecilePanel      // Fig 13
	Utilization    []core.UtilizationPanel // Fig 14
	Uncorrectable  core.Uncorrectable      // Fig 15
	RegionTemps    core.RegionTemps        // §3.4 thermal-uniformity table
	RackTemps      core.RackTemps          // §3.4 rack-to-rack spread
	FaultRates     core.FaultRates         // field-study FIT-per-DIMM table
	Precursors     core.Precursors         // DUE precursor analysis
	ModeStability  core.ModeStability      // per-month new-fault mode mix
	Interarrivals  core.Interarrivals      // within-fault error gaps
}

// Analyze runs the full evaluation over the study. The analyses share a
// single precomputed record index (one sharded pass over the CE records
// instead of one scan per analysis) and run concurrently up to
// Options.Parallelism workers; each analysis writes its own Results field,
// so the output is identical at every parallelism setting. Cancelling ctx
// stops launching analyses and returns the context's error; a panic inside
// any analysis is recovered and returned as a *parallel.PanicError.
func (s *Study) Analyze(ctx context.Context) (res *Results, err error) {
	defer parallel.Recover(&err)
	ds := s.Dataset
	n := s.Options.Nodes
	par := s.Options.Parallelism
	ix := core.NewRecordIndex(ds.CERecords, n, par)
	r := &Results{}
	task := func(fn func()) func(context.Context) error {
		return func(context.Context) error { fn(); return nil }
	}
	err = parallel.RunCtx(ctx, par,
		task(func() { r.Breakdown = ix.BreakdownByMode(s.Faults) }),
		task(func() { r.ErrorsPerFault = core.ErrorsPerFaultDist(s.Faults) }),
		task(func() { r.PerNode = ix.AnalyzePerNode(s.Faults) }),
		task(func() { r.Structures = ix.AnalyzeStructures(s.Faults) }),
		task(func() { r.BitAddress = core.AnalyzeBitAddressWorkers(s.Faults, par) }),
		task(func() { r.TempWindows = ix.AnalyzeTempWindows(ds.Env, core.Fig9Windows) }),
		task(func() { r.Positional = ix.AnalyzePositional(s.Faults) }),
		task(func() { r.TempDeciles = ix.AnalyzeTempDeciles(ds.Env) }),
		task(func() { r.Utilization = ix.AnalyzeUtilization(ds.Env) }),
		task(func() {
			r.Uncorrectable = core.AnalyzeUncorrectable(ds.HETRecords, n*topology.SlotsPerNode, ds.Config.Fault.End)
		}),
		task(func() { r.RegionTemps = core.AnalyzeRegionTemps(ds.Env, n, 1) }),
		task(func() { r.RackTemps = core.AnalyzeRackTemps(ds.Env, n, 1) }),
		task(func() { r.FaultRates = core.AnalyzeFaultRates(s.Faults, n*topology.SlotsPerNode, core.StudyWindow()) }),
		task(func() { r.Precursors = core.AnalyzeDUEPrecursors(ds.DUERecords, s.Faults, n*topology.SlotsPerNode) }),
		task(func() { r.ModeStability = core.AnalyzeModeStability(s.Faults) }),
		task(func() { r.Interarrivals = core.AnalyzeInterarrivals(ds.CERecords, s.Faults, 500) }),
	)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// WriteReport renders every table and figure to w.
func (s *Study) WriteReport(w io.Writer, r *Results) error {
	sections := []string{
		report.Table1(s.Dataset.Inventory, s.Options.Nodes),
		report.Figure2(s.Dataset.Env, s.Options.Nodes, s.Options.Seed),
		report.Figure3(s.Dataset.Inventory),
		report.Figure4a(r.Breakdown),
		report.Figure4b(r.ErrorsPerFault),
		report.Figure5(r.PerNode, s.Options.Nodes),
		report.Figure6(r.Structures),
		report.Figure7(r.Structures),
		report.Figure8(r.BitAddress),
		report.Figure9(r.TempWindows),
		report.Figure10(r.Positional),
		report.Figure11(r.Positional),
		report.Figure12(r.Positional),
		report.Figure13(r.TempDeciles),
		report.Figure14(r.Utilization),
		report.Figure15(r.Uncorrectable),
		report.Thermal(r.RegionTemps, r.RackTemps),
		report.Survival(s.Dataset.Inventory, s.Options.Nodes),
		report.FaultRates(r.FaultRates),
		report.Precursors(r.Precursors),
		report.ModeStability(r.ModeStability),
		report.Interarrivals(r.Interarrivals),
	}
	for _, sec := range sections {
		if _, err := io.WriteString(w, sec+"\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "EDAC logging: offered %d, logged %d, dropped %d (%.2f%% loss)\n",
		s.Dataset.EdacStats.Offered, s.Dataset.EdacStats.Logged, s.Dataset.EdacStats.Dropped,
		100*s.Dataset.EdacStats.LossFraction())
	return err
}

// StudyWindowDays is the length of the failure-analysis window in days.
func StudyWindowDays() float64 {
	return simtime.StudyEnd.Sub(simtime.StudyStart).Hours() / 24
}
