package astra

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (Table 1, Figures 2-15) plus the ablations called out in
// DESIGN.md. Each benchmark measures the analysis that produces the
// artifact and prints the corresponding rows/series once, so
//
//	go test -bench=. -benchmem
//
// emits the full reproduction alongside the timings. Scale defaults to the
// paper's 2592 nodes; set ASTRA_BENCH_NODES to reduce it.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ecc"
	"repro/internal/ecc/chipkill"
	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/report"
	"repro/internal/retire"
	"repro/internal/scrub"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

const benchSeed = 1

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error

	printMu      sync.Mutex
	printedNames = map[string]bool{}
)

// benchNodes returns the benchmark system size.
func benchNodes() int {
	if v := os.Getenv("ASTRA_BENCH_NODES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 && n <= FullScale {
			return n
		}
	}
	return FullScale
}

// benchSetup lazily builds the shared study.
func benchSetup(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = Run(testCtx, Options{Seed: benchSeed, Nodes: benchNodes()})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// printFigure emits a report section once per process.
func printFigure(name, body string) {
	printMu.Lock()
	defer printMu.Unlock()
	if printedNames[name] {
		return
	}
	printedNames[name] = true
	fmt.Printf("\n===== %s =====\n%s\n", name, body)
}

func BenchmarkTable1Replacements(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var totals [3]int
	for i := 0; i < b.N; i++ {
		t := s.Dataset.Inventory.Totals()
		totals = [3]int{t[0], t[1], t[2]}
	}
	_ = totals
	printFigure("Table 1", report.Table1(s.Dataset.Inventory, s.Options.Nodes))
}

func BenchmarkFigure2SensorHistograms(b *testing.B) {
	s := benchSetup(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Figure2(s.Dataset.Env, s.Options.Nodes, benchSeed)
	}
	printFigure("Figure 2", out)
}

func BenchmarkFigure3ReplacementTimeline(b *testing.B) {
	s := benchSetup(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Figure3(s.Dataset.Inventory)
	}
	printFigure("Figure 3", out)
}

func BenchmarkFigure4aErrorFaultSeries(b *testing.B) {
	s := benchSetup(b)
	var bd core.ModeBreakdown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd = core.BreakdownByMode(s.Dataset.CERecords, s.Faults)
	}
	printFigure("Figure 4a", report.Figure4a(bd))
}

func BenchmarkFigure4bErrorsPerFault(b *testing.B) {
	s := benchSetup(b)
	var d core.ErrorsPerFault
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = core.ErrorsPerFaultDist(s.Faults)
	}
	printFigure("Figure 4b", report.Figure4b(d))
}

func BenchmarkFigure5aFaultsPerNode(b *testing.B) {
	s := benchSetup(b)
	var pn core.PerNode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pn = core.AnalyzePerNode(s.Dataset.CERecords, s.Faults, s.Options.Nodes)
	}
	printFigure("Figure 5a", report.Figure5(pn, s.Options.Nodes))
}

func BenchmarkFigure5bNodeCDF(b *testing.B) {
	s := benchSetup(b)
	var pn core.PerNode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pn = core.AnalyzePerNode(s.Dataset.CERecords, s.Faults, s.Options.Nodes)
	}
	// The Fig 5b statements: top-8 and top-2% CE shares plus curve knots.
	body := fmt.Sprintf("top-8 nodes: %s of CEs; top 2%%: %s\nLorenz knots:",
		report.FormatPct(pn.TopShare8), report.FormatPct(pn.TopShare2Pct))
	for _, k := range []int{1, 8, 20, 50, 100, 500} {
		if k < len(pn.Lorenz) {
			body += fmt.Sprintf(" [%d]=%.3f", k, pn.Lorenz[k])
		}
	}
	printFigure("Figure 5b", body+"\n")
}

func BenchmarkFigure6StructureDistributions(b *testing.B) {
	s := benchSetup(b)
	var st core.Structures
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = core.AnalyzeStructures(s.Dataset.CERecords, s.Faults)
	}
	printFigure("Figure 6", report.Figure6(st))
}

func BenchmarkFigure7RankSlot(b *testing.B) {
	s := benchSetup(b)
	var st core.Structures
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = core.AnalyzeStructures(s.Dataset.CERecords, s.Faults)
	}
	printFigure("Figure 7", report.Figure7(st))
}

func BenchmarkFigure8BitAddress(b *testing.B) {
	s := benchSetup(b)
	var ba core.BitAddress
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba = core.AnalyzeBitAddress(s.Faults)
	}
	printFigure("Figure 8", report.Figure8(ba))
}

func BenchmarkFigure9TempWindows(b *testing.B) {
	s := benchSetup(b)
	var tw []core.TempWindow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw = core.AnalyzeTempWindows(s.Dataset.CERecords, s.Dataset.Env, core.Fig9Windows)
	}
	printFigure("Figure 9", report.Figure9(tw))
}

func BenchmarkFigure10RackRegion(b *testing.B) {
	s := benchSetup(b)
	var p core.Positional
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = core.AnalyzePositional(s.Dataset.CERecords, s.Faults)
	}
	printFigure("Figure 10", report.Figure10(p))
}

func BenchmarkFigure11RegionByRack(b *testing.B) {
	s := benchSetup(b)
	var p core.Positional
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = core.AnalyzePositional(s.Dataset.CERecords, s.Faults)
	}
	printFigure("Figure 11", report.Figure11(p))
}

func BenchmarkFigure12PerRack(b *testing.B) {
	s := benchSetup(b)
	var p core.Positional
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = core.AnalyzePositional(s.Dataset.CERecords, s.Faults)
	}
	printFigure("Figure 12", report.Figure12(p))
}

func BenchmarkFigure13TempDeciles(b *testing.B) {
	s := benchSetup(b)
	var panels []core.DecilePanel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels = core.AnalyzeTempDeciles(s.Dataset.CERecords, s.Dataset.Env, s.Options.Nodes)
	}
	printFigure("Figure 13", report.Figure13(panels))
}

func BenchmarkFigure14PowerUtilization(b *testing.B) {
	s := benchSetup(b)
	var panels []core.UtilizationPanel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels = core.AnalyzeUtilization(s.Dataset.CERecords, s.Dataset.Env, s.Options.Nodes)
	}
	printFigure("Figure 14", report.Figure14(panels))
}

func BenchmarkFigure15HETAndFIT(b *testing.B) {
	s := benchSetup(b)
	var u core.Uncorrectable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = core.AnalyzeUncorrectable(s.Dataset.HETRecords,
			s.Options.Nodes*topology.SlotsPerNode, s.Dataset.Config.Fault.End)
	}
	printFigure("Figure 15", report.Figure15(u))
}

// BenchmarkAblationRowClustering compares the default clusterer against
// the row-trusting variant the real platform could not run (§3.2).
func BenchmarkAblationRowClustering(b *testing.B) {
	s := benchSetup(b)
	cfg := core.DefaultClusterConfig()
	cfg.RowClustering = true
	var rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = 0
		for _, f := range mustCluster(s.Dataset.CERecords, cfg) {
			if f.Mode == core.ModeSingleRow {
				rows++
			}
		}
	}
	printFigure("Ablation: row clustering", fmt.Sprintf(
		"default clusterer: %d faults, 0 single-row (platform limitation)\n"+
			"row-trusting ablation: recovers %d single-row faults\n", len(s.Faults), rows))
}

// BenchmarkAblationChipkillVsSECDED replays double-bit DUE patterns
// through both codecs: chipkill corrects what SEC-DED cannot whenever the
// flipped bits share an x4 chip or land in different interleaves (§2.2's
// cost/protection trade-off).
func BenchmarkAblationChipkillVsSECDED(b *testing.B) {
	rng := simrand.NewStream(benchSeed).Derive("chipkill-ablation")
	const trials = 20000
	var secdedCorrected, ckCorrected int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		secdedCorrected, ckCorrected = 0, 0
		for t := 0; t < trials; t++ {
			data := rng.Uint64()
			b1 := rng.IntN(64)
			b2 := rng.IntN(63)
			if b2 >= b1 {
				b2++
			}
			w := ecc.FlipBit(ecc.FlipBit(ecc.Encode(data), b1), b2)
			if _, res, _, _ := ecc.Decode(w); res == ecc.Corrected {
				secdedCorrected++
			}
			cw := chipkill.FlipBit(chipkill.FlipBit(chipkill.Encode(data), b1), b2)
			if got, res := chipkill.Decode(cw); res != chipkill.Uncorrectable && got == data {
				ckCorrected++
			}
		}
	}
	printFigure("Ablation: SEC-DED vs Chipkill", fmt.Sprintf(
		"double-bit corruptions corrected: SEC-DED %d/%d (%.1f%%), chipkill %d/%d (%.1f%%)\n"+
			"chipkill cost: %d vs %d check bits per 64-bit word\n",
		secdedCorrected, trials, 100*float64(secdedCorrected)/trials,
		ckCorrected, trials, 100*float64(ckCorrected)/trials,
		chipkill.CheckBits, ecc.CheckBits))
}

// BenchmarkAblationEdacCapacity sweeps the CE log capacity and reports the
// logging-loss fraction (§2.3: "once logging space is full, further CEs
// may be dropped").
func BenchmarkAblationEdacCapacity(b *testing.B) {
	nodes := 300
	if bn := benchNodes(); bn < nodes {
		nodes = bn
	}
	capacities := []int{4, 16, 32, 128, 1024}
	losses := make([]float64, len(capacities))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci, capacity := range capacities {
			cfg := dataset.DefaultConfig(benchSeed)
			cfg.Nodes = nodes
			cfg.EdacCapacity = capacity
			cfg.Inventory = false
			ds, err := dataset.Build(testCtx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			losses[ci] = ds.EdacStats.LossFraction()
		}
	}
	body := ""
	for ci, capacity := range capacities {
		body += fmt.Sprintf("capacity %4d: %.2f%% of CEs lost\n", capacity, 100*losses[ci])
	}
	printFigure("Ablation: EDAC log capacity", body)
}

// BenchmarkAblationRetirement measures how much of the error stream page
// retirement suppresses at different thresholds (the mitigation §3.2
// credits for the Fig 4a downward trend).
func BenchmarkAblationRetirement(b *testing.B) {
	s := benchSetup(b)
	thresholds := []int{1, 4, 16, 64}
	suppressed := make([]float64, len(thresholds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ti, th := range thresholds {
			eng := retire.NewEngine(benchSeed, retire.Policy{Threshold: th, SuccessProb: 0.85, MaxPagesPerNode: 4096})
			eng.Filter(s.Dataset.Pop.CEs)
			st := eng.Stats()
			suppressed[ti] = float64(st.Suppressed) / float64(st.Seen)
		}
	}
	body := ""
	for ti, th := range thresholds {
		body += fmt.Sprintf("threshold %3d CEs/page: %.1f%% of errors suppressed\n", th, 100*suppressed[ti])
	}
	printFigure("Ablation: page retirement", body)
}

// BenchmarkAblationBaselineWorlds runs the identical temperature-decile
// analysis over the Astra-truth world and the Schroeder-coupled world,
// demonstrating that the paper's negative result is a detection.
func BenchmarkAblationBaselineWorlds(b *testing.B) {
	const nodes = 400
	var astraStrength, schroederStrength float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range []baseline.Kind{baseline.Astra, baseline.Schroeder} {
			w, err := baseline.NewScenario(kind, benchSeed, nodes).Generate(testCtx)
			if err != nil {
				b.Fatal(err)
			}
			records := dsRecordsFromPop(w.Pop)
			panels := core.AnalyzeTempDeciles(records, w.Env, nodes)
			sum, n := 0.0, 0
			for _, p := range panels {
				if p.Sensor.IsDIMM() && p.TrendErr == nil {
					sum += core.TrendStrength(p.Trend, p.Bins)
					n++
				}
			}
			strength := sum / float64(n)
			if kind == baseline.Astra {
				astraStrength = strength
			} else {
				schroederStrength = strength
			}
		}
	}
	printFigure("Ablation: baseline worlds", fmt.Sprintf(
		"mean DIMM temperature-trend strength under identical analysis:\n"+
			"  astra-truth world:      %+.2f (no coupling)\n"+
			"  schroeder-coupled world: %+.2f (x2 per 20 °C injected)\n",
		astraStrength, schroederStrength))
}

// BenchmarkAblationScrubLatency sweeps the patrol-scrub period and reports
// the mean fault-detection latency for cold and hot memory (§2.3's CE
// discovery mechanics).
func BenchmarkAblationScrubLatency(b *testing.B) {
	periods := []simtime.Minute{simtime.MinutesPerHour, simtime.MinutesPerDay, simtime.MinutesPerWeek}
	cold := make([]float64, len(periods))
	hot := make([]float64, len(periods))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi, period := range periods {
			s := scrub.NewScrubber(period, benchSeed)
			cold[pi] = scrub.NewDetector(s, 0).MeanLatency(simrand.NewStream(benchSeed), 200, 2000)
			hot[pi] = scrub.NewDetector(s, 0.01).MeanLatency(simrand.NewStream(benchSeed), 200, 2000)
		}
	}
	body := ""
	for pi, period := range periods {
		body += fmt.Sprintf("scrub period %6d min: cold-memory latency %7.0f min, hot-memory %5.0f min\n",
			period, cold[pi], hot[pi])
	}
	printFigure("Ablation: patrol-scrub detection latency", body)
}

// BenchmarkSurvivalAnalysis runs the component-lifetime extension of
// Table 1 (Kaplan-Meier + Weibull + MTBF).
func BenchmarkSurvivalAnalysis(b *testing.B) {
	s := benchSetup(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Survival(s.Dataset.Inventory, s.Options.Nodes)
	}
	printFigure("Survival analysis", out)
}

// BenchmarkThermalUniformity runs the §3.4 region/rack temperature tables.
func BenchmarkThermalUniformity(b *testing.B) {
	s := benchSetup(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region := core.AnalyzeRegionTemps(s.Dataset.Env, s.Options.Nodes, 1)
		rack := core.AnalyzeRackTemps(s.Dataset.Env, s.Options.Nodes, 1)
		out = report.Thermal(region, rack)
	}
	printFigure("Thermal uniformity", out)
}

// BenchmarkAblationWeakSignatures contrasts the Fig 8b address-collision
// distribution with and without the manufacturing weak-spot pool.
func BenchmarkAblationWeakSignatures(b *testing.B) {
	nodes := 400
	if bn := benchNodes(); bn < nodes {
		nodes = bn
	}
	var withSig, without stats.PowerLawFit
	var withMax, withoutMax int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sig := range []bool{true, false} {
			cfg := faultmodel.DefaultConfig(benchSeed)
			cfg.Nodes = nodes
			if !sig {
				cfg.SignatureCount = 0
			}
			pop, err := faultmodel.Generate(testCtx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ba := core.AnalyzeBitAddress(mustCluster(dsRecordsFromPop(pop), core.DefaultClusterConfig()))
			maxCount := 0
			for _, c := range ba.PerAddr {
				if c > maxCount {
					maxCount = c
				}
			}
			if sig {
				withSig, withMax = ba.AddrFit, maxCount
			} else {
				without, withoutMax = ba.AddrFit, maxCount
			}
		}
	}
	printFigure("Ablation: weak-spot signatures", fmt.Sprintf(
		"with signatures:    max faults/address %d, power-law alpha %.2f\n"+
			"without signatures: max faults/address %d, power-law alpha %.2f\n"+
			"(the Fig 8b collision tail requires population-wide weak spots)\n",
		withMax, withSig.Alpha, withoutMax, without.Alpha))
}

// BenchmarkFaultRates runs the field-study FIT-per-DIMM table.
func BenchmarkFaultRates(b *testing.B) {
	s := benchSetup(b)
	var r core.FaultRates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = core.AnalyzeFaultRates(s.Faults, s.Options.Nodes*topology.SlotsPerNode, core.StudyWindow())
	}
	printFigure("Fault rates (FIT/DIMM)", report.FaultRates(r))
}

// BenchmarkDUEPrecursors runs the predictive-maintenance join: DUEs vs
// prior CE faults on the same DIMM.
func BenchmarkDUEPrecursors(b *testing.B) {
	s := benchSetup(b)
	var p core.Precursors
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = core.AnalyzeDUEPrecursors(s.Dataset.DUERecords, s.Faults, s.Options.Nodes*topology.SlotsPerNode)
	}
	printFigure("DUE precursors", report.Precursors(p))
}

// BenchmarkClusteringValidation runs the ground-truth self-check: every
// error attributed once, ≥90% mode agreement on unambiguous banks.
func BenchmarkClusteringValidation(b *testing.B) {
	nodes := 600
	if bn := benchNodes(); bn < nodes {
		nodes = bn
	}
	cfg := faultmodel.DefaultConfig(benchSeed)
	cfg.Nodes = nodes
	pop, err := faultmodel.Generate(testCtx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := dsRecordsFromPop(pop)
	var m core.ValidationMetrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faults := mustCluster(records, core.DefaultClusterConfig())
		m, err = core.ValidateClustering(pop, records, faults, core.DefaultClusterConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Ok(len(records)); err != nil {
			b.Fatal(err)
		}
	}
	printFigure("Clustering self-check", fmt.Sprintf(
		"errors attributed: %d/%d (double: %d)\nmode agreement: %.1f%% over %d unambiguous banks\nfault count ratio (recovered/truth): %.2f\n",
		m.ErrorsAttributed, len(records), m.DoubleAttributed,
		100*m.ModeAgreement, m.BanksChecked, m.FaultCountRatio))
}

// dsRecordsFromPop encodes a raw population for analyses that bypass the
// EDAC path (baseline comparisons).
func dsRecordsFromPop(pop *faultmodel.Population) []mce.CERecord {
	enc := mce.NewEncoder(pop.Config.Seed)
	out := make([]mce.CERecord, len(pop.CEs))
	for i, ev := range pop.CEs {
		out[i] = mustEncodeCE(enc, ev, i)
	}
	return out
}
