package astra

import (
	"context"

	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/mce"
)

// testCtx is the context the legacy single-value test call sites thread
// through the cancellable pipeline APIs.
var testCtx = context.Background()

// mustCluster, mustAnalyze and mustEncodeCE adapt the ctx+error APIs for
// test sites where an error is simply a test bug.
func mustCluster(records []mce.CERecord, cfg core.ClusterConfig) []core.Fault {
	faults, err := core.Cluster(testCtx, records, cfg)
	if err != nil {
		panic(err)
	}
	return faults
}

func mustAnalyze(s *Study) *Results {
	r, err := s.Analyze(testCtx)
	if err != nil {
		panic(err)
	}
	return r
}

func mustEncodeCE(enc *mce.Encoder, ev faultmodel.CEEvent, i int) mce.CERecord {
	rec, err := enc.EncodeCE(ev, i)
	if err != nil {
		panic(err)
	}
	return rec
}
