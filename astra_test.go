package astra

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmall(t *testing.T) {
	study, err := Run(testCtx, Options{Seed: 81, Nodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Dataset.CERecords) == 0 || len(study.Faults) == 0 {
		t.Fatal("empty study")
	}
	r := mustAnalyze(study)
	if r.Breakdown.Total != len(study.Dataset.CERecords) {
		t.Errorf("breakdown total %d != records %d", r.Breakdown.Total, len(study.Dataset.CERecords))
	}
	if r.ErrorsPerFault.Median != 1 {
		t.Errorf("median errors/fault = %v", r.ErrorsPerFault.Median)
	}
	if len(r.TempWindows) != 4 || len(r.TempDeciles) != 6 || len(r.Utilization) != 6 {
		t.Error("analysis panel counts wrong")
	}
	var buf bytes.Buffer
	if err := study.WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 4a", "Figure 9", "Figure 15", "EDAC logging"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(testCtx, Options{Seed: 1, Nodes: -1}); err == nil {
		t.Error("negative nodes accepted")
	}
	if _, err := Run(testCtx, Options{Seed: 1, Nodes: FullScale + 1}); err == nil {
		t.Error("oversize accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testCtx, Options{Seed: 82, Nodes: 120})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCtx, Options{Seed: 82, Nodes: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != len(b.Faults) || len(a.Dataset.CERecords) != len(b.Dataset.CERecords) {
		t.Error("same-seed studies differ")
	}
}

func TestStudyWindowDays(t *testing.T) {
	if got := StudyWindowDays(); got != 237 {
		t.Errorf("StudyWindowDays = %v, want 237", got)
	}
}
